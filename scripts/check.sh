#!/usr/bin/env bash
# Repo-wide gate: formatting, lints (clippy *and* dejavu-lint), tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo bench --workspace --no-run
cargo run -p dejavu-examples --bin lint_nfs
