#!/usr/bin/env bash
# Repo-wide gate: formatting, lints (clippy *and* dejavu-lint), tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo bench --workspace --no-run
cargo run -p dejavu-examples --bin lint_nfs

# Analyzer gate: the NF library, the composed Fig. 2 pipelets, and the
# learn contracts must be finding-free at warning level or above. The
# binary exits non-zero otherwise and always writes the findings artifact,
# which must be valid JSON (an array of finding objects).
cargo run -p dejavu-examples --bin analyze_nfs
findings=target/experiments/ANALYZE_findings.json
test -s "$findings" || { echo "missing $findings" >&2; exit 1; }
python3 - "$findings" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert isinstance(report, list), "findings artifact must be a JSON array"
for f in report:
    assert {"code", "severity", "entity", "message"} <= set(f), f
print(f"analyze findings artifact OK ({len(report)} finding(s))")
EOF

# Dependency audit: advisories and license policy via cargo-deny when it
# is installed (CI installs it; offline dev containers may not have it).
if command -v cargo-deny >/dev/null 2>&1; then
    cargo deny check advisories licenses
else
    echo "cargo-deny not installed; skipping advisories/licenses audit"
fi

# Telemetry gate: the recirculation study runs its measured-vs-model
# comparison (asserting depth counters internally) and exports a metrics
# snapshot, which must be valid JSON carrying the key series.
cargo run -p dejavu-examples --bin recirculation_study
snapshot=target/experiments/TELEMETRY_snapshot.json
test -s "$snapshot" || { echo "missing $snapshot" >&2; exit 1; }
python3 - "$snapshot" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
required = [
    "packets_injected",
    "packets_emitted",
    "packet_latency_ns",
    'packet_recirc_depth{k="1"}',
    'packet_recirc_depth{k="4"}',
    'recirculations{pipeline="1"}',
]
missing = [k for k in required if k not in snap]
assert not missing, f"snapshot missing keys: {missing}"
assert snap["packets_injected"] > 0
assert snap["packet_latency_ns"]["count"] == snap["packets_injected"]
print(f"telemetry snapshot OK ({len(snap)} series)")
EOF

# Flow-state gate: the demo drives a dynamic-NAT learn cycle, asserts the
# state snapshot survives export → import deep-equal in Rust, and writes
# the JSON, which must carry the learned return-path entry.
cargo run -p dejavu-examples --bin flow_state_demo
state=target/experiments/STATE_snapshot.json
test -s "$state" || { echo "missing $state" >&2; exit 1; }
python3 - "$state" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["version"] >= 1, "versioned snapshot"
tables = {t["name"]: t for t in snap["tables"]}
assert "nat__nat_in" in tables, f"NAT return table missing: {sorted(tables)}"
assert tables["nat__nat_in"]["entries"], "learned flow entry missing"
entries = sum(len(t["entries"]) for t in snap["tables"])
print(f"state snapshot OK ({len(tables)} tables, {entries} entries)")
EOF

# Cluster-runtime gate: three switch workers behind framed TCP on
# localhost must boot, carry full- and mid-chain flights end to end, merge
# telemetry, and shut down cleanly — bounded, because a hang here means
# the event-driven control plane deadlocked.
timeout 120 cargo run -p dejavu-examples --bin cluster_demo

# Re-placement gate: the closed-loop orchestrator must notice the traffic
# shift, migrate the learned NAT across switches live, and lose zero
# flows — bounded, because a hang here means the pause/quiesce barrier
# or the migration driver deadlocked.
timeout 120 cargo run -p dejavu-examples --bin replacement_demo

# Dataplane bench gate: the table-size sweep runs end-to-end in quick
# mode (shrunk budgets, 100k point skipped; the committed root
# BENCH_dataplane.json is not rewritten), its artifact must carry the
# speedup flags, a zero-allocation rtc steady state, and a hitless live
# migration; the committed record must have the 10×-at-10k flags, the
# 3×-rtc flag, the zero-flow-loss migration flag, and the zero-allocation
# record present and true.
bash scripts/bench_dataplane.sh --quick
quick_record=target/experiments/BENCH_dataplane.json
test -s "$quick_record" || { echo "missing $quick_record" >&2; exit 1; }
python3 - "$quick_record" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for flag in ("meets_10x_at_10k_exact", "meets_10x_at_10k_ternary"):
    assert flag in report, f"quick sweep artifact missing {flag}"
kinds = {(p["kind"], p["entries"]): p["index_kind"] for p in report["points"]}
assert kinds[("ternary", 10_000)] in ("tuple_space", "decision_tree"), kinds
allocs = report.get("rtc_allocs_per_packet")
assert allocs == 0, f"rtc steady state must be allocation-free, got {allocs}"
assert report.get("meets_zero_flow_loss_migration") is True, \
    "quick sweep: live migration must lose zero learned flows"
mig = report["migration"]
assert mig["flows_surviving"] == mig["flows_learned"], mig
assert mig["migration_downtime_ns"] > 0, mig
print("quick dataplane sweep artifact OK (rtc allocs/packet == 0, migration hitless)")
EOF
python3 - BENCH_dataplane.json <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for flag in (
    "meets_10x_at_10k_exact",
    "meets_10x_at_10k_ternary",
    "meets_3x_rtc_at_10k_exact",
    "meets_zero_flow_loss_migration",
):
    assert report.get(flag) is True, f"committed BENCH_dataplane.json: {flag} must be true"
allocs = report.get("rtc_allocs_per_packet")
if allocs is not None:
    assert allocs == 0, f"committed rtc_allocs_per_packet must be 0, got {allocs}"
print("committed BENCH_dataplane.json flags OK")
EOF

# Docs gate: rustdoc must stay warning-free (broken intra-doc links are
# the usual regression).
doclog=$(cargo doc --workspace --no-deps -q 2>&1)
if [ -n "$doclog" ]; then
    printf '%s\n' "$doclog"
    echo "rustdoc not clean" >&2
    exit 1
fi
echo "rustdoc OK (no warnings)"
