#!/usr/bin/env bash
# Runs the dataplane table-size sweep (reference interpreter vs compiled
# fast path, single vs batched injection) and snapshots the machine-readable
# record to BENCH_dataplane.json at the repo root.
#
#   --quick   smoke mode for CI: shrunk budgets, 100k point skipped, and the
#             artifact is left in target/experiments/ (the committed root
#             BENCH_dataplane.json is only refreshed by full runs).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
ARGS=()
for a in "$@"; do
    if [ "$a" = "--quick" ]; then
        QUICK=1
    else
        ARGS+=("$a")
    fi
done

if [ "$QUICK" = 1 ]; then
    DEJAVU_BENCH_QUICK=1 cargo bench -p dejavu-bench --bench micro_dataplane ${ARGS[@]+"${ARGS[@]}"}
    echo "quick sweep ok: target/experiments/BENCH_dataplane.json (root copy untouched)"
else
    cargo bench -p dejavu-bench --bench micro_dataplane ${ARGS[@]+"${ARGS[@]}"}
    cp target/experiments/BENCH_dataplane.json BENCH_dataplane.json
    echo "wrote $(pwd)/BENCH_dataplane.json"
fi
