#!/usr/bin/env bash
# Runs the dataplane table-size sweep (reference interpreter vs compiled
# fast path, single vs batched injection, pooled run-to-completion engine)
# and snapshots the machine-readable record to BENCH_dataplane.json at the
# repo root. The sweep always builds with the `count-allocs` feature so the
# counting allocator measures steady-state heap traffic on the rtc path;
# each sweep point asserts allocations/packet == 0 inline.
#
#   --quick   smoke mode for CI: shrunk budgets, 100k point skipped, and the
#             artifact is left in target/experiments/ (the committed root
#             BENCH_dataplane.json is only refreshed by full runs). The
#             quick artifact is additionally gated on the zero-allocation
#             record: rtc_allocs_per_packet must be exactly 0.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
ARGS=()
for a in "$@"; do
    if [ "$a" = "--quick" ]; then
        QUICK=1
    else
        ARGS+=("$a")
    fi
done

if [ "$QUICK" = 1 ]; then
    DEJAVU_BENCH_QUICK=1 cargo bench -p dejavu-bench --bench micro_dataplane \
        --features count-allocs ${ARGS[@]+"${ARGS[@]}"}
    python3 - target/experiments/BENCH_dataplane.json <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
allocs = report.get("rtc_allocs_per_packet")
assert allocs == 0, f"rtc steady state must be allocation-free, got {allocs}"
print("rtc alloc gate OK (0 allocations/packet)")
EOF
    echo "quick sweep ok: target/experiments/BENCH_dataplane.json (root copy untouched)"
else
    cargo bench -p dejavu-bench --bench micro_dataplane \
        --features count-allocs ${ARGS[@]+"${ARGS[@]}"}
    cp target/experiments/BENCH_dataplane.json BENCH_dataplane.json
    echo "wrote $(pwd)/BENCH_dataplane.json"
fi
