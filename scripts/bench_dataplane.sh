#!/usr/bin/env bash
# Runs the dataplane table-size sweep (reference interpreter vs compiled
# fast path, single vs batched injection) and snapshots the machine-readable
# record to BENCH_dataplane.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p dejavu-bench --bench micro_dataplane "$@"

cp target/experiments/BENCH_dataplane.json BENCH_dataplane.json
echo "wrote $(pwd)/BENCH_dataplane.json"
