//! Flow-state demo and snapshot gate.
//!
//! ```text
//! cargo run -p dejavu-examples --bin flow_state_demo
//! ```
//!
//! Drives the dynamic NAT through one full learn cycle — outbound packet
//! digests and rewrites, the control-plane learning loop installs the
//! return mapping, return traffic translates back in the data plane —
//! then captures a [`StateSnapshot`] of every loaded pipelet, proves the
//! JSON export round-trips losslessly through the crate's own parser, and
//! writes the ingress snapshot to
//! `target/experiments/STATE_snapshot.json` for `scripts/check.sh`.

use dejavu_asic::switch::Disposition;
use dejavu_asic::{ExecMode, InjectedPacket, PipeletId, Switch, TofinoProfile};
use dejavu_core::control_plane::ControlPlane;
use dejavu_core::deploy::{deploy, DeployOptions, Deployment};
use dejavu_core::placement::Placement;
use dejavu_core::routing::RoutingConfig;
use dejavu_core::{ChainPolicy, ChainSet, NfModule};
use dejavu_nf::nat::{
    dynamic_nat, nat_learn_policy, nat_out_entry, NAT_FLOW_STREAM, NAT_OUT_TABLE,
};
use dejavu_nf::{classifier, router};
use dejavu_state::StateSnapshot;

const IN_PORT: u16 = 0;
const EXIT_PORT: u16 = 2;
const SERVER: u32 = 0x0808_0808;
const PUBLIC_IP: u32 = 0xc633_6401;
const CLIENT: u32 = 0x0a01_0101;
const CLIENT_PORT: u16 = 40001;

/// classifier → nat → router on pipeline 0, both directions on one path.
fn nat_testbed() -> (Switch, Deployment) {
    let nfs: Vec<NfModule> = vec![classifier::classifier(), dynamic_nat(), router::router()];
    let nf_refs: Vec<&NfModule> = nfs.iter().collect();
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "nat_path",
        vec!["classifier", "nat", "router"],
        1.0,
    )])
    .unwrap();
    let placement = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["classifier", "nat"]),
        (PipeletId::egress(0), vec!["router"]),
    ]);
    let config = RoutingConfig {
        loopback_port: [(0usize, 15u16), (1usize, 16u16)].into_iter().collect(),
        exit_ports: [(1u16, EXIT_PORT)].into_iter().collect(),
        honor_out_port: false,
    };
    let options = DeployOptions {
        entry_nf: Some("classifier".into()),
        ..Default::default()
    };
    let (mut switch, dep) = deploy(
        &nf_refs,
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        &config,
        &options,
    )
    .expect("nat chain deploys");
    switch.set_exec_mode(ExecMode::Compiled);
    switch.set_telemetry(true);

    for prefix in [(0x0a01_0000u32, 16u16), (0x0800_0000, 8)] {
        dep.install(
            &mut switch,
            "classifier",
            classifier::CLASSIFY_TABLE,
            classifier::classify_entry(prefix, (0, 0), 1, 100),
        )
        .unwrap();
    }
    dep.install(
        &mut switch,
        "nat",
        NAT_OUT_TABLE,
        nat_out_entry((0x0a01_0000, 16), PUBLIC_IP),
    )
    .unwrap();
    dep.install(
        &mut switch,
        "router",
        router::ROUTES_TABLE,
        router::route_entry((0, 0), EXIT_PORT, 0x0200_0000_0099, 0x0200_0000_0001),
    )
    .unwrap();
    (switch, dep)
}

fn ip_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

fn main() {
    let (mut switch, dep) = nat_testbed();
    let mut cp = ControlPlane::new();
    cp.register_learn_policy("nat", NAT_FLOW_STREAM, nat_learn_policy());

    // One learn cycle: outbound digests + rewrites, the loop installs the
    // return mapping, the return packet translates without a punt.
    let outbound = dejavu_traffic::PacketBuilder::tcp()
        .src_ip(CLIENT)
        .dst_ip(SERVER)
        .src_port(CLIENT_PORT)
        .dst_port(80)
        .build();
    let t = switch
        .inject(InjectedPacket::new(outbound, IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(ip_at(&t.final_bytes, 26), PUBLIC_IP, "source not rewritten");

    let learned = cp.process_digests(&mut switch, &dep).unwrap();
    assert_eq!(learned, 1, "one flow learned from one digest");
    println!(
        "learned {learned} flow ({} digests seen, {} entries installed)",
        cp.stats.digests, cp.stats.learns
    );

    let inbound = dejavu_traffic::PacketBuilder::tcp()
        .src_ip(SERVER)
        .dst_ip(PUBLIC_IP)
        .src_port(80)
        .dst_port(CLIENT_PORT)
        .build();
    let t = switch
        .inject(InjectedPacket::new(inbound, IN_PORT))
        .unwrap();
    assert_eq!(ip_at(&t.final_bytes, 30), CLIENT, "return not translated");
    println!("return traffic translated back in the data plane (no punt)");

    // Snapshot every pipelet; each must survive a JSON round trip intact.
    let mut ingress_json = None;
    for pid in switch.loaded_pipelets() {
        let snap = switch
            .snapshot_state(pid)
            .expect("loaded pipelet snapshots");
        let json = snap.to_json();
        let back = StateSnapshot::from_json(&json).expect("exported JSON decodes");
        assert_eq!(back, snap, "{pid}: snapshot JSON round trip not lossless");
        println!(
            "  {pid}: {} tables, {} entries, {} registers ({} bytes JSON, round trip verified)",
            snap.tables.len(),
            snap.total_entries(),
            snap.registers.len(),
            json.len()
        );
        if pid == PipeletId::ingress(0) {
            ingress_json = Some(json);
        }
    }

    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("experiments dir");
    let path = dir.join("STATE_snapshot.json");
    std::fs::write(&path, ingress_json.expect("ingress0 is loaded")).expect("snapshot written");
    println!("  snapshot: {}", path.display());
}
