//! Quickstart: write an NF, chain two of them, deploy, send a packet.
//!
//! ```text
//! cargo run -p dejavu-examples --bin quickstart
//! ```
//!
//! This walks the whole Dejavu flow on the smallest possible example:
//!
//! 1. write a network function against the one-argument control-block API,
//! 2. declare a chain policy,
//! 3. pick a placement (here: one NF per pipelet of pipeline 0),
//! 4. deploy — merge, compose, compile, load, synthesize routing,
//! 5. inject a packet and watch it traverse the chain.

use dejavu_core::prelude::*;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::{fref, well_known, Expr};

/// A tiny NF: stamps a DSCP value on every IPv4 packet.
fn stamper(name: &str, dscp: u128) -> NfModule {
    let program = ProgramBuilder::new(name)
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(sfc_header_type()) // gives the NF access to hdr.sfc.*
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("stamp")
                .set(fref("ipv4", "dscp"), Expr::val(dscp, 6))
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new("stamp_table")
                .key_exact(fref("ipv4", "protocol"))
                .default_action("stamp") // stamp everything in this demo
                .action("pass")
                .size(16)
                .build(),
        )
        .control(ControlBuilder::new("ctrl").apply("stamp_table").build())
        .entry("ctrl")
        .build()
        .expect("program is well-formed");
    NfModule::new(program).expect("program follows the Dejavu NF API")
}

fn main() {
    // 1. Two NFs.
    let first = stamper("first", 0x2e);
    let second = stamper("second", 0x0a);

    // 2. One chain: first → second, path ID 1.
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "demo",
        vec!["first", "second"],
        1.0,
    )])
    .unwrap();

    // 3. Placement: first on ingress 0, second on egress 0 — a free
    //    ingress→egress transition, zero recirculations.
    let placement = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["first"]),
        (PipeletId::egress(0), vec!["second"]),
    ]);

    // 4. Deploy onto a simulated Wedge-100B 32X.
    let config = RoutingConfig {
        exit_ports: [(1u16, 2u16)].into_iter().collect(),
        ..Default::default()
    };
    let (mut switch, deployment) = deploy(
        &[&first, &second],
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        &config,
        &DeployOptions::default(),
    )
    .expect("deployment succeeds");
    println!("deployed chain: {}", chains.chains[0]);
    println!("placement:\n{}", deployment.placement);

    // 5. Inject an SFC-encapsulated packet (no classifier in this demo, so
    //    we pre-classify it ourselves) and trace it.
    let raw = dejavu_traffic::PacketBuilder::tcp()
        .src_ip(0x0a000001)
        .dst_ip(0x0a000002)
        .build();
    let mut pkt = Vec::new();
    pkt.extend_from_slice(&raw[..12]);
    pkt.extend_from_slice(&dejavu_core::sfc::SFC_ETHERTYPE.to_be_bytes());
    pkt.extend_from_slice(&SfcHeader::for_path(1).to_bytes());
    pkt.extend_from_slice(&raw[14..]);

    let t = switch
        .inject(InjectedPacket::new(pkt, 0))
        .expect("injection succeeds");
    println!("\ndisposition: {:?}", t.disposition);
    println!(
        "recirculations: {}, resubmissions: {}",
        t.recirculations, t.resubmissions
    );
    println!("latency: {:.0} ns", t.latency_ns);
    println!("tables applied: {:?}", t.tables_applied());
    // The second stamp wins; the SFC header is stripped on the way out.
    let out = &t.final_bytes;
    assert_eq!(
        u16::from_be_bytes([out[12], out[13]]),
        0x0800,
        "decapsulated"
    );
    assert_eq!(out[15] >> 2, 0x0a, "second NF's DSCP stamp on the wire");
    println!("\nOK: packet traversed first → second and left decapsulated.");
}
