//! `dejavu-lint` over the whole NF library and the Fig. 2 deployment.
//!
//! ```text
//! cargo run -p dejavu-examples --bin lint_nfs
//! ```
//!
//! Three passes, mirroring the verification pipeline a chain operator runs
//! before deployment:
//!
//! 1. **Standalone NFs** — every program in the library is linted with the
//!    default configuration (header-validity dataflow, metadata def-use,
//!    structural checks).
//! 2. **Composed pipelets** — the paper's §5 placement (classifier+firewall
//!    on ingress 0, vgw+lb on egress 1, router on ingress 1) is merged,
//!    composed per pipelet, and linted with the framework-aware
//!    configuration plus the DJV101 SFC invariants.
//! 3. **Recirculation budget** — the Fig. 2 chain set's weighted
//!    recirculation demand is priced against the Wedge-100B loopback
//!    provisioning (DJV102).
//!
//! Exit status is non-zero if any pass reports an error-level finding, so
//! the binary doubles as a CI gate. Pass `--json` for machine-readable
//! output.

use dejavu_core::prelude::*;
use dejavu_p4ir::lint::{check, LintReport};

fn library() -> Vec<NfModule> {
    let mut nfs = dejavu_nf::edge_cloud_suite();
    nfs.extend([
        dejavu_nf::nat::nat(),
        dejavu_nf::mirror_tap::mirror_tap(),
        dejavu_nf::rate_limiter::rate_limiter(),
        dejavu_nf::syn_guard::syn_guard(),
        dejavu_nf::vxlan_gateway::vxlan_gateway(),
        dejavu_nf::null_nf("noop"),
    ]);
    nfs
}

fn show(label: &str, report: &LintReport, json: bool) {
    if json {
        println!("{}", report.render_json());
        return;
    }
    if report.is_clean() {
        println!("  {label}: clean");
    } else {
        println!("  {label}:");
        for line in report.render_pretty().lines() {
            println!("    {line}");
        }
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut errors = 0usize;

    println!("== pass 1: standalone NF programs ==");
    for nf in library() {
        let report = check(nf.program());
        errors += report.errors().len();
        show(nf.name(), &report, json);
    }

    println!("\n== pass 2: composed pipelets (Fig. 2 placement) ==");
    let nfs = dejavu_nf::edge_cloud_suite();
    let nf_refs: Vec<_> = nfs.iter().collect();
    let merged = merge_programs("dejavu", &nf_refs).expect("suite merges");
    let placement = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["classifier", "firewall"]),
        (PipeletId::egress(1), vec!["vgw", "lb"]),
        (PipeletId::ingress(1), vec!["router"]),
    ]);
    let profile = TofinoProfile::wedge_100b_32x();
    for pipeline in 0..profile.pipelines {
        for gress in [Gress::Ingress, Gress::Egress] {
            let pipelet = PipeletId { pipeline, gress };
            let nf_names = placement
                .pipelets
                .get(&pipelet)
                .cloned()
                .unwrap_or_default();
            let plan = PipeletPlan {
                pipelet,
                nfs: nf_names
                    .iter()
                    .map(|n| {
                        if n == "classifier" {
                            PlannedNf::entry(n.clone())
                        } else {
                            PlannedNf::indexed(n.clone())
                        }
                    })
                    .collect(),
                mode: CompositionMode::Sequential,
            };
            let program = compose_pipelet(&merged, &plan).expect("pipelet composes");
            let report = lint_pipelet(&program, &plan);
            errors += report.errors().len();
            show(
                &format!("{pipelet} [{}]", nf_names.join(", ")),
                &report,
                json,
            );
        }
    }

    println!("\n== pass 3: recirculation budget ==");
    let chains = ChainSet::edge_cloud_example();
    let spec = BudgetSpec {
        profile: &profile,
        loopback_ports: 2, // ports 15 and 16, as in the §5 configuration
        offered_gbps: 100.0,
        entry_pipeline: 0,
        exit_pipeline: 0,
    };
    let report = lint_chain_budget(&chains, &placement, &spec);
    errors += report.errors().len();
    show(
        &format!(
            "{} chains @ {:.0} Gbps vs {:.0} Gbps loopback",
            chains.chains.len(),
            spec.offered_gbps,
            spec.recirc_capacity_gbps()
        ),
        &report,
        json,
    );

    if errors > 0 {
        println!("\nFAIL: {errors} error-level finding(s)");
        std::process::exit(1);
    }
    println!("\nOK: library, composed pipelets, and budget all lint clean.");
}
