//! `dejavu-analyze` over the whole NF library and the Fig. 2 deployment.
//!
//! ```text
//! cargo run -p dejavu-examples --bin analyze_nfs
//! ```
//!
//! The abstract-interpretation companion to `lint_nfs`: where the lint pass
//! checks structure (DJV0xx/1xx), this binary propagates value ranges and
//! verifies stateful safety (DJV2xx/3xx). Three passes:
//!
//! 1. **Standalone NFs** — every program in the library is analyzed with
//!    the default configuration (truncation, infeasible paths, unbounded
//!    recirculation).
//! 2. **Composed pipelets** — the paper's §5 placement is merged, composed
//!    per pipelet, and analyzed; then the cross-pipelet register-hazard
//!    check (DJV301) runs over all composed programs together.
//! 3. **Stateful NFs** — the three learn-path NFs (dynamic NAT, conntrack
//!    firewall, affinity LB) are analyzed and their declared learn
//!    contracts verified against their programs (DJV302), with the
//!    documented idle-timeout recipe supplying the aged-table set (DJV303).
//!
//! Exit status is non-zero if any pass reports a finding at warning level
//! or above, so the binary doubles as a CI gate (stricter than the lint
//! gate: the NF library must be *finding-free*, not merely error-free).
//! Pass `--json` for machine-readable output. The merged findings are
//! always written to `target/experiments/ANALYZE_findings.json` as a CI
//! artifact.

use dejavu_core::prelude::*;
use dejavu_p4ir::analyze::{check, AnalysisReport};
use std::collections::BTreeSet;

fn library() -> Vec<NfModule> {
    let mut nfs = dejavu_nf::edge_cloud_suite();
    nfs.extend([
        dejavu_nf::nat::nat(),
        dejavu_nf::mirror_tap::mirror_tap(),
        dejavu_nf::rate_limiter::rate_limiter(),
        dejavu_nf::syn_guard::syn_guard(),
        dejavu_nf::vxlan_gateway::vxlan_gateway(),
        dejavu_nf::null_nf("noop"),
    ]);
    nfs
}

fn show(label: &str, report: &AnalysisReport, json: bool) {
    if json {
        println!("{}", report.render_json());
        return;
    }
    if report.is_clean() {
        println!("  {label}: clean");
    } else {
        println!("  {label}:");
        for line in report.render_pretty().lines() {
            println!("    {line}");
        }
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut merged = AnalysisReport::default();
    let mut tally = |label: &str, report: AnalysisReport| {
        show(label, &report, json);
        let n = report.findings.len();
        merged.merge(report);
        n
    };
    let mut findings = 0usize;

    println!("== pass 1: standalone NF programs ==");
    for nf in library() {
        findings += tally(nf.name(), check(nf.program()));
    }

    println!("\n== pass 2: composed pipelets (Fig. 2 placement) ==");
    let nfs = dejavu_nf::edge_cloud_suite();
    let nf_refs: Vec<_> = nfs.iter().collect();
    let merged_prog = merge_programs("dejavu", &nf_refs).expect("suite merges");
    let placement = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["classifier", "firewall"]),
        (PipeletId::egress(1), vec!["vgw", "lb"]),
        (PipeletId::ingress(1), vec!["router"]),
    ]);
    let profile = TofinoProfile::wedge_100b_32x();
    let mut composed: Vec<(String, dejavu_p4ir::Program)> = Vec::new();
    for pipeline in 0..profile.pipelines {
        for gress in [Gress::Ingress, Gress::Egress] {
            let pipelet = PipeletId { pipeline, gress };
            let nf_names = placement
                .pipelets
                .get(&pipelet)
                .cloned()
                .unwrap_or_default();
            let plan = PipeletPlan {
                pipelet,
                nfs: nf_names
                    .iter()
                    .map(|n| {
                        if n == "classifier" {
                            PlannedNf::entry(n.clone())
                        } else {
                            PlannedNf::indexed(n.clone())
                        }
                    })
                    .collect(),
                mode: CompositionMode::Sequential,
            };
            let program = compose_pipelet(&merged_prog, &plan).expect("pipelet composes");
            findings += tally(
                &format!("{pipelet} [{}]", nf_names.join(", ")),
                check(&program),
            );
            composed.push((pipelet.to_string(), program));
        }
    }
    let labeled: Vec<(String, &dejavu_p4ir::Program)> =
        composed.iter().map(|(l, p)| (l.clone(), p)).collect();
    findings += tally("cross-pipelet registers", analyze_pipelets(&labeled));

    println!("\n== pass 3: stateful NFs and learn contracts ==");
    let stateful: Vec<(NfModule, LearnContract, &str)> = vec![
        (
            dejavu_nf::nat::dynamic_nat(),
            dejavu_nf::nat::nat_learn_contract(),
            dejavu_nf::nat::NAT_IN_TABLE,
        ),
        (
            dejavu_nf::firewall::conntrack_firewall(),
            dejavu_nf::firewall::conntrack_learn_contract(),
            dejavu_nf::firewall::FW_CONN_TABLE,
        ),
        (
            dejavu_nf::load_balancer::affinity_lb(),
            dejavu_nf::load_balancer::affinity_learn_contract(),
            dejavu_nf::load_balancer::AFFINITY_TABLE,
        ),
    ];
    for (nf, contract, aged_table) in &stateful {
        findings += tally(nf.name(), check(nf.program()));
        // The documented deployment recipe ages every learned table
        // (`Deployment::set_idle_timeout`); the contract check verifies the
        // digest layout against the table/action it feeds.
        let aged: BTreeSet<String> = [aged_table.to_string()].into();
        findings += tally(
            &format!("{}/{} contract", contract.nf, contract.stream),
            check_learn_contracts(nf.program(), std::slice::from_ref(contract), &aged),
        );
    }

    let out_dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(out_dir).expect("create target/experiments");
    let out = out_dir.join("ANALYZE_findings.json");
    std::fs::write(&out, merged.render_json()).expect("write findings artifact");
    println!("\nfindings artifact: {}", out.display());

    if findings > 0 {
        println!("\nFAIL: {findings} finding(s) at warning level or above");
        std::process::exit(1);
    }
    println!("\nOK: library, composed pipelets, and learn contracts all analyze clean.");
}
