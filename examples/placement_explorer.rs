//! Placement explorer: compare fleet-scale search strategies on a
//! workload you describe on the command line.
//!
//! ```text
//! cargo run -p dejavu-examples --bin placement_explorer -- [n_chains] [n_switches] [seed]
//! ```
//!
//! Builds a reproducible synthetic fleet (defaults: 6 chains, 2 switches,
//! seed 7), then drives every [`PlacementSearch`] strategy — the
//! exhaustive oracle when the space is small enough, simulated annealing,
//! and discrete particle swarm — over the same weighted objective
//! (recirculations + cross-switch hops + per-switch stage pressure) and
//! prints a comparison table: score breakdown, candidates evaluated, and
//! wall-clock time per strategy.

use dejavu_core::orchestrator::{
    AnnealingSearch, ExhaustiveSearch, FleetProblem, PlacementSearch, SearchOutcome, SwarmSearch,
};
use std::time::Instant;

fn show(problem: &FleetProblem, name: &str, outcome: &SearchOutcome, elapsed_ms: f64) {
    let s = &outcome.score;
    println!(
        "{name:<22} {:>10.3} {:>7} {:>7} {:>6} {:>9.3} {:>10} {:>9.1}",
        s.weighted,
        s.recirculations,
        s.inter_switch_hops,
        s.resubmissions,
        s.pressure,
        outcome.evaluated,
        elapsed_ms,
    );
    for (sw, p) in outcome.placement.switches.iter().enumerate() {
        let nfs: Vec<String> = p
            .pipelets
            .iter()
            .map(|(id, nfs)| format!("{id}:[{}]", nfs.join(", ")))
            .collect();
        if !nfs.is_empty() {
            println!("    switch {sw}: {}", nfs.join("  "));
        }
    }
    debug_assert!(problem.feasible(&outcome.placement));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_chains: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let n_switches: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(7);

    let problem = FleetProblem::synthetic(n_chains, n_switches, seed);
    println!(
        "fleet workload (seed {seed}): {} chains over {} switches, {} distinct NFs",
        problem.chains().chains.len(),
        problem.switches(),
        problem.nfs().len(),
    );
    for c in &problem.chains().chains {
        println!(
            "  {} (weight {:.2}): {}",
            c.name,
            c.weight,
            c.nfs.join(" -> ")
        );
    }

    println!(
        "\n{:<22} {:>10} {:>7} {:>7} {:>6} {:>9} {:>10} {:>9}",
        "strategy", "weighted", "recirc", "hops", "resub", "pressure", "evaluated", "ms"
    );
    let strategies: Vec<Box<dyn PlacementSearch>> = vec![
        Box::new(ExhaustiveSearch::default()),
        Box::new(AnnealingSearch::new(seed, 5000)),
        Box::new(SwarmSearch::new(seed, 20, 120)),
    ];
    let mut best: Option<f64> = None;
    for strategy in &strategies {
        let started = Instant::now();
        match strategy.search(&problem) {
            Ok(outcome) => {
                let ms = started.elapsed().as_secs_f64() * 1e3;
                show(&problem, strategy.name(), &outcome, ms);
                let w = outcome.score.weighted;
                best = Some(best.map_or(w, |b: f64| b.min(w)));
            }
            Err(e) => println!("{:<22} {e}", strategy.name()),
        }
    }
    if let Some(best) = best {
        println!("\nbest weighted objective found: {best:.3}");
    }
}
