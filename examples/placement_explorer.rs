//! Placement explorer: compare placement strategies on a workload you
//! describe on the command line.
//!
//! ```text
//! cargo run -p dejavu-examples --bin placement_explorer -- [n_nfs] [n_chains] [seed]
//! ```
//!
//! Builds a random multi-chain workload (defaults: 6 NFs, 3 chains,
//! seed 7), runs the naive baseline, greedy, simulated annealing, and the
//! exhaustive optimum, and prints each placement with its weighted
//! recirculation cost and the §4 throughput it implies.

use dejavu_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn build_problem(n_nfs: usize, n_chains: usize, seed: u64) -> PlacementProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let nfs: Vec<String> = (0..n_nfs).map(|i| format!("NF{i}")).collect();
    let mut chains = Vec::new();
    for c in 0..n_chains {
        let mut seq: Vec<String> = nfs.iter().filter(|_| rng.gen_bool(0.7)).cloned().collect();
        if seq.len() < 2 {
            seq = nfs[..2.min(nfs.len())].to_vec();
        }
        chains.push(ChainPolicy {
            path_id: (c + 1) as u16,
            name: format!("chain{}", c + 1),
            nfs: seq,
            weight: rng.gen_range(0.1..1.0),
        });
    }
    let stages: BTreeMap<String, u32> = nfs
        .iter()
        .map(|n| (n.clone(), rng.gen_range(1..5)))
        .collect();
    PlacementProblem::new(ChainSet { chains }, stages)
}

fn show(name: &str, problem: &PlacementProblem, placement: &Placement) {
    let cost = problem.cost(placement).unwrap();
    // Worst chain's recirculation count prices the §4 throughput.
    let worst = problem
        .chains
        .chains
        .iter()
        .map(|c| {
            dejavu_core::placement::traverse(c, placement, 0, 0, false)
                .map(|t| t.recirculations)
                .unwrap_or(99)
        })
        .max()
        .unwrap_or(0);
    let throughput = dejavu_asic::feedback::effective_throughput_gbps(100.0, worst as usize);
    println!("\n## {name}: weighted cost {cost:.2}, worst chain {worst} recirc → {throughput:.1} Gbps/100G port");
    print!("{placement}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_nfs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let n_chains: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(7);

    let problem = build_problem(n_nfs, n_chains, seed);
    println!("workload (seed {seed}):");
    for c in &problem.chains.chains {
        println!("  {c}  (weight {:.2})", c.weight);
    }
    println!("NF stage spans: {:?}", problem.nf_stages);

    match problem.naive() {
        Ok(p) => show("naive alternating baseline", &problem, &p),
        Err(e) => println!("naive: {e}"),
    }
    match problem.greedy() {
        Ok(p) => show("greedy", &problem, &p),
        Err(e) => println!("greedy: {e}"),
    }
    match problem.anneal(seed, 5000) {
        Ok(p) => show("simulated annealing (5000 iters)", &problem, &p),
        Err(e) => println!("annealing: {e}"),
    }
    match problem.exhaustive(1 << 24) {
        Ok(p) => show("exhaustive optimum", &problem, &p),
        Err(e) => println!("exhaustive: {e}"),
    }
}
