//! Show the pseudo-P4 source Dejavu generates for a pipelet.
//!
//! ```text
//! cargo run -p dejavu-examples --bin show_merged_p4 -- [pipelet]
//! ```
//!
//! `pipelet` is one of `ingress0`, `egress0`, `ingress1`, `egress1`
//! (default `ingress0`). Prints the composed program of that pipelet for
//! the paper's Fig. 2 deployment: the generic parser that accepts raw and
//! SFC-encapsulated packets, the namespaced NF tables, and the framework's
//! dispatch / flag-check / branching / decap logic.

use dejavu_core::prelude::*;
use dejavu_p4ir::print_program;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ingress0".into());
    let (pipelet, nfs): (PipeletId, Vec<PlannedNf>) = match which.as_str() {
        "ingress0" => (
            PipeletId::ingress(0),
            vec![
                PlannedNf::entry("classifier"),
                PlannedNf::indexed("firewall"),
            ],
        ),
        "egress1" => (
            PipeletId::egress(1),
            vec![PlannedNf::indexed("vgw"), PlannedNf::indexed("lb")],
        ),
        "ingress1" => (PipeletId::ingress(1), vec![PlannedNf::indexed("router")]),
        "egress0" => (PipeletId::egress(0), vec![]),
        other => {
            eprintln!("unknown pipelet {other}; use ingress0|egress0|ingress1|egress1");
            std::process::exit(1);
        }
    };

    let suite = dejavu_nf::edge_cloud_suite();
    let refs: Vec<_> = suite.iter().collect();
    let merged = merge_programs("dejavu", &refs).expect("suite merges");
    println!(
        "// generic parser: {} vertices, {} global IDs",
        merged.program.parser.nodes.len(),
        merged.global_ids.len()
    );
    let program = compose_pipelet(
        &merged,
        &PipeletPlan {
            pipelet,
            nfs,
            mode: CompositionMode::Sequential,
        },
    )
    .expect("pipelet composes");
    print!("{}", print_program(&program));
}
