//! Closed-loop re-placement demo: a 3-switch cluster serving a learned
//! NAT chain and a marker chain watches its own telemetry, notices the
//! traffic matrix invert, searches for a better placement, and migrates
//! the NAT across switches live — zero learned flows lost.
//!
//! ```text
//! cargo run -p dejavu-examples --bin replacement_demo
//! ```
//!
//! Bounded-time and deterministic (channel transport, exhaustive search);
//! exits non-zero if any step misbehaves, so CI can gate on it.

use dejavu_asic::switch::Disposition;
use dejavu_asic::{InjectedPacket, TofinoProfile};
use dejavu_core::deploy::DeployOptions;
use dejavu_core::multiswitch::{ClusterPlacement, ClusterProblem, ClusterWiring};
use dejavu_core::orchestrator::{
    DetectorConfig, ExhaustiveSearch, FleetProblem, FleetSpec, Orchestrator, OrchestratorConfig,
    PlacementSearch, StepOutcome,
};
use dejavu_core::placement::PlacementProblem;
use dejavu_core::transport::{spawn_cluster, ChannelTransport, ClusterHandle, ClusterOptions};
use dejavu_core::{ChainPolicy, ChainSet, NfModule};
use dejavu_nf::nat::{
    dynamic_nat, nat_learn_policy, nat_out_entry, NAT_FLOW_STREAM, NAT_OUT_TABLE,
};
use dejavu_nf::{classifier, router};
use std::collections::BTreeMap;

const IN_PORT: u16 = 0;
const EXIT_PORT: u16 = 2;
const SERVER: u32 = 0x0808_0808;
const PUBLIC_IP: u32 = 0xc633_6401;
const CLIENT: u32 = 0x0a01_0101;
const MARK_CLIENT: u32 = 0x0b01_0101;
const FLOWS: u16 = 12;
const BASE_PORT: u16 = 47000;

/// Marker NF (same shape as the integration fixtures').
fn marker(name: &str, bit: u32) -> NfModule {
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::{fref, Expr};
    let p = ProgramBuilder::new(name)
        .header(dejavu_p4ir::well_known::ethernet())
        .header(dejavu_p4ir::well_known::ipv4())
        .header(dejavu_core::sfc::sfc_header_type())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("mark")
                .set(
                    fref("ipv4", "src_addr"),
                    Expr::Xor(
                        Box::new(Expr::field("ipv4", "src_addr")),
                        Box::new(Expr::val(1u128 << bit, 32)),
                    ),
                )
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new("work")
                .key_exact(fref("ipv4", "protocol"))
                .default_action("mark")
                .action("pass")
                .size(16)
                .build(),
        )
        .control(ControlBuilder::new("ctrl").apply("work").build())
        .entry("ctrl")
        .build()
        .unwrap();
    NfModule::new(p).unwrap()
}

fn outbound(src_port: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(CLIENT)
        .dst_ip(SERVER)
        .src_port(src_port)
        .dst_port(80)
        .build()
}

fn inbound(dst_port: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(SERVER)
        .dst_ip(PUBLIC_IP)
        .src_port(80)
        .dst_port(dst_port)
        .build()
}

fn mark_packet(src_port: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(MARK_CLIENT)
        .dst_ip(SERVER)
        .src_port(src_port)
        .dst_port(80)
        .build()
}

fn ip_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// Chain weights are the assumed matrix: marker-heavy before the shift.
fn fleet_problem() -> FleetProblem {
    let chains = ChainSet::new(vec![
        ChainPolicy::new(1, "nat_path", vec!["classifier", "nat", "router"], 1.0),
        ChainPolicy::new(2, "mark_path", vec!["classifier", "mark_a"], 6.0),
    ])
    .unwrap();
    let stages: BTreeMap<String, u32> = [
        ("classifier".to_string(), 2),
        ("nat".to_string(), 6),
        ("router".to_string(), 2),
        ("mark_a".to_string(), 2),
    ]
    .into_iter()
    .collect();
    let mut template = PlacementProblem::new(chains, stages);
    template.pipelines = 1;
    FleetProblem::new(ClusterProblem::new(template, 3))
}

fn arm(handle: &mut ClusterHandle) {
    handle
        .register_learn_policy("nat", NAT_FLOW_STREAM, nat_learn_policy())
        .unwrap();
    for (prefix, path) in [
        ((0x0a01_0000u32, 16u16), 1u16),
        ((0x0800_0000, 8), 1),
        ((0x0b00_0000, 8), 2),
    ] {
        handle
            .install(
                "classifier",
                classifier::CLASSIFY_TABLE,
                classifier::classify_entry(prefix, (0, 0), path, 100),
            )
            .unwrap();
    }
    handle
        .install(
            "nat",
            NAT_OUT_TABLE,
            nat_out_entry((0x0a01_0000, 16), PUBLIC_IP),
        )
        .unwrap();
    handle
        .install(
            "router",
            router::ROUTES_TABLE,
            router::route_entry((0, 0), EXIT_PORT, 0x0200_0000_0099, 0x0200_0000_0001),
        )
        .unwrap();
}

fn layout(p: &ClusterPlacement) -> String {
    p.switches
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.pipelets.is_empty())
        .map(|(sw, p)| {
            let nfs: Vec<String> = p
                .pipelets
                .iter()
                .map(|(id, nfs)| format!("{id}:[{}]", nfs.join(", ")))
                .collect();
            format!("sw{sw} {}", nfs.join(" "))
        })
        .collect::<Vec<_>>()
        .join("  |  ")
}

fn main() {
    let nfs = [
        classifier::classifier(),
        dynamic_nat(),
        router::router(),
        marker("mark_a", 0),
    ];
    let refs: Vec<&NfModule> = nfs.iter().collect();
    let problem = fleet_problem();
    let wiring = ClusterWiring::default();
    let deploy = DeployOptions {
        entry_nf: Some("classifier".into()),
        ..Default::default()
    };
    let exit_ports: BTreeMap<u16, dejavu_asic::PortId> =
        [(1u16, EXIT_PORT), (2u16, EXIT_PORT)].into_iter().collect();

    let pre = ExhaustiveSearch::default()
        .search(&problem)
        .expect("pre-shift optimum");
    println!(
        "pre-shift optimum (marker-heavy matrix):\n  {}",
        layout(&pre.placement)
    );

    let mut transport = ChannelTransport::new();
    let mut handle = spawn_cluster(
        &refs,
        problem.chains(),
        &pre.placement,
        &TofinoProfile::wedge_100b_32x(),
        exit_ports.clone(),
        &wiring,
        &deploy,
        &mut transport,
        &ClusterOptions {
            telemetry: true,
            ..Default::default()
        },
    )
    .expect("cluster spawns");
    arm(&mut handle);

    let spec = FleetSpec {
        nfs: &refs,
        chains: problem.chains(),
        profile: &TofinoProfile::wedge_100b_32x(),
        exit_ports,
        wiring: &wiring,
        deploy: &deploy,
    };
    let mut orch = Orchestrator::new(
        problem.clone(),
        pre.placement.clone(),
        Box::new(ExhaustiveSearch::default()),
        OrchestratorConfig {
            detector: DetectorConfig {
                drift_threshold: 0.25,
                hysteresis: 2,
                min_packets: 8,
                cooldown: 1,
            },
            min_gain: 0.5,
        },
    )
    .expect("orchestrator baselines");

    let mut ok = true;

    // Learn the NAT flows while the assumed matrix still holds.
    for f in 0..FLOWS {
        let t = handle
            .inject(InjectedPacket::new(outbound(BASE_PORT + f), IN_PORT))
            .expect("learn flight");
        ok &= t.disposition == Disposition::Emitted { port: EXIT_PORT };
        ok &= ip_at(&t.final_bytes, 26) == PUBLIC_IP;
    }
    handle.process_digests().expect("digest drain");
    println!("learned {FLOWS} NAT flows through the pre-shift placement");

    // Closed loop: scrape → detect → (maybe) search + migrate, window by
    // window. The traffic turns NAT-heavy; window 1 baselines, window 2
    // trips hysteresis, window 3 migrates.
    let mut migrated = false;
    for window in 1..=3u32 {
        if window > 1 {
            for f in 0..FLOWS {
                let t = handle
                    .inject(InjectedPacket::new(outbound(BASE_PORT + f), IN_PORT))
                    .expect("nat flight");
                ok &= t.disposition == Disposition::Emitted { port: EXIT_PORT };
            }
            for f in 0..2 {
                let t = handle
                    .inject(InjectedPacket::new(mark_packet(5000 + f), IN_PORT))
                    .expect("mark flight");
                ok &= t.disposition == Disposition::Emitted { port: EXIT_PORT };
            }
        }
        let scrape = handle.metrics_snapshot().expect("telemetry scrape");
        let out = orch
            .step(&mut handle, &spec, &scrape.per_switch)
            .expect("orchestrator step");
        match out {
            StepOutcome::Warming => println!("window {window}: warming (no history yet)"),
            StepOutcome::Quiet { drift } => {
                println!("window {window}: quiet (drift {drift:.2})")
            }
            StepOutcome::Suppressed { drift } => {
                println!("window {window}: drift {drift:.2} — suppressed by hysteresis")
            }
            StepOutcome::NotWorthIt { drift, gain } => {
                println!("window {window}: drift {drift:.2}, gain {gain:.2} — not worth moving");
                ok = false;
            }
            StepOutcome::Migrated {
                drift,
                gain,
                outcome,
            } => {
                println!("window {window}: drift {drift:.2}, gain {gain:.2} — migrated live:");
                for m in &outcome.moves {
                    println!("    {}  sw{} → sw{}", m.nf, m.from, m.to);
                }
                println!(
                    "    {} flows moved, {} entries restored, {} packets parked, {:.2} ms window",
                    outcome.flows_migrated,
                    outcome.restored_entries,
                    outcome.parked_packets,
                    outcome.duration_ns as f64 / 1e6,
                );
                migrated = true;
            }
        }
    }
    ok &= migrated;
    println!(
        "post-shift placement:\n  {}",
        layout(orch.current_placement())
    );

    // Zero flow loss: every mapping learned before the migration still
    // translates inbound traffic on the re-placed cluster.
    let mut surviving = 0;
    for f in 0..FLOWS {
        let t = handle
            .inject(InjectedPacket::new(inbound(BASE_PORT + f), IN_PORT))
            .expect("post-migration flight");
        if t.disposition == (Disposition::Emitted { port: EXIT_PORT })
            && ip_at(&t.final_bytes, 30) == CLIENT
        {
            surviving += 1;
        }
    }
    println!("zero flow loss: {surviving}/{FLOWS} learned flows survived the migration");
    ok &= surviving == FLOWS;

    let metrics = orch.metrics();
    println!(
        "orchestrator telemetry: {} replan(s) triggered, {} suppressed, {} flows migrated",
        metrics.counter("orchestrator_replans_triggered"),
        metrics.counter("orchestrator_replans_skipped_hysteresis"),
        metrics.counter("orchestrator_flows_migrated"),
    );

    handle.shutdown().expect("clean shutdown");
    if !ok {
        eprintln!("replacement_demo: unexpected behavior");
        std::process::exit(1);
    }
    println!("replacement_demo OK");
}
