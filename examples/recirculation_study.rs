//! Recirculation study: interactive exploration of the §4 models.
//!
//! ```text
//! cargo run -p dejavu-examples --bin recirculation_study -- [loopback_ports]
//! ```
//!
//! For a given number of loopback ports (default 16, the §5 configuration)
//! prints the capacity split, the per-k throughput table, and latency
//! figures from the calibrated timing model, then replays packet batches
//! through the compiled fast path to report measured packets/sec at each
//! recirculation count.

use dejavu_asic::feedback::{effective_throughput_gbps, simulate_fluid, solve_mix, TrafficClass};
use dejavu_asic::{PipeletId, Switch, TimingModel, TofinoProfile};
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, FieldRef, Value};
use std::time::Instant;

/// L2 forward-by-dst-MAC program used by the packet replay section.
fn l2_program() -> dejavu_p4ir::Program {
    ProgramBuilder::new("l2")
        .header(well_known::ethernet())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .accept("eth")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("fwd")
                .param("port", 16)
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(ActionBuilder::new("deny").drop_packet().build())
        .table(
            TableBuilder::new("l2")
                .key_exact(fref("ethernet", "dst_mac"))
                .action("fwd")
                .default_action("deny")
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("l2").build())
        .entry("ingress")
        .build()
        .expect("l2 program validates")
}

fn eth_packet(dst: u64) -> Vec<u8> {
    let mut p = vec![0u8; 64];
    p[..6].copy_from_slice(&dst.to_be_bytes()[2..]);
    p
}

fn install_fwd(sw: &mut Switch, pipelet: PipeletId, dst: u64, port: u16) {
    sw.install_entry(
        pipelet,
        "l2",
        TableEntry {
            matches: vec![KeyMatch::Exact(Value::new(u128::from(dst), 48))],
            action: "fwd".into(),
            action_args: vec![Value::new(u128::from(port), 16)],
            priority: 0,
        },
    )
    .expect("entry installs");
}

/// Replays batches through the compiled fast path ([`Switch::inject_batch`])
/// and prints measured packets/sec at k = 0 and k = 1 recirculations.
fn replay_fast_path() {
    // MAC 1 goes straight out (k=0); MAC 2 takes loopback port 16 into
    // pipeline 1, whose ingress then forwards it out (k=1).
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.load_program(PipeletId::ingress(0), l2_program())
        .expect("program loads");
    sw.load_program(PipeletId::ingress(1), l2_program())
        .expect("program loads");
    sw.set_loopback(16, true).expect("port 16 exists");
    install_fwd(&mut sw, PipeletId::ingress(0), 1, 2);
    install_fwd(&mut sw, PipeletId::ingress(0), 2, 16);
    install_fwd(&mut sw, PipeletId::ingress(1), 2, 2);

    println!("\nmeasured fast-path packet rate (batched injection, traces off):");
    const BATCH: usize = 20_000;
    for (label, dst, expect_recircs) in [("k=0 direct", 1u64, 0usize), ("k=1 loopback", 2, 1)] {
        let batch: Vec<(Vec<u8>, u16)> = (0..BATCH).map(|_| (eth_packet(dst), 0u16)).collect();
        let start = Instant::now();
        let stats = sw.inject_batch(&batch);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(stats.emitted, BATCH);
        assert_eq!(stats.recirculations, expect_recircs * BATCH);
        println!(
            "  {label}: {:>10.0} pps ({} packets, {} recirculations, avg model latency {:.0} ns)",
            stats.injected as f64 / elapsed,
            stats.injected,
            stats.recirculations,
            stats.latency_ns_total / stats.injected as f64,
        );
    }
}

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let profile = TofinoProfile::wedge_100b_32x();
    assert!(
        m <= profile.total_ports(),
        "at most {} ports",
        profile.total_ports()
    );

    println!(
        "switch: {} ports × {:.0}G, {} pipelines",
        profile.total_ports(),
        profile.port_gbps,
        profile.pipelines
    );
    println!("loopback ports: {m}");
    println!(
        "external capacity: {:.0} Gbps",
        profile.external_capacity_gbps(m)
    );
    println!(
        "fraction of external traffic that can recirculate once: {:.0} %",
        profile.single_recirc_fraction(m) * 100.0
    );

    println!("\nthroughput vs recirculations (one 100G port + its loopback peer):");
    println!("  {:>3} {:>12} {:>12}", "k", "analytic", "fluid sim");
    for k in 0..=5 {
        println!(
            "  {k:>3} {:>10.2} G {:>10.2} G",
            effective_throughput_gbps(100.0, k),
            simulate_fluid(100.0, k, 4000)
        );
    }

    // A mixed workload over the pooled loopback capacity.
    let loop_cap =
        m as f64 * profile.port_gbps + profile.dedicated_recirc_gbps * profile.pipelines as f64;
    let external = profile.external_capacity_gbps(m);
    let mix = solve_mix(
        &[
            TrafficClass {
                rate_gbps: external * 0.5,
                recirculations: 0,
            },
            TrafficClass {
                rate_gbps: external * 0.3,
                recirculations: 1,
            },
            TrafficClass {
                rate_gbps: external * 0.2,
                recirculations: 2,
            },
        ],
        loop_cap.max(1.0),
    );
    println!("\nmixed workload (50% k=0 / 30% k=1 / 20% k=2) over {loop_cap:.0}G loopback:");
    println!(
        "  delivery ratio at the loopback ports: {:.3}",
        mix.delivery_ratio
    );
    for (i, thr) in mix.class_throughput_gbps.iter().enumerate() {
        println!("  class {i}: {thr:.1} Gbps delivered");
    }
    println!(
        "  total goodput: {:.1} Gbps of {external:.0} offered",
        mix.total_gbps()
    );

    let t = TimingModel::tofino();
    println!("\nlatency (calibrated to the paper's measurements):");
    for k in 0..=3 {
        println!(
            "  {k} recirculations: {:.0} ns",
            t.path_with_recircs_ns(12, k)
        );
    }
    println!(
        "  off-chip hop penalty (1 m DAC): {:.0} ns",
        t.recirc_off_chip_ns
    );

    replay_fast_path();
}
