//! Recirculation study: interactive exploration of the §4 models.
//!
//! ```text
//! cargo run -p dejavu-examples --bin recirculation_study -- [loopback_ports]
//! ```
//!
//! For a given number of loopback ports (default 16, the §5 configuration)
//! prints the capacity split, the per-k throughput table, and latency
//! figures from the calibrated timing model, then replays packet batches
//! through the compiled fast path and — with telemetry enabled — compares
//! the *measured* recirculation-depth distribution against the analytic
//! delivery-ratio model ([`dejavu_asic::feedback::delivery_ratio`]).
//! The full metrics snapshot is exported to
//! `target/experiments/TELEMETRY_snapshot.json` and re-parsed with the
//! crate's own JSON parser as a self-check.

use dejavu_asic::feedback::{
    delivery_ratio, effective_throughput_gbps, simulate_fluid, solve_mix, TrafficClass,
};
use dejavu_core::prelude::*;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, FieldRef, Value};
use std::time::Instant;

/// Packets per recirculation depth in the measured study.
const PACKETS_PER_K: usize = 2_000;
/// Deepest exactly-k chain the study drives.
const MAX_K: usize = 4;
/// Loopback port feeding the recirculation chain (pipeline 1).
const LOOP_PORT: PortId = 16;
/// Front-panel port the study emits finished packets on.
const OUT_PORT: PortId = 2;

/// L2 forward-by-dst-MAC program used by the packet-rate section.
fn l2_program() -> dejavu_p4ir::Program {
    ProgramBuilder::new("l2")
        .header(well_known::ethernet())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .accept("eth")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("fwd")
                .param("port", 16)
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(ActionBuilder::new("deny").drop_packet().build())
        .table(
            TableBuilder::new("l2")
                .key_exact(fref("ethernet", "dst_mac"))
                .action("fwd")
                .default_action("deny")
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("l2").build())
        .entry("ingress")
        .build()
        .expect("l2 program validates")
}

/// Hop-counter program: `ether_type` carries the number of recirculations
/// still owed. Non-zero → decrement and bounce off the loopback port;
/// zero → emit on the front-panel port. One table entry per depth gives
/// exactly-k recirculation paths, the packet analogue of the §4 fluid
/// classes.
fn hop_program() -> dejavu_p4ir::Program {
    ProgramBuilder::new("hop")
        .header(well_known::ethernet())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .accept("eth")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("hop")
                .param("port", 16)
                .set(
                    fref("ethernet", "ether_type"),
                    Expr::Sub(
                        Box::new(Expr::field("ethernet", "ether_type")),
                        Box::new(Expr::val(1, 16)),
                    ),
                )
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("out")
                .param("port", 16)
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(ActionBuilder::new("deny").drop_packet().build())
        .table(
            TableBuilder::new("hop")
                .key_exact(fref("ethernet", "ether_type"))
                .action("hop")
                .action("out")
                .default_action("deny")
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("hop").build())
        .entry("ingress")
        .build()
        .expect("hop program validates")
}

fn eth_packet(dst: u64, ether_type: u16) -> Vec<u8> {
    let mut p = vec![0u8; 64];
    p[..6].copy_from_slice(&dst.to_be_bytes()[2..]);
    p[12..14].copy_from_slice(&ether_type.to_be_bytes());
    p
}

fn install_hop_entries(sw: &mut Switch, pipelet: PipeletId) {
    // 0 recirculations owed → out the front-panel port.
    sw.install_entry(
        pipelet,
        "hop",
        TableEntry {
            matches: vec![KeyMatch::Exact(Value::new(0, 16))],
            action: "out".into(),
            action_args: vec![Value::new(u128::from(OUT_PORT), 16)],
            priority: 0,
        },
    )
    .expect("out entry installs");
    for k in 1..=MAX_K as u128 {
        sw.install_entry(
            pipelet,
            "hop",
            TableEntry {
                matches: vec![KeyMatch::Exact(Value::new(k, 16))],
                action: "hop".into(),
                action_args: vec![Value::new(u128::from(LOOP_PORT), 16)],
                priority: 0,
            },
        )
        .expect("hop entry installs");
    }
}

fn install_fwd(sw: &mut Switch, pipelet: PipeletId, dst: u64, port: u16) {
    sw.install_entry(
        pipelet,
        "l2",
        TableEntry {
            matches: vec![KeyMatch::Exact(Value::new(u128::from(dst), 48))],
            action: "fwd".into(),
            action_args: vec![Value::new(u128::from(port), 16)],
            priority: 0,
        },
    )
    .expect("entry installs");
}

/// Replays batches through the compiled fast path ([`Switch::inject_batch`])
/// and prints measured packets/sec at k = 0 and k = 1 recirculations.
fn replay_fast_path() {
    // MAC 1 goes straight out (k=0); MAC 2 takes loopback port 16 into
    // pipeline 1, whose ingress then forwards it out (k=1).
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.load_program(PipeletId::ingress(0), l2_program())
        .expect("program loads");
    sw.load_program(PipeletId::ingress(1), l2_program())
        .expect("program loads");
    sw.set_loopback(16, true).expect("port 16 exists");
    install_fwd(&mut sw, PipeletId::ingress(0), 1, 2);
    install_fwd(&mut sw, PipeletId::ingress(0), 2, 16);
    install_fwd(&mut sw, PipeletId::ingress(1), 2, 2);

    println!("\nmeasured fast-path packet rate (batched injection, traces off):");
    const BATCH: usize = 20_000;
    for (label, dst, expect_recircs) in [("k=0 direct", 1u64, 0usize), ("k=1 loopback", 2, 1)] {
        let batch: Vec<InjectedPacket> = (0..BATCH)
            .map(|_| InjectedPacket::new(eth_packet(dst, 0), 0))
            .collect();
        let start = Instant::now();
        let stats = sw.inject_batch(&batch);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(stats.emitted, BATCH);
        assert_eq!(stats.recirculations, expect_recircs * BATCH);
        println!(
            "  {label}: {:>10.0} pps ({} packets, {} recirculations, avg model latency {:.0} ns)",
            stats.injected as f64 / elapsed,
            stats.injected,
            stats.recirculations,
            stats.latency_ns_total / stats.injected as f64,
        );
    }
}

/// Drives exactly-k recirculation chains with telemetry on, prints the
/// measured depth distribution next to the analytic delivery-ratio model,
/// exports the snapshot as JSON, and re-parses it as a self-check.
fn telemetry_study() {
    let mut sw = Switch::with_options(
        TofinoProfile::wedge_100b_32x(),
        SwitchOptions::new()
            .trace_level(TraceLevel::Off)
            .telemetry(true),
    );
    sw.load_program(PipeletId::ingress(0), hop_program())
        .expect("program loads");
    sw.load_program(PipeletId::ingress(1), hop_program())
        .expect("program loads");
    sw.set_loopback(LOOP_PORT, true).expect("loop port exists");
    install_hop_entries(&mut sw, PipeletId::ingress(0));
    install_hop_entries(&mut sw, PipeletId::ingress(1));

    // Per-depth measured latency via snapshot diffs around each batch.
    let mut per_k = Vec::new();
    for k in 0..=MAX_K {
        let before = sw.metrics_snapshot();
        let batch: Vec<InjectedPacket> = (0..PACKETS_PER_K)
            .map(|_| InjectedPacket::new(eth_packet(1, k as u16), 0))
            .collect();
        let stats = sw.inject_batch(&batch);
        assert_eq!(stats.emitted, PACKETS_PER_K, "depth {k} batch all emitted");
        assert_eq!(stats.recirculations, k * PACKETS_PER_K);
        per_k.push(sw.metrics_snapshot().diff(&before));
    }

    let snap = sw.metrics_snapshot();
    let injected = snap.counter("packets_injected");
    println!(
        "\nmeasured recirculation-depth distribution vs §4 model \
         ({PACKETS_PER_K} packets per depth, telemetry on):"
    );
    println!(
        "  {:>3} {:>9} {:>7} {:>10} {:>14} {:>13}",
        "k", "packets", "share", "rho(k)", "model rho(k)^k", "mean lat ns"
    );
    for (k, delta) in per_k.iter().enumerate() {
        let depth = snap.counter(&format!("packet_recirc_depth{{k=\"{k}\"}}"));
        assert_eq!(depth as usize, PACKETS_PER_K, "measured depth {k} count");
        let rho = delivery_ratio(k);
        let mean_lat = delta
            .histogram("packet_latency_ns")
            .map(|h| h.mean())
            .unwrap_or(0.0);
        println!(
            "  {k:>3} {depth:>9} {:>7.3} {rho:>10.3} {:>14.3} {mean_lat:>13.0}",
            depth as f64 / injected as f64,
            rho.powi(k as i32),
        );
    }
    println!(
        "  (model: rho(k) solves the §4 fixed point; rho(k)^k is the per-packet \
         delivery probability at depth k under loopback contention — the \
         simulator is uncontended, so every measured packet delivers)"
    );
    let recirc_total: u64 = (0..sw.profile().pipelines)
        .map(|p| snap.counter(&format!("recirculations{{pipeline=\"{p}\"}}")))
        .sum();
    println!(
        "  totals: {injected} injected, {} emitted, {recirc_total} recirculations, \
         feedback-queue delivery ratio {:.3}",
        snap.counter("packets_emitted"),
        snap.counter("packets_emitted") as f64 / injected as f64,
    );

    // Export the snapshot, then prove the exporter and parser agree.
    let json = to_json_string(&snap);
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("experiments dir");
    let path = dir.join("TELEMETRY_snapshot.json");
    std::fs::write(&path, &json).expect("snapshot written");
    let value = parse_json(&json).expect("exported JSON parses");
    let round = snapshot_from_json(&value).expect("exported JSON decodes");
    for key in [
        "packets_injected",
        "packets_emitted",
        "packet_recirc_depth{k=\"1\"}",
        "packet_recirc_depth{k=\"4\"}",
    ] {
        assert!(round.counter(key) > 0, "snapshot key {key} present");
    }
    assert_eq!(
        round.counter("packets_injected"),
        injected,
        "JSON round trip preserves counters"
    );
    assert!(
        round.histogram("packet_latency_ns").is_some(),
        "latency histogram survives the round trip"
    );
    println!(
        "  snapshot: {} series -> {} ({} bytes, JSON round trip verified)",
        snap.metrics.len(),
        path.display(),
        json.len()
    );
}

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let profile = TofinoProfile::wedge_100b_32x();
    assert!(
        m <= profile.total_ports(),
        "at most {} ports",
        profile.total_ports()
    );

    println!(
        "switch: {} ports × {:.0}G, {} pipelines",
        profile.total_ports(),
        profile.port_gbps,
        profile.pipelines
    );
    println!("loopback ports: {m}");
    println!(
        "external capacity: {:.0} Gbps",
        profile.external_capacity_gbps(m)
    );
    println!(
        "fraction of external traffic that can recirculate once: {:.0} %",
        profile.single_recirc_fraction(m) * 100.0
    );

    println!("\nthroughput vs recirculations (one 100G port + its loopback peer):");
    println!("  {:>3} {:>12} {:>12}", "k", "analytic", "fluid sim");
    for k in 0..=5 {
        println!(
            "  {k:>3} {:>10.2} G {:>10.2} G",
            effective_throughput_gbps(100.0, k),
            simulate_fluid(100.0, k, 4000)
        );
    }

    // A mixed workload over the pooled loopback capacity.
    let loop_cap =
        m as f64 * profile.port_gbps + profile.dedicated_recirc_gbps * profile.pipelines as f64;
    let external = profile.external_capacity_gbps(m);
    let mix = solve_mix(
        &[
            TrafficClass {
                rate_gbps: external * 0.5,
                recirculations: 0,
            },
            TrafficClass {
                rate_gbps: external * 0.3,
                recirculations: 1,
            },
            TrafficClass {
                rate_gbps: external * 0.2,
                recirculations: 2,
            },
        ],
        loop_cap.max(1.0),
    );
    println!("\nmixed workload (50% k=0 / 30% k=1 / 20% k=2) over {loop_cap:.0}G loopback:");
    println!(
        "  delivery ratio at the loopback ports: {:.3}",
        mix.delivery_ratio
    );
    for (i, thr) in mix.class_throughput_gbps.iter().enumerate() {
        println!("  class {i}: {thr:.1} Gbps delivered");
    }
    println!(
        "  total goodput: {:.1} Gbps of {external:.0} offered",
        mix.total_gbps()
    );

    let t = TimingModel::tofino();
    println!("\nlatency (calibrated to the paper's measurements):");
    for k in 0..=3 {
        println!(
            "  {k} recirculations: {:.0} ns",
            t.path_with_recircs_ns(12, k)
        );
    }
    println!(
        "  off-chip hop penalty (1 m DAC): {:.0} ns",
        t.recirc_off_chip_ns
    );

    replay_fast_path();
    telemetry_study();
}
