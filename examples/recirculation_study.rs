//! Recirculation study: interactive exploration of the §4 models.
//!
//! ```text
//! cargo run -p dejavu-examples --bin recirculation_study -- [loopback_ports]
//! ```
//!
//! For a given number of loopback ports (default 16, the §5 configuration)
//! prints the capacity split, the per-k throughput table, and latency
//! figures from the calibrated timing model.

use dejavu_asic::feedback::{effective_throughput_gbps, simulate_fluid, solve_mix, TrafficClass};
use dejavu_asic::{TimingModel, TofinoProfile};

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let profile = TofinoProfile::wedge_100b_32x();
    assert!(
        m <= profile.total_ports(),
        "at most {} ports",
        profile.total_ports()
    );

    println!(
        "switch: {} ports × {:.0}G, {} pipelines",
        profile.total_ports(),
        profile.port_gbps,
        profile.pipelines
    );
    println!("loopback ports: {m}");
    println!(
        "external capacity: {:.0} Gbps",
        profile.external_capacity_gbps(m)
    );
    println!(
        "fraction of external traffic that can recirculate once: {:.0} %",
        profile.single_recirc_fraction(m) * 100.0
    );

    println!("\nthroughput vs recirculations (one 100G port + its loopback peer):");
    println!("  {:>3} {:>12} {:>12}", "k", "analytic", "fluid sim");
    for k in 0..=5 {
        println!(
            "  {k:>3} {:>10.2} G {:>10.2} G",
            effective_throughput_gbps(100.0, k),
            simulate_fluid(100.0, k, 4000)
        );
    }

    // A mixed workload over the pooled loopback capacity.
    let loop_cap =
        m as f64 * profile.port_gbps + profile.dedicated_recirc_gbps * profile.pipelines as f64;
    let external = profile.external_capacity_gbps(m);
    let mix = solve_mix(
        &[
            TrafficClass {
                rate_gbps: external * 0.5,
                recirculations: 0,
            },
            TrafficClass {
                rate_gbps: external * 0.3,
                recirculations: 1,
            },
            TrafficClass {
                rate_gbps: external * 0.2,
                recirculations: 2,
            },
        ],
        loop_cap.max(1.0),
    );
    println!("\nmixed workload (50% k=0 / 30% k=1 / 20% k=2) over {loop_cap:.0}G loopback:");
    println!(
        "  delivery ratio at the loopback ports: {:.3}",
        mix.delivery_ratio
    );
    for (i, thr) in mix.class_throughput_gbps.iter().enumerate() {
        println!("  class {i}: {thr:.1} Gbps delivered");
    }
    println!(
        "  total goodput: {:.1} Gbps of {external:.0} offered",
        mix.total_gbps()
    );

    let t = TimingModel::tofino();
    println!("\nlatency (calibrated to the paper's measurements):");
    for k in 0..=3 {
        println!(
            "  {k} recirculations: {:.0} ns",
            t.path_with_recircs_ns(12, k)
        );
    }
    println!(
        "  off-chip hop penalty (1 m DAC): {:.0} ns",
        t.recirc_off_chip_ns
    );
}
