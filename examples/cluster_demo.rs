//! Cluster runtime demo: a 9-NF chain spilled across three switches, each
//! running as a real worker thread behind a framed TCP socket on localhost
//! (§7: back-to-back ASICs as one big pipeline).
//!
//! ```text
//! cargo run -p dejavu-examples --bin cluster_demo
//! ```
//!
//! Packets are injected through the synchronous facade; each one crosses
//! the cluster carrying its own in-band flight record, and the controller
//! scrapes and merges every member's telemetry at the end. Exits non-zero
//! if any flight misbehaves, so CI can gate on it.

use dejavu_core::prelude::*;
use std::collections::BTreeMap;

/// Marker NF (same shape as the integration fixtures').
fn marker(name: &str, bit: u32) -> dejavu_core::NfModule {
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::{fref, Expr};
    let p = ProgramBuilder::new(name)
        .header(dejavu_p4ir::well_known::ethernet())
        .header(dejavu_p4ir::well_known::ipv4())
        .header(dejavu_core::sfc::sfc_header_type())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("mark")
                .set(
                    fref("ipv4", "src_addr"),
                    Expr::Xor(
                        Box::new(Expr::field("ipv4", "src_addr")),
                        Box::new(Expr::val(1u128 << (bit % 32), 32)),
                    ),
                )
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new("work")
                .key_exact(fref("ipv4", "protocol"))
                .default_action("mark")
                .action("pass")
                .size(16)
                .build(),
        )
        .control(ControlBuilder::new("ctrl").apply("work").build())
        .entry("ctrl")
        .build()
        .unwrap();
    dejavu_core::NfModule::new(p).unwrap()
}

/// An SFC-encapsulated TCP packet for `path` at service index `idx`.
fn encapsulated(path: u16, idx: u8) -> Vec<u8> {
    let raw = dejavu_traffic::PacketBuilder::tcp().build();
    let mut sfc = SfcHeader::for_path(path);
    sfc.service_index = idx;
    let mut out = Vec::with_capacity(raw.len() + 20);
    out.extend_from_slice(&raw[..12]);
    out.extend_from_slice(&SFC_ETHERTYPE.to_be_bytes());
    out.extend_from_slice(&sfc.to_bytes());
    out.extend_from_slice(&raw[14..]);
    out
}

const EXIT_PORT: u16 = 2;
const IN_PORT: u16 = 0;

fn main() {
    // A chain of nine NFs: too many MAU stages for one ASIC, so spill it
    // three-per-switch across a three-member cluster.
    let names: Vec<String> = (0..9).map(|i| format!("fw{i}")).collect();
    let nfs: Vec<NfModule> = names
        .iter()
        .enumerate()
        .map(|(i, n)| marker(n, i as u32))
        .collect();
    let refs: Vec<&NfModule> = nfs.iter().collect();
    let chains = ChainSet::new(vec![ChainPolicy {
        path_id: 1,
        name: "spilled".into(),
        nfs: names.clone(),
        weight: 1.0,
    }])
    .unwrap();
    let placement = ClusterPlacement {
        switches: (0..3)
            .map(|s| {
                let mut p = Placement::default();
                p.pipelets.insert(
                    PipeletId::ingress(0),
                    vec![names[s * 3].clone(), names[s * 3 + 1].clone()],
                );
                p.pipelets
                    .insert(PipeletId::egress(0), vec![names[s * 3 + 2].clone()]);
                p
            })
            .collect(),
    };

    // Real worker threads talking framed TCP over localhost.
    let mut transport = TcpTransport::new();
    let exit_ports: BTreeMap<u16, PortId> = [(1u16, EXIT_PORT)].into_iter().collect();
    let mut cluster = spawn_cluster(
        &refs,
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        exit_ports,
        &ClusterWiring::default(),
        &DeployOptions::default(),
        &mut transport,
        &ClusterOptions {
            telemetry: true,
            ..Default::default()
        },
    )
    .expect("cluster spawns");
    println!(
        "cluster up: {} workers over {} transport",
        cluster.members(),
        cluster.transport_kind()
    );
    for nf in &names {
        print!("  {nf}→sw{} ", cluster.switch_of(nf).unwrap());
    }
    println!();

    // Drive a few flights: a full-chain packet plus mid-chain entries.
    // Every packet transits all three members, but a mid-chain entry does
    // NF work only from its service index onward — earlier switches just
    // forward it over the wire.
    let mut ok = true;
    for (label, idx, working_switches) in [
        ("full chain   ", 0u8, 3usize),
        ("enter at fw3 ", 3, 2),
        ("enter at fw6 ", 6, 1),
    ] {
        let t = cluster
            .inject(InjectedPacket::new(encapsulated(1, idx), IN_PORT))
            .expect("flight completes");
        let visited: Vec<String> = t.hops.iter().map(|h| format!("sw{}", h.switch)).collect();
        let worked = t
            .hops
            .iter()
            .filter(|h| h.tables_applied.iter().any(|x| x.ends_with("__work")))
            .count();
        println!(
            "{label} {:>7.1} ns  {} wire hop(s)  via [{}]  work on {worked} member(s)  {:?}",
            t.latency_ns,
            t.inter_switch_hops,
            visited.join(" → "),
            t.disposition,
        );
        ok &= t.disposition == dejavu_asic::switch::Disposition::Emitted { port: EXIT_PORT };
        ok &= t.hops.len() == 3 && worked == working_switches;
    }

    // Merged telemetry: one scrape fans out to every worker and folds the
    // snapshots into a single cluster-wide view.
    let scrape = cluster.metrics_snapshot().expect("metrics scrape");
    println!(
        "telemetry: cluster saw {} packets ({} per-member snapshots merged)",
        scrape.merged.counter("packets_injected"),
        scrape.per_switch.len()
    );
    for (i, snap) in scrape.per_switch.iter().enumerate() {
        println!(
            "  sw{i}: injected={} emitted={}",
            snap.counter("packets_injected"),
            snap.counter("packets_emitted"),
        );
    }
    ok &= scrape.merged.counter("packets_injected") >= 3;

    cluster.shutdown().expect("clean shutdown");
    if !ok {
        eprintln!("cluster_demo: unexpected flight results");
        std::process::exit(1);
    }
    println!("cluster_demo OK");
}
