//! Multi-switch chaining (§7): place a chain too large for one ASIC across
//! a back-to-back cluster.
//!
//! ```text
//! cargo run -p dejavu-examples --bin multi_switch -- [chain_length] [cluster_size]
//! ```
//!
//! Defaults: a 14-NF chain over 3 switches. Prints the spill placement,
//! the hop/recirculation breakdown, and the latency estimate using the
//! on-chip (≈75 ns) vs off-chip (≈145 ns) costs of Fig. 8(b).

use dejavu_core::prelude::*;
use std::collections::BTreeMap;

/// Marker NF (same shape as the integration fixtures').
fn dejavu_integration_marker(name: &str, bit: u32) -> dejavu_core::NfModule {
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::{fref, Expr};
    let p = ProgramBuilder::new(name)
        .header(dejavu_p4ir::well_known::ethernet())
        .header(dejavu_p4ir::well_known::ipv4())
        .header(dejavu_core::sfc::sfc_header_type())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("mark")
                .set(
                    fref("ipv4", "src_addr"),
                    Expr::Xor(
                        Box::new(Expr::field("ipv4", "src_addr")),
                        Box::new(Expr::val(1u128 << (bit % 32), 32)),
                    ),
                )
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new("work")
                .key_exact(fref("ipv4", "protocol"))
                .default_action("mark")
                .action("pass")
                .size(16)
                .build(),
        )
        .control(ControlBuilder::new("ctrl").apply("work").build())
        .entry("ctrl")
        .build()
        .unwrap();
    dejavu_core::NfModule::new(p).unwrap()
}

/// An SFC-encapsulated TCP packet for `path` at index 0.
fn encapsulated(path: u16) -> Vec<u8> {
    let raw = dejavu_traffic::PacketBuilder::tcp().build();
    let sfc = dejavu_core::SfcHeader::for_path(path);
    let mut out = Vec::new();
    out.extend_from_slice(&raw[..12]);
    out.extend_from_slice(&dejavu_core::sfc::SFC_ETHERTYPE.to_be_bytes());
    out.extend_from_slice(&sfc.to_bytes());
    out.extend_from_slice(&raw[14..]);
    out
}

fn main() {
    let chain_len: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let cluster_size: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let nfs: Vec<String> = (0..chain_len).map(|i| format!("NF{i}")).collect();
    let chains = ChainSet::new(vec![ChainPolicy {
        path_id: 1,
        name: "long-chain".into(),
        nfs: nfs.clone(),
        weight: 1.0,
    }])
    .unwrap();
    let stages: BTreeMap<String, u32> = nfs.iter().map(|n| (n.clone(), 3u32)).collect();
    let template = PlacementProblem::new(chains, stages);
    let problem = ClusterProblem::new(template, cluster_size);

    println!("chain of {chain_len} NFs (3 stages each) over {cluster_size} back-to-back switches");
    match problem.greedy_spill() {
        Ok(placement) => {
            for (i, sw) in placement.switches.iter().enumerate() {
                if sw.pipelets.values().any(|v| !v.is_empty()) {
                    println!("\nswitch {i}:");
                    print!("{sw}");
                }
            }
            let cost = problem
                .chain_cost(&problem.template.chains.chains[0], &placement)
                .unwrap();
            println!("\ninter-switch hops: {}", cost.inter_switch_hops);
            println!("on-chip recirculations: {}", cost.recirculations);
            println!("resubmissions: {}", cost.resubmissions);
            let used = placement
                .switches
                .iter()
                .filter(|p| p.pipelets.values().any(|v| !v.is_empty()))
                .count();
            let timing = TimingModel::tofino();
            let passes = (2 * used) as u32 + 2 * cost.recirculations + 2 * cost.inter_switch_hops;
            println!(
                "estimated end-to-end latency: {:.0} ns",
                chain_latency_ns(&cost, passes, 12, &timing)
            );
            println!(
                "objective (recirc-equivalents, off-chip hop = {:.1}x): {:.2}",
                problem.hop_weight,
                problem.cost(&problem.template.chains, &placement).unwrap()
            );

            // Now run it for real: deploy the cluster with marker NFs and
            // drive a packet through every switch.
            let nf_names: Vec<String> = (0..chain_len).map(|i| format!("NF{i}")).collect();
            let nfs: Vec<_> = nf_names
                .iter()
                .enumerate()
                .map(|(i, n)| dejavu_integration_marker(n, i as u32))
                .collect();
            let refs: Vec<_> = nfs.iter().collect();
            let mut net = deploy_cluster(
                &refs,
                &problem.template.chains,
                &placement,
                &dejavu_asic::TofinoProfile::wedge_100b_32x(),
                [(1u16, 2u16)].into_iter().collect(),
                &ClusterWiring::default(),
                &DeployOptions::default(),
            )
            .expect("cluster deploys");
            let pkt = encapsulated(1);
            let t = net.inject(InjectedPacket::new(pkt, 0)).expect("injection");
            println!("\nlive run: {:?}", t.disposition);
            println!(
                "  switches visited: {:?}, wire hops: {}, recirculations: {}, latency {:.0} ns",
                t.hops.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                t.inter_switch_hops,
                t.recirculations,
                t.latency_ns
            );
        }
        Err(e) => {
            println!("infeasible: {e}");
            println!(
                "try a larger cluster: cargo run --bin multi_switch -- {chain_len} {}",
                cluster_size + 1
            );
        }
    }
}
