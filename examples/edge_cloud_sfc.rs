//! The paper's Fig. 2 edge-cloud scenario, end to end.
//!
//! ```text
//! cargo run -p dejavu-examples --bin edge_cloud_sfc
//! ```
//!
//! Five production NFs (classifier, firewall, virtualization gateway, L4
//! load balancer, IP router), three service paths, deployed on a simulated
//! 2-pipeline Tofino with pipeline 1 in loopback mode (§5's configuration).
//! Shows classification, per-path traversal, the LB control-plane loop, and
//! the firewall's deny path.

use dejavu_core::prelude::*;
use dejavu_nf::classifier::{classify_entry, CLASSIFY_TABLE};
use dejavu_nf::firewall::{deny_entry, ACL_TABLE};
use dejavu_nf::load_balancer::{five_tuple_of, session_entry_for, SESSION_TABLE};
use dejavu_nf::router::{route_entry, ROUTES_TABLE};
use dejavu_nf::vgw::{vni_entry, VNI_TABLE};

const EXIT_PORT: u16 = 2;
const VIP: u32 = 0xc633_6450; // 198.51.100.80
const BACKEND: u32 = 0x0a63_0001;

fn main() {
    // NFs and chains straight from the paper's Fig. 2.
    let nfs = dejavu_nf::edge_cloud_suite();
    let nf_refs: Vec<_> = nfs.iter().collect();
    let chains = ChainSet::edge_cloud_example();
    for c in &chains.chains {
        println!("{c}  (weight {:.0}%)", c.weight * 100.0);
    }

    // §5-style placement and loopback configuration.
    let placement = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["classifier", "firewall"]),
        (PipeletId::egress(1), vec!["vgw", "lb"]),
        (PipeletId::ingress(1), vec!["router"]),
    ]);
    let config = RoutingConfig {
        loopback_port: [(0usize, 15u16), (1usize, 16u16)].into_iter().collect(),
        exit_ports: chains
            .chains
            .iter()
            .map(|c| (c.path_id, EXIT_PORT))
            .collect(),
        honor_out_port: false,
    };
    let options = DeployOptions {
        entry_nf: Some("classifier".into()),
        ..Default::default()
    };
    let (mut switch, deployment) = deploy(
        &nf_refs,
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        &config,
        &options,
    )
    .expect("Fig. 2 deployment succeeds");
    println!("\nplacement:\n{}", deployment.placement);

    // Tenant policy: a source prefix per path, one VNI, one deny rule, a
    // default route.
    for path in [1u16, 2, 3] {
        let prefix = (0x0a00_0000 | (u32::from(path) << 16), 16);
        deployment
            .install(
                &mut switch,
                "classifier",
                CLASSIFY_TABLE,
                classify_entry(prefix, (0, 0), path, 100 + path),
            )
            .unwrap();
    }
    deployment
        .install(
            &mut switch,
            "firewall",
            ACL_TABLE,
            deny_entry((0x0a01_0000, 16), (0, 0), Some(6), (22, 22), 10),
        )
        .unwrap();
    deployment
        .install(
            &mut switch,
            "vgw",
            VNI_TABLE,
            vni_entry((0xc633_6400, 24), 700),
        )
        .unwrap();
    deployment
        .install(
            &mut switch,
            "router",
            ROUTES_TABLE,
            route_entry((0, 0), EXIT_PORT, 0x0200_0000_0099, 0x0200_0000_0001),
        )
        .unwrap();

    // Control plane with the LB session-learning handler (§3.1).
    let mut cp = ControlPlane::new();
    cp.register_handler(
        "lb",
        Box::new(|bytes| match five_tuple_of(bytes) {
            Some(t) if t.dst_addr == VIP => PuntResponse {
                install: vec![(
                    "lb".into(),
                    SESSION_TABLE.into(),
                    session_entry_for(&t, BACKEND),
                )],
                reinject: true,
                reinject_bytes: rewind_and_clear(bytes),
            },
            _ => PuntResponse::default(),
        }),
    );

    let pkt = |path: u16, dst_port: u16| {
        dejavu_traffic::PacketBuilder::tcp()
            .src_ip(0x0a00_0101 | (u32::from(path) << 16))
            .dst_ip(VIP)
            .dst_port(dst_port)
            .build()
    };

    println!("\n--- path 1 (full chain): first packet punts at the LB ---");
    let t = cp
        .inject_tracking_punts(&mut switch, pkt(1, 80), 0)
        .unwrap();
    println!(
        "first packet: {:?} ({} punt queued)",
        t.disposition,
        cp.pending_punts()
    );
    let reinjected = cp.process_punts(&mut switch, &deployment).unwrap();
    println!(
        "after control-plane round: {:?}, recirculations {}",
        reinjected[0].disposition, reinjected[0].recirculations
    );
    let t = cp
        .inject_tracking_punts(&mut switch, pkt(1, 80), 0)
        .unwrap();
    let out = &t.final_bytes;
    println!(
        "second packet stays in the data plane: {:?}, dst rewritten to {}.{}.{}.{}",
        t.disposition, out[30], out[31], out[32], out[33]
    );
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });

    println!("\n--- path 2 (classifier → vgw → router) ---");
    let t = switch.inject(InjectedPacket::new(pkt(2, 80), 0)).unwrap();
    println!(
        "{:?}, recirculations {}, latency {:.0} ns",
        t.disposition, t.recirculations, t.latency_ns
    );

    println!("\n--- path 3 (classifier → router) ---");
    let t = switch.inject(InjectedPacket::new(pkt(3, 80), 0)).unwrap();
    println!(
        "{:?}, recirculations {}, latency {:.0} ns",
        t.disposition, t.recirculations, t.latency_ns
    );

    println!("\n--- firewall deny (path 1, tcp/22) ---");
    let t = switch.inject(InjectedPacket::new(pkt(1, 22), 0)).unwrap();
    println!("{:?} (dropped in the ingress pipe)", t.disposition);
    assert_eq!(t.disposition, Disposition::Dropped);

    println!("\nOK: all Fig. 2 paths behave as in the paper's prototype.");
}
