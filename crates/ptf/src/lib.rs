//! # dejavu-ptf — a Packet Test Framework analogue
//!
//! The paper validates its prototype with the P4 community's Packet Test
//! Framework: *"We test the input and output packets of multiple SFC paths
//! using the Packet Test Framework and have verified that the placement and
//! routing logic in our example successfully achieve the original
//! functionalities"* (§5).
//!
//! This crate provides the same workflow over the simulated switch:
//! declare test cases (inject a packet on a port, expect it on a port /
//! dropped / punted, optionally verify the bytes and the traversal), run
//! the suite, and collect a pass/fail report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dejavu_asic::switch::Disposition;
use dejavu_asic::{
    ExecMode, IndexKind, InjectedPacket, MetricsSnapshot, PortId, Switch, Traversal,
};
use std::fmt;

/// Byte-level check applied to the emitted/punted packet.
pub type PacketCheck = Box<dyn Fn(&[u8]) -> Result<(), String>>;
/// Trace-level check applied to the whole traversal.
pub type TraversalCheck = Box<dyn Fn(&Traversal) -> Result<(), String>>;

/// What a test case expects to happen.
pub enum Expect {
    /// Emitted on the given port.
    Emitted {
        /// Expected output port.
        port: PortId,
    },
    /// Dropped inside the switch.
    Dropped,
    /// Punted to the control plane.
    ToCpu,
}

/// One PTF test case.
pub struct TestCase {
    /// Human-readable name.
    pub name: String,
    /// Ingress port for injection.
    pub in_port: PortId,
    /// The packet to inject.
    pub packet: Vec<u8>,
    /// Expected disposition.
    pub expect: Expect,
    /// Optional byte checks on the final packet.
    pub packet_checks: Vec<PacketCheck>,
    /// Optional checks on the traversal (recirculation counts, tables hit…).
    pub traversal_checks: Vec<TraversalCheck>,
}

impl TestCase {
    /// A case expecting emission on `port`.
    pub fn expect_port(name: &str, in_port: PortId, packet: Vec<u8>, port: PortId) -> Self {
        TestCase {
            name: name.to_string(),
            in_port,
            packet,
            expect: Expect::Emitted { port },
            packet_checks: Vec::new(),
            traversal_checks: Vec::new(),
        }
    }

    /// A case expecting a drop.
    pub fn expect_drop(name: &str, in_port: PortId, packet: Vec<u8>) -> Self {
        TestCase {
            name: name.to_string(),
            in_port,
            packet,
            expect: Expect::Dropped,
            packet_checks: Vec::new(),
            traversal_checks: Vec::new(),
        }
    }

    /// A case expecting a CPU punt.
    pub fn expect_cpu(name: &str, in_port: PortId, packet: Vec<u8>) -> Self {
        TestCase {
            name: name.to_string(),
            in_port,
            packet,
            expect: Expect::ToCpu,
            packet_checks: Vec::new(),
            traversal_checks: Vec::new(),
        }
    }

    /// Adds a byte-level check.
    pub fn check_packet(mut self, check: impl Fn(&[u8]) -> Result<(), String> + 'static) -> Self {
        self.packet_checks.push(Box::new(check));
        self
    }

    /// Adds a traversal check.
    pub fn check_traversal(
        mut self,
        check: impl Fn(&Traversal) -> Result<(), String> + 'static,
    ) -> Self {
        self.traversal_checks.push(Box::new(check));
        self
    }

    /// Shortcut: assert an exact recirculation count.
    pub fn expect_recirculations(self, n: usize) -> Self {
        self.check_traversal(move |t| {
            if t.recirculations == n {
                Ok(())
            } else {
                Err(format!(
                    "expected {n} recirculations, took {}",
                    t.recirculations
                ))
            }
        })
    }

    /// Shortcut: assert that a table was applied (hit or miss) somewhere
    /// along the way.
    pub fn expect_table_applied(self, table: &str) -> Self {
        let table = table.to_string();
        self.check_traversal(move |t| {
            if t.tables_applied().contains(&table.as_str()) {
                Ok(())
            } else {
                Err(format!(
                    "table {table} was not applied (applied: {:?})",
                    t.tables_applied()
                ))
            }
        })
    }

    /// Shortcut: assert that a table was hit somewhere along the way.
    pub fn expect_table_hit(self, table: &str) -> Self {
        let table = table.to_string();
        self.check_traversal(move |t| {
            if t.tables_hit().contains(&table.as_str()) {
                Ok(())
            } else {
                Err(format!(
                    "table {table} was not hit (hits: {:?})",
                    t.tables_hit()
                ))
            }
        })
    }
}

/// Result of one case.
#[derive(Debug)]
pub struct CaseResult {
    /// Case name.
    pub name: String,
    /// Failure reason, `None` on pass.
    pub failure: Option<String>,
    /// The traversal (for diagnostics), if injection succeeded.
    pub traversal: Option<Traversal>,
}

/// Suite-level report.
#[derive(Debug, Default)]
pub struct PtfReport {
    /// Per-case results.
    pub results: Vec<CaseResult>,
}

impl PtfReport {
    /// Number of passing cases.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.failure.is_none()).count()
    }

    /// Number of failing cases.
    pub fn failed(&self) -> usize {
        self.results.len() - self.passed()
    }

    /// True when all cases passed.
    pub fn all_passed(&self) -> bool {
        self.failed() == 0
    }

    /// Panics with a readable summary if any case failed (test helper).
    pub fn assert_all_passed(&self) {
        if !self.all_passed() {
            panic!("{self}");
        }
    }
}

impl fmt::Display for PtfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PTF: {} passed, {} failed", self.passed(), self.failed())?;
        for r in &self.results {
            match &r.failure {
                None => writeln!(f, "  PASS {}", r.name)?,
                Some(reason) => writeln!(f, "  FAIL {}: {}", r.name, reason)?,
            }
        }
        Ok(())
    }
}

/// Check applied to the telemetry delta a suite produced.
pub type MetricsCheck = Box<dyn Fn(&MetricsSnapshot) -> Result<(), String>>;

/// Assertions on the [`MetricsSnapshot`] delta produced by running a suite
/// (see [`run_suite_with_metrics`]). Each expectation becomes one extra
/// `metrics: <label>` row in the [`PtfReport`], so metric regressions read
/// like failing test cases.
#[derive(Default)]
pub struct MetricsExpectations {
    checks: Vec<(String, MetricsCheck)>,
}

impl MetricsExpectations {
    /// No expectations yet.
    pub fn new() -> Self {
        MetricsExpectations::default()
    }

    /// Expects a counter's delta to be exactly `expected`.
    pub fn counter(self, name: &str, expected: u64) -> Self {
        let name = name.to_string();
        let label = format!("{name} == {expected}");
        self.check(&label, move |s| {
            let got = s.counter(&name);
            if got == expected {
                Ok(())
            } else {
                Err(format!("counter {name}: expected {expected}, got {got}"))
            }
        })
    }

    /// Expects a counter's delta to be at least `min`.
    pub fn counter_at_least(self, name: &str, min: u64) -> Self {
        let name = name.to_string();
        let label = format!("{name} >= {min}");
        self.check(&label, move |s| {
            let got = s.counter(&name);
            if got >= min {
                Ok(())
            } else {
                Err(format!(
                    "counter {name}: expected at least {min}, got {got}"
                ))
            }
        })
    }

    /// Expects exactly `expected` digests to have been emitted by
    /// `pipeline` over the suite — the flow-state analogue of checking
    /// punt counters: a learning NF should digest once per new flow and
    /// stay silent on established traffic.
    pub fn digests_emitted(self, pipeline: usize, expected: u64) -> Self {
        self.counter(
            &format!("digests_emitted{{pipeline=\"{pipeline}\"}}"),
            expected,
        )
    }

    /// Expects exactly `expected` entries to have aged out of `table` on
    /// `pipelet` over the suite (merged table name, e.g. `nat__nat_in`).
    pub fn evictions(self, pipelet: &str, table: &str, expected: u64) -> Self {
        self.counter(
            &format!("table_evictions{{pipelet=\"{pipelet}\",table=\"{table}\"}}"),
            expected,
        )
    }

    /// Expects the classification index serving `table` on `pipelet` to be
    /// `kind` at the end of the suite (the `table_index_kind` gauge carries
    /// the kind's ordinal; gauges keep their instantaneous value through
    /// the delta).
    pub fn index_kind(self, pipelet: &str, table: &str, kind: IndexKind) -> Self {
        let name = format!("table_index_kind{{pipelet=\"{pipelet}\",table=\"{table}\"}}");
        let label = format!("{name} == {}", kind.name());
        self.check(&label, move |s| {
            let got = s.gauge(&name);
            if got == kind.ordinal() {
                Ok(())
            } else {
                Err(format!(
                    "gauge {name}: expected {} ({}), got ordinal {got}",
                    kind.ordinal(),
                    kind.name()
                ))
            }
        })
    }

    /// Expects at least `min` index probes against `table` on `pipelet`
    /// over the suite — every lookup routed through the classification
    /// index records its probe count, so a suite that exercises the table
    /// must move this counter.
    pub fn index_probes_at_least(self, pipelet: &str, table: &str, min: u64) -> Self {
        self.counter_at_least(
            &format!("table_index_probes{{pipelet=\"{pipelet}\",table=\"{table}\"}}"),
            min,
        )
    }

    /// Expects exactly `expected` index rebuilds on `table` at `pipelet`
    /// over the suite (bulk reindexes from migrations, deletes, or
    /// incremental-insert bailouts).
    pub fn index_rebuilds(self, pipelet: &str, table: &str, expected: u64) -> Self {
        self.counter(
            &format!("table_index_rebuilds{{pipelet=\"{pipelet}\",table=\"{table}\"}}"),
            expected,
        )
    }

    /// Expects the run-to-completion workers to have processed exactly
    /// `expected` packets in total (sum of the `rtc_worker_packets{core}`
    /// family an [`RtcReport`] snapshot carries).
    ///
    /// [`RtcReport`]: dejavu_asic::RtcReport
    pub fn rtc_packets(self, expected: u64) -> Self {
        self.family_total("rtc_worker_packets", expected)
    }

    /// Expects run-to-completion worker `core` to have processed at least
    /// `min` packets — flow steering must actually spread the workload.
    pub fn rtc_worker_at_least(self, core: usize, min: u64) -> Self {
        self.counter_at_least(&format!("rtc_worker_packets{{core=\"{core}\"}}"), min)
    }

    /// Expects exactly `expected` pool-exhaustion events (failed buffer
    /// acquisitions) over the run.
    pub fn pool_exhausted(self, expected: u64) -> Self {
        self.counter("pool_exhausted", expected)
    }

    /// Expects the `pool_in_use` peak gauge to be at least `min` — a run
    /// that moved packets must have had buffers in flight.
    pub fn pool_in_use_at_least(self, min: i64) -> Self {
        let label = format!("pool_in_use >= {min}");
        self.check(&label, move |s| {
            let got = s.gauge("pool_in_use");
            if got >= min {
                Ok(())
            } else {
                Err(format!(
                    "gauge pool_in_use: expected at least {min}, got {got}"
                ))
            }
        })
    }

    /// Expects the ring-depth histogram (`rtc_ring_depth{core,bucket}`) to
    /// hold exactly `expected` samples — the executor samples occupancy
    /// once per ring pop, so this equals the packets the rings carried.
    pub fn rtc_ring_samples(self, expected: u64) -> Self {
        self.family_total("rtc_ring_depth", expected)
    }

    /// Expects the orchestrator to have executed exactly `expected` live
    /// migrations over the suite (`orchestrator_replans_triggered`).
    pub fn replans_triggered(self, expected: u64) -> Self {
        self.counter("orchestrator_replans_triggered", expected)
    }

    /// Expects exactly `expected` drifted telemetry windows to have been
    /// suppressed by hysteresis/cooldown instead of triggering a replan
    /// (`orchestrator_replans_skipped_hysteresis`).
    pub fn replans_skipped_hysteresis(self, expected: u64) -> Self {
        self.counter("orchestrator_replans_skipped_hysteresis", expected)
    }

    /// Expects exactly `expected` dynamic entries to have crossed switches
    /// alive during orchestrated migrations (`orchestrator_flows_migrated`).
    pub fn flows_migrated(self, expected: u64) -> Self {
        self.counter("orchestrator_flows_migrated", expected)
    }

    /// Expects the `orchestrator_migration_duration_ns` histogram to hold
    /// exactly `expected` samples — one per migration the orchestrator
    /// drove — each with a nonzero downtime window.
    pub fn migrations_timed(self, expected: u64) -> Self {
        let label = format!("orchestrator_migration_duration_ns samples == {expected}");
        self.check(&label, move |s| {
            match s.histogram("orchestrator_migration_duration_ns") {
                Some(h) if h.count == expected => Ok(()),
                Some(h) => Err(format!(
                    "orchestrator_migration_duration_ns: expected {expected} samples, got {}",
                    h.count
                )),
                None if expected == 0 => Ok(()),
                None => Err("orchestrator_migration_duration_ns: histogram missing".to_string()),
            }
        })
    }

    /// Expects the summed delta of every counter starting with `prefix`
    /// (e.g. a labelled family like `packet_recirc_depth`) to equal
    /// `expected`.
    pub fn family_total(self, prefix: &str, expected: u64) -> Self {
        let prefix = prefix.to_string();
        let label = format!("sum({prefix}*) == {expected}");
        self.check(&label, move |s| {
            let got = s.counter_family_total(&prefix);
            if got == expected {
                Ok(())
            } else {
                Err(format!(
                    "family {prefix}: expected total {expected}, got {got}"
                ))
            }
        })
    }

    /// Adds an arbitrary check on the delta snapshot.
    pub fn check(
        mut self,
        label: &str,
        check: impl Fn(&MetricsSnapshot) -> Result<(), String> + 'static,
    ) -> Self {
        self.checks.push((label.to_string(), Box::new(check)));
        self
    }

    /// Evaluates every expectation against `delta`, returning one
    /// [`CaseResult`] per expectation.
    pub fn evaluate(&self, delta: &MetricsSnapshot) -> Vec<CaseResult> {
        self.checks
            .iter()
            .map(|(label, check)| CaseResult {
                name: format!("metrics: {label}"),
                failure: check(delta).err(),
                traversal: None,
            })
            .collect()
    }
}

/// Runs a suite with telemetry forced on, then asserts `expect` against the
/// metrics delta the suite produced. The switch's previous telemetry
/// setting is restored afterwards; metric failures appear in the report as
/// `metrics: …` rows.
pub fn run_suite_with_metrics(
    switch: &mut Switch,
    cases: Vec<TestCase>,
    expect: MetricsExpectations,
) -> PtfReport {
    let was_enabled = switch.telemetry_enabled();
    switch.set_telemetry(true);
    let before = switch.metrics_snapshot();
    let mut report = run_suite(switch, cases);
    let delta = switch.metrics_snapshot().diff(&before);
    switch.set_telemetry(was_enabled);
    report.results.extend(expect.evaluate(&delta));
    report
}

/// Runs a suite of cases against a switch.
pub fn run_suite(switch: &mut Switch, cases: Vec<TestCase>) -> PtfReport {
    let mut report = PtfReport::default();
    for case in cases {
        let result = run_case(switch, &case);
        report.results.push(result);
    }
    report
}

/// Runs every case on *both* execution engines and cross-checks them.
///
/// The suite is executed twice against clones of `switch` — once with
/// [`ExecMode::Reference`] (the tree-walking oracle) and once with
/// [`ExecMode::Compiled`] (the fast path) — and each case additionally
/// fails if the two engines disagree on the traversal (disposition, final
/// bytes, events, recirculation/resubmission counts). The returned report
/// is the compiled run, with divergence failures folded in; `switch`
/// itself is left untouched.
pub fn run_suite_differential(switch: &Switch, cases: Vec<TestCase>) -> PtfReport {
    let mut reference = switch.clone();
    reference.set_exec_mode(ExecMode::Reference);
    let mut compiled = switch.clone();
    compiled.set_exec_mode(ExecMode::Compiled);

    let mut report = PtfReport::default();
    for case in cases {
        let ref_result = run_case(&mut reference, &case);
        let mut result = run_case(&mut compiled, &case);
        if result.failure.is_none() {
            match (&result.traversal, &ref_result.traversal) {
                (Some(c), Some(r)) if c != r => {
                    result.failure = Some(format!(
                        "engines diverge: compiled {:?}, reference {:?}",
                        c.disposition, r.disposition
                    ));
                }
                (Some(_), None) | (None, Some(_)) => {
                    result.failure = Some(
                        "engines diverge: one engine rejected the injection outright".to_string(),
                    );
                }
                _ => {}
            }
            if result.failure.is_none() && ref_result.failure.is_some() {
                result.failure = Some(format!("reference engine failed: {:?}", ref_result.failure));
            }
        }
        report.results.push(result);
    }
    report
}

fn run_case(switch: &mut Switch, case: &TestCase) -> CaseResult {
    let traversal = match switch.inject(InjectedPacket::new(case.packet.clone(), case.in_port)) {
        Ok(t) => t,
        Err(e) => {
            return CaseResult {
                name: case.name.clone(),
                failure: Some(format!("injection failed: {e}")),
                traversal: None,
            }
        }
    };
    let mut failure = None;
    let disposition_ok = match (&case.expect, &traversal.disposition) {
        (Expect::Emitted { port }, Disposition::Emitted { port: got }) => {
            if port == got {
                true
            } else {
                failure = Some(format!("expected port {port}, emitted on {got}"));
                false
            }
        }
        (Expect::Dropped, Disposition::Dropped) => true,
        (Expect::ToCpu, Disposition::ToCpu) => true,
        (expect, got) => {
            let want = match expect {
                Expect::Emitted { port } => format!("emitted on {port}"),
                Expect::Dropped => "dropped".into(),
                Expect::ToCpu => "punted to CPU".into(),
            };
            failure = Some(format!("expected {want}, got {got:?}"));
            false
        }
    };
    if disposition_ok {
        for check in &case.packet_checks {
            if let Err(e) = check(&traversal.final_bytes) {
                failure = Some(format!("packet check: {e}"));
                break;
            }
        }
    }
    if failure.is_none() {
        for check in &case.traversal_checks {
            if let Err(e) = check(&traversal) {
                failure = Some(format!("traversal check: {e}"));
                break;
            }
        }
    }
    CaseResult {
        name: case.name.clone(),
        failure,
        traversal: Some(traversal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{PipeletId, TofinoProfile};
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::table::{KeyMatch, TableEntry};
    use dejavu_p4ir::well_known;
    use dejavu_p4ir::{fref, Expr, FieldRef, Value};

    fn l2_switch() -> Switch {
        let program = ProgramBuilder::new("l2")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("fwd")
                    .param("port", 16)
                    .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                    .build(),
            )
            .action(ActionBuilder::new("deny").drop_packet().build())
            .table(
                TableBuilder::new("l2")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .action("fwd")
                    .default_action("deny")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("l2").build())
            .entry("ingress")
            .build()
            .unwrap();
        let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
        sw.load_program(PipeletId::ingress(0), program).unwrap();
        sw.install_entry(
            PipeletId::ingress(0),
            "l2",
            TableEntry {
                matches: vec![KeyMatch::Exact(Value::new(0xaabb, 48))],
                action: "fwd".into(),
                action_args: vec![Value::new(9, 16)],
                priority: 0,
            },
        )
        .unwrap();
        sw
    }

    fn eth_packet(dst: u64) -> Vec<u8> {
        let mut p = vec![0u8; 14];
        p[..6].copy_from_slice(&dst.to_be_bytes()[2..]);
        p
    }

    #[test]
    fn suite_passes_and_fails_correctly() {
        let mut sw = l2_switch();
        let report = run_suite(
            &mut sw,
            vec![
                TestCase::expect_port("known dst", 0, eth_packet(0xaabb), 9)
                    .expect_table_hit("l2")
                    .expect_recirculations(0),
                TestCase::expect_drop("unknown dst", 0, eth_packet(0xdead)),
                // Deliberate failure: wrong port.
                TestCase::expect_port("wrong port", 0, eth_packet(0xaabb), 7),
            ],
        );
        assert_eq!(report.passed(), 2);
        assert_eq!(report.failed(), 1);
        assert!(!report.all_passed());
        assert!(report.to_string().contains("FAIL wrong port"));
    }

    #[test]
    fn packet_check_runs_on_final_bytes() {
        let mut sw = l2_switch();
        let report = run_suite(
            &mut sw,
            vec![
                TestCase::expect_port("bytes preserved", 0, eth_packet(0xaabb), 9).check_packet(
                    |b| {
                        if b.len() == 14 {
                            Ok(())
                        } else {
                            Err(format!("len {}", b.len()))
                        }
                    },
                ),
            ],
        );
        report.assert_all_passed();
    }

    #[test]
    fn differential_suite_agrees_on_both_engines() {
        let sw = l2_switch();
        let report = run_suite_differential(
            &sw,
            vec![
                TestCase::expect_port("known dst", 0, eth_packet(0xaabb), 9).expect_table_hit("l2"),
                TestCase::expect_drop("unknown dst", 0, eth_packet(0xdead)),
            ],
        );
        report.assert_all_passed();
        // The original switch is untouched: counters are still zero.
        let c = sw.tables(PipeletId::ingress(0)).unwrap().counters("l2");
        assert_eq!(c.hits + c.misses, 0);
    }

    #[test]
    fn metrics_expectations_ride_along_with_the_suite() {
        let mut sw = l2_switch();
        let report = run_suite_with_metrics(
            &mut sw,
            vec![
                TestCase::expect_port("known dst", 0, eth_packet(0xaabb), 9),
                TestCase::expect_drop("unknown dst", 0, eth_packet(0xdead)),
            ],
            MetricsExpectations::new()
                .counter("packets_injected", 2)
                .counter("packets_emitted", 1)
                .counter("packets_dropped", 1)
                .counter_at_least("port_rx_packets{port=\"0\"}", 2)
                .family_total("packet_recirc_depth", 2)
                .check("no punts", |s| {
                    if s.counter("packets_to_cpu") == 0 {
                        Ok(())
                    } else {
                        Err("unexpected CPU punt".into())
                    }
                }),
        );
        report.assert_all_passed();
        // Telemetry was forced on only for the suite.
        assert!(!sw.telemetry_enabled());

        // A wrong expectation shows up as a failing metrics row.
        let report = run_suite_with_metrics(
            &mut sw,
            vec![TestCase::expect_port("known dst", 0, eth_packet(0xaabb), 9)],
            MetricsExpectations::new().counter("packets_dropped", 5),
        );
        assert_eq!(report.failed(), 1);
        assert!(report.to_string().contains("metrics: packets_dropped == 5"));
    }

    /// A learning L2 switch: misses digest the unknown MAC and flood out
    /// port 9; hits forward silently. `flows` ages under a 2-tick timeout.
    fn learning_switch() -> Switch {
        let program = ProgramBuilder::new("learner")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("learn")
                    .digest("d0", vec![Expr::field("ethernet", "dst_mac")])
                    .set(FieldRef::meta("egress_spec"), Expr::val(9, 16))
                    .build(),
            )
            .action(
                ActionBuilder::new("fwd")
                    .param("port", 16)
                    .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                    .build(),
            )
            .table(
                TableBuilder::new("flows")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .action("fwd")
                    .default_action("learn")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("flows").build())
            .entry("ingress")
            .build()
            .unwrap();
        let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
        sw.load_program(PipeletId::ingress(0), program).unwrap();
        sw.set_idle_timeout(PipeletId::ingress(0), "flows", Some(2))
            .unwrap();
        sw.install_entry(
            PipeletId::ingress(0),
            "flows",
            TableEntry {
                matches: vec![KeyMatch::Exact(Value::new(0xaabb, 48))],
                action: "fwd".into(),
                action_args: vec![Value::new(9, 16)],
                priority: 0,
            },
        )
        .unwrap();
        sw
    }

    #[test]
    fn flow_state_expectations_observe_learning_and_aging() {
        let mut sw = learning_switch();
        let report = run_suite_with_metrics(
            &mut sw,
            vec![
                TestCase::expect_port("known flow stays silent", 0, eth_packet(0xaabb), 9)
                    .expect_table_hit("flows"),
                TestCase::expect_port("new flow digests", 0, eth_packet(0xbeef), 9),
            ],
            MetricsExpectations::new()
                .digests_emitted(0, 1)
                .evictions("ingress0", "flows", 0),
        );
        report.assert_all_passed();
        assert_eq!(sw.digest_backlog(0), 1);

        // Aging the entry out shows up in the eviction series, and the
        // expectation helper keys the exact same label.
        sw.set_telemetry(true);
        let before = sw.metrics_snapshot();
        let evicted = sw.advance_time(5);
        assert_eq!(evicted.len(), 1);
        let delta = sw.metrics_snapshot().diff(&before);
        let rows = MetricsExpectations::new()
            .evictions("ingress0", "flows", 1)
            .evaluate(&delta);
        assert!(rows.iter().all(|r| r.failure.is_none()), "{rows:?}");
        // The aged-out destination now misses — and digests again.
        let report = run_suite_with_metrics(
            &mut sw,
            vec![TestCase::expect_port(
                "aged flow misses",
                0,
                eth_packet(0xaabb),
                9,
            )],
            MetricsExpectations::new().digests_emitted(0, 1),
        );
        report.assert_all_passed();
    }

    #[test]
    #[should_panic(expected = "PTF")]
    fn assert_all_passed_panics_with_summary() {
        let mut sw = l2_switch();
        let report = run_suite(
            &mut sw,
            vec![TestCase::expect_drop("will fail", 0, eth_packet(0xaabb))],
        );
        report.assert_all_passed();
    }
}
