//! # dejavu-p4ir — a P4-like intermediate representation
//!
//! This crate is the substrate that stands in for the P4-16 language frontend
//! used by the Dejavu paper (*Accelerated Service Chaining on a Single Switch
//! ASIC*, HotNets 2019). There is no P4 parser ecosystem in Rust and the
//! paper's algorithms never look at surface syntax anyway — they operate on
//! the program's intermediate representation:
//!
//! * **header types** with fixed-width bit fields,
//! * a **parser DAG** whose vertices are `(header_type, offset)` tuples (the
//!   exact vertex identity §3 of the paper uses for parser merging),
//! * **match-action tables** with exact/ternary/LPM/range keys,
//! * **actions** built from primitive operations over header and metadata
//!   fields,
//! * **control blocks** that apply tables and branch on their outcomes, and
//! * **programs** packaging one parser plus control logic — one network
//!   function (NF) is one program.
//!
//! Programs are constructed through [`builder`] (a typed builder DSL replacing
//! P4 source text) and consumed by the `dejavu-compiler` stage allocator, the
//! `dejavu-asic` interpreter, and the composition/merging machinery in
//! `dejavu-core`.
//!
//! The crate is deliberately plain: string-named entities resolved at
//! compile/execute time, no type-level tricks, no unsafe code — the same
//! design stance as smoltcp ("simplicity and robustness", even at some
//! performance cost).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod analyze;
pub mod builder;
pub mod control;
pub mod deps;
pub mod error;
pub mod header;
pub mod lint;
pub mod parser;
pub mod printer;
pub mod program;
pub mod table;
pub mod value;
pub mod well_known;

pub use action::{ActionDef, Expr, PrimitiveOp};
pub use analyze::{AbstractValue, AnalysisCode, AnalysisConfig, AnalysisReport, Finding};
pub use builder::{
    ActionBuilder, ControlBuilder, HeaderTypeBuilder, ParserBuilder, ProgramBuilder, TableBuilder,
};
pub use control::{BoolExpr, CmpOp, ControlBlock, Stmt};
pub use deps::{register_accesses, DependencyGraph, DependencyKind, RegisterAccess};
pub use error::{IrError, Result};
pub use header::{fref, FieldDef, FieldRef, HeaderType};
pub use lint::{Diagnostic, LintCode, LintConfig, LintReport, Severity};
pub use parser::{
    deposit_bits, extract_bits, extract_field, ParseNode, ParserDag, Target, Transition,
};
pub use printer::print_program;
pub use program::Program;
pub use table::{MatchKind, TableDef};
pub use value::{mask_for, Value};
