//! Parser DAGs.
//!
//! A P4 parser is a directed acyclic graph in which *"each vertex represents
//! a header type at a particular location offset, and each edge represents a
//! transition from one header to another"* (Dejavu §3). Vertex identity is
//! the `(header_type, offset)` tuple — the representation that makes Dejavu's
//! parser merging well-defined even when two NFs name the same header
//! differently or parse it at different offsets.
//!
//! Transitions are either unconditional or select on one field of the node's
//! header (e.g. `ethernet.ether_type == 0x0800 → ipv4`). Because every header
//! occupies at least one byte and a child's offset must lie at or beyond the
//! end of its parent, offsets strictly increase along every edge, so the
//! graph is acyclic by construction.

use crate::error::{IrError, Result};
use crate::header::HeaderType;
use crate::value::Value;
use std::collections::HashMap;

/// Where a transition leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Continue parsing at the given node.
    Node(usize),
    /// Stop parsing and accept the packet.
    Accept,
    /// Stop parsing and reject the packet (parser error → drop).
    Reject,
}

/// Outgoing transition specification of a parse node.
#[derive(Debug, Clone, PartialEq)]
pub enum Transition {
    /// Always proceed to the target.
    Unconditional(Target),
    /// Branch on the value of one field of this node's header.
    Select {
        /// Field of this node's header type to match on.
        field: String,
        /// `(value, target)` cases, checked in order.
        cases: Vec<(Value, Target)>,
        /// Target when no case matches.
        default: Target,
    },
}

impl Transition {
    /// All targets this transition can reach.
    pub fn targets(&self) -> Vec<Target> {
        match self {
            Transition::Unconditional(t) => vec![*t],
            Transition::Select { cases, default, .. } => {
                let mut v: Vec<Target> = cases.iter().map(|(_, t)| *t).collect();
                v.push(*default);
                v
            }
        }
    }
}

/// One vertex of the parser DAG: a header type at a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNode {
    /// Header type parsed at this vertex.
    pub header_type: String,
    /// Byte offset from the start of the packet where this header begins.
    pub offset: u32,
    /// Outgoing transition taken after extracting this header.
    pub transition: Transition,
}

impl ParseNode {
    /// The `(header_type, offset)` identity tuple of this vertex.
    pub fn key(&self) -> (&str, u32) {
        (self.header_type.as_str(), self.offset)
    }
}

/// A complete parser DAG.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParserDag {
    /// Vertices, indexed by position.
    pub nodes: Vec<ParseNode>,
    /// Entry transition (normally unconditional to the node at offset 0).
    pub start: Option<Target>,
}

/// The result of walking a parser over packet bytes: the accepted headers in
/// parse order, as `(header_type, byte_offset)` pairs.
pub type ParsePath = Vec<(String, u32)>;

impl ParserDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        ParserDag::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: ParseNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Looks up a node by its `(header_type, offset)` identity.
    pub fn find(&self, header_type: &str, offset: u32) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.header_type == header_type && n.offset == offset)
    }

    /// Validates the DAG against a header catalog:
    /// * the start transition and every edge target exist,
    /// * select fields exist in the node's header type,
    /// * child offsets lie at or beyond the end of the parent header
    ///   (guaranteeing acyclicity),
    /// * vertex identities `(header_type, offset)` are unique.
    pub fn validate(&self, headers: &HashMap<String, HeaderType>) -> Result<()> {
        let start = self
            .start
            .ok_or_else(|| IrError::Invalid("parser has no start transition".into()))?;
        self.check_target(start)?;
        let mut keys = std::collections::HashSet::new();
        for (id, node) in self.nodes.iter().enumerate() {
            let ht = headers
                .get(&node.header_type)
                .ok_or_else(|| IrError::Undefined {
                    kind: "header type",
                    name: node.header_type.clone(),
                })?;
            if !keys.insert((node.header_type.clone(), node.offset)) {
                return Err(IrError::Duplicate {
                    kind: "parser vertex",
                    name: format!("({}, {})", node.header_type, node.offset),
                });
            }
            if let Transition::Select { field, .. } = &node.transition {
                let fd = ht.field(field).ok_or_else(|| IrError::Undefined {
                    kind: "select field",
                    name: format!("{}.{}", node.header_type, field),
                })?;
                if fd.bits > 128 {
                    return Err(IrError::Invalid(format!(
                        "select field {}.{} too wide",
                        node.header_type, field
                    )));
                }
            }
            let end = node.offset + ht.total_bytes();
            for t in node.transition.targets() {
                self.check_target(t)?;
                if let Target::Node(child) = t {
                    let c = &self.nodes[child];
                    if c.offset < end {
                        return Err(IrError::Invalid(format!(
                            "edge from node {id} ({}@{}) to ({}@{}) goes backwards \
                             (parent ends at byte {end})",
                            node.header_type, node.offset, c.header_type, c.offset
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_target(&self, t: Target) -> Result<()> {
        if let Target::Node(i) = t {
            if i >= self.nodes.len() {
                return Err(IrError::Invalid(format!(
                    "dangling parser edge to node {i}"
                )));
            }
        }
        Ok(())
    }

    /// Walks the DAG over packet bytes, returning the accept path, or an
    /// error if the packet is rejected / truncated.
    ///
    /// This is the reference parser used by tests, the merge validator, and
    /// the `dejavu-asic` interpreter.
    pub fn parse(&self, headers: &HashMap<String, HeaderType>, bytes: &[u8]) -> Result<ParsePath> {
        let mut path = Vec::new();
        let mut cur = self
            .start
            .ok_or_else(|| IrError::Invalid("parser has no start transition".into()))?;
        loop {
            match cur {
                Target::Accept => return Ok(path),
                Target::Reject => {
                    return Err(IrError::Invalid(format!(
                        "packet rejected by parser after {:?}",
                        path
                    )))
                }
                Target::Node(id) => {
                    let node = &self.nodes[id];
                    let ht = headers
                        .get(&node.header_type)
                        .ok_or_else(|| IrError::Undefined {
                            kind: "header type",
                            name: node.header_type.clone(),
                        })?;
                    let end = node.offset as usize + ht.total_bytes() as usize;
                    if bytes.len() < end {
                        return Err(IrError::Invalid(format!(
                            "packet too short: {} bytes, need {} for {}@{}",
                            bytes.len(),
                            end,
                            node.header_type,
                            node.offset
                        )));
                    }
                    path.push((node.header_type.clone(), node.offset));
                    cur = match &node.transition {
                        Transition::Unconditional(t) => *t,
                        Transition::Select {
                            field,
                            cases,
                            default,
                        } => {
                            let v =
                                extract_field(ht, field, bytes, node.offset).ok_or_else(|| {
                                    IrError::Undefined {
                                        kind: "select field",
                                        name: format!("{}.{}", node.header_type, field),
                                    }
                                })?;
                            cases
                                .iter()
                                .find(|(case, _)| *case == v)
                                .map(|(_, t)| *t)
                                .unwrap_or(*default)
                        }
                    };
                }
            }
        }
    }

    /// All distinct `(header_type, offset)` vertex identities in the DAG.
    pub fn vertex_keys(&self) -> Vec<(String, u32)> {
        self.nodes
            .iter()
            .map(|n| (n.header_type.clone(), n.offset))
            .collect()
    }

    /// Maximum byte consumed by any vertex (parser window requirement).
    pub fn max_depth_bytes(&self, headers: &HashMap<String, HeaderType>) -> u32 {
        self.nodes
            .iter()
            .filter_map(|n| {
                headers
                    .get(&n.header_type)
                    .map(|h| n.offset + h.total_bytes())
            })
            .max()
            .unwrap_or(0)
    }
}

/// Extracts the value of `field` from a header of type `ht` starting at byte
/// `offset` in `bytes`. Returns `None` if the field does not exist; panics
/// are avoided by the caller having validated lengths.
pub fn extract_field(ht: &HeaderType, field: &str, bytes: &[u8], offset: u32) -> Option<Value> {
    let bit_off = ht.field_bit_offset(field)?;
    let fd = ht.field(field)?;
    Some(extract_bits(
        bytes,
        u64::from(offset) * 8 + u64::from(bit_off),
        fd.bits,
    ))
}

/// Extracts `bits` bits starting at absolute bit offset `bit_off` (big-endian
/// bit order, MSB first within each byte).
pub fn extract_bits(bytes: &[u8], bit_off: u64, bits: u16) -> Value {
    let mut raw: u128 = 0;
    for i in 0..u64::from(bits) {
        let b = bit_off + i;
        let byte = bytes[(b / 8) as usize];
        let bit = (byte >> (7 - (b % 8))) & 1;
        raw = (raw << 1) | u128::from(bit);
    }
    Value::new(raw, bits)
}

/// Writes `value` into `bytes` at absolute bit offset `bit_off` (big-endian
/// bit order). The inverse of [`extract_bits`].
pub fn deposit_bits(bytes: &mut [u8], bit_off: u64, value: Value) {
    let bits = u64::from(value.bits());
    for i in 0..bits {
        let b = bit_off + i;
        let byte = &mut bytes[(b / 8) as usize];
        let mask = 1u8 << (7 - (b % 8));
        let bit = ((value.raw() >> (bits - 1 - i)) & 1) as u8;
        if bit == 1 {
            *byte |= mask;
        } else {
            *byte &= !mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::HeaderType;

    fn catalog() -> HashMap<String, HeaderType> {
        let mut m = HashMap::new();
        m.insert(
            "ethernet".into(),
            HeaderType::new(
                "ethernet",
                vec![("dst", 48u16), ("src", 48), ("ether_type", 16)],
            )
            .unwrap(),
        );
        m.insert(
            "ipv4".into(),
            HeaderType::new(
                "ipv4",
                vec![
                    ("version", 4u16),
                    ("ihl", 4),
                    ("dscp", 8),
                    ("total_len", 16),
                    ("id", 16),
                    ("flags_frag", 16),
                    ("ttl", 8),
                    ("protocol", 8),
                    ("checksum", 16),
                    ("src_addr", 32),
                    ("dst_addr", 32),
                ],
            )
            .unwrap(),
        );
        m
    }

    fn eth_ipv4_dag() -> ParserDag {
        let mut dag = ParserDag::new();
        let ip = dag.add_node(ParseNode {
            header_type: "ipv4".into(),
            offset: 14,
            transition: Transition::Unconditional(Target::Accept),
        });
        let eth = dag.add_node(ParseNode {
            header_type: "ethernet".into(),
            offset: 0,
            transition: Transition::Select {
                field: "ether_type".into(),
                cases: vec![(Value::new(0x0800, 16), Target::Node(ip))],
                default: Target::Accept,
            },
        });
        dag.start = Some(Target::Node(eth));
        dag
    }

    fn eth_ipv4_packet() -> Vec<u8> {
        let mut p = vec![0u8; 34];
        p[12] = 0x08; // ether_type = 0x0800
        p[13] = 0x00;
        p[14] = 0x45; // version/ihl
        p[22] = 64; // ttl
        p[23] = 6; // protocol = TCP
        p[26..30].copy_from_slice(&[10, 0, 0, 1]);
        p[30..34].copy_from_slice(&[10, 0, 0, 2]);
        p
    }

    #[test]
    fn validate_ok() {
        eth_ipv4_dag().validate(&catalog()).unwrap();
    }

    #[test]
    fn parse_follows_select() {
        let path = eth_ipv4_dag()
            .parse(&catalog(), &eth_ipv4_packet())
            .unwrap();
        assert_eq!(
            path,
            vec![("ethernet".to_string(), 0), ("ipv4".to_string(), 14)]
        );
    }

    #[test]
    fn parse_default_branch() {
        let mut pkt = eth_ipv4_packet();
        pkt[12] = 0x86; // not IPv4
        let path = eth_ipv4_dag().parse(&catalog(), &pkt).unwrap();
        assert_eq!(path, vec![("ethernet".to_string(), 0)]);
    }

    #[test]
    fn truncated_packet_errors() {
        let pkt = &eth_ipv4_packet()[..20];
        assert!(eth_ipv4_dag().parse(&catalog(), pkt).is_err());
    }

    #[test]
    fn reject_target_errors() {
        let mut dag = eth_ipv4_dag();
        // Make non-IPv4 packets rejected instead of accepted.
        if let Transition::Select { default, .. } = &mut dag.nodes[1].transition {
            *default = Target::Reject;
        }
        let mut pkt = eth_ipv4_packet();
        pkt[12] = 0x12;
        assert!(dag.parse(&catalog(), &pkt).is_err());
    }

    #[test]
    fn backwards_edge_rejected() {
        let mut dag = ParserDag::new();
        let a = dag.add_node(ParseNode {
            header_type: "ethernet".into(),
            offset: 0,
            transition: Transition::Unconditional(Target::Accept),
        });
        dag.add_node(ParseNode {
            header_type: "ipv4".into(),
            offset: 0, // overlaps ethernet — invalid
            transition: Transition::Unconditional(Target::Node(a)),
        });
        dag.start = Some(Target::Node(a));
        // node 1 is unreachable from start but still validated structurally
        assert!(dag.validate(&catalog()).is_err());
    }

    #[test]
    fn duplicate_vertex_identity_rejected() {
        let mut dag = eth_ipv4_dag();
        dag.add_node(ParseNode {
            header_type: "ipv4".into(),
            offset: 14,
            transition: Transition::Unconditional(Target::Accept),
        });
        assert!(dag.validate(&catalog()).is_err());
    }

    #[test]
    fn extract_and_deposit_roundtrip() {
        let cat = catalog();
        let ip = &cat["ipv4"];
        let mut pkt = eth_ipv4_packet();
        let ttl = extract_field(ip, "ttl", &pkt, 14).unwrap();
        assert_eq!(ttl.raw(), 64);
        deposit_bits(
            &mut pkt,
            14 * 8 + u64::from(ip.field_bit_offset("ttl").unwrap()),
            Value::new(63, 8),
        );
        assert_eq!(extract_field(ip, "ttl", &pkt, 14).unwrap().raw(), 63);
        // sub-byte field
        let version = extract_field(ip, "version", &pkt, 14).unwrap();
        assert_eq!(version.raw(), 4);
        let ihl = extract_field(ip, "ihl", &pkt, 14).unwrap();
        assert_eq!(ihl.raw(), 5);
    }

    #[test]
    fn max_depth() {
        assert_eq!(eth_ipv4_dag().max_depth_bytes(&catalog()), 34);
    }
}
