//! Programs: the unit Dejavu composes.
//!
//! One network function is one [`Program`]: a parser DAG, a catalog of header
//! types, user metadata declarations, actions, tables, and control blocks
//! with a designated entry control. `dejavu-core` merges several programs
//! into a single multi-pipelet program; `dejavu-compiler` allocates a program
//! onto pipelet stages; `dejavu-asic` interprets it over packets.
//!
//! All collections are `BTreeMap`s so iteration order — and therefore
//! compilation, placement, and simulation — is deterministic.

use crate::action::ActionDef;
use crate::control::ControlBlock;
use crate::error::{IrError, Result};
use crate::header::{FieldDef, FieldRef, HeaderType};
use crate::parser::ParserDag;
use crate::table::RegisterDef;
use crate::table::TableDef;
use std::collections::BTreeMap;

/// Standard (platform) metadata fields available to every program without
/// declaration: physical ports, drop/resubmit/recirculate/mirror/to-CPU
/// flags. These are the fields Dejavu's SFC header mirrors in its
/// platform-metadata bytes (paper Fig. 3).
pub const STANDARD_METADATA: &[(&str, u16)] = &[
    ("ingress_port", 16),
    ("egress_spec", 16),
    ("drop_flag", 1),
    ("resubmit_flag", 1),
    ("recirc_flag", 1),
    ("mirror_flag", 1),
    ("to_cpu_flag", 1),
];

/// A complete data-plane program (one NF, or a merged SFC program).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Header type catalog.
    pub header_types: BTreeMap<String, HeaderType>,
    /// User metadata fields (beyond [`STANDARD_METADATA`]).
    pub meta_fields: Vec<FieldDef>,
    /// Parser DAG.
    pub parser: ParserDag,
    /// Action catalog.
    pub actions: BTreeMap<String, ActionDef>,
    /// Table catalog.
    pub tables: BTreeMap<String, TableDef>,
    /// Stateful register arrays.
    pub registers: BTreeMap<String, RegisterDef>,
    /// Control blocks.
    pub controls: BTreeMap<String, ControlBlock>,
    /// Name of the entry control block.
    pub entry: String,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Width of a field reference, searching header types then user metadata
    /// then standard metadata. `None` if unknown.
    pub fn field_width(&self, fr: &FieldRef) -> Option<u16> {
        if fr.is_meta() {
            if let Some(fd) = self.meta_fields.iter().find(|f| f.name == fr.field) {
                return Some(fd.bits);
            }
            return STANDARD_METADATA
                .iter()
                .find(|(n, _)| *n == fr.field)
                .map(|(_, w)| *w);
        }
        self.header_types
            .get(&fr.header)?
            .field(&fr.field)
            .map(|f| f.bits)
    }

    /// True if the field reference resolves (header add/remove writes use a
    /// `"*"` wildcard field, which resolves if the header type exists;
    /// `reg::<name>` pseudo-references resolve against the register
    /// catalog).
    pub fn field_exists(&self, fr: &FieldRef) -> bool {
        if let Some(reg) = fr.header.strip_prefix("reg::") {
            return self.registers.contains_key(reg);
        }
        if fr.field == "*" {
            return fr.is_meta() || self.header_types.contains_key(&fr.header);
        }
        self.field_width(fr).is_some()
    }

    /// The entry control block, if present.
    pub fn entry_control(&self) -> Option<&ControlBlock> {
        self.controls.get(&self.entry)
    }

    /// Tables applied by the entry control, transitively flattening `Call`s,
    /// in program order. Duplicate applications are kept (they matter for
    /// dependency analysis).
    pub fn tables_in_order(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(entry) = self.entry_control() {
            self.flatten_control(entry, &mut out, 0);
        }
        out
    }

    fn flatten_control(&self, cb: &ControlBlock, out: &mut Vec<String>, depth: usize) {
        if depth > 64 {
            return; // cycle guard; validate() reports the error properly
        }
        for stmt in &cb.body {
            self.flatten_stmt(stmt, out, depth);
        }
    }

    fn flatten_stmt(&self, stmt: &crate::control::Stmt, out: &mut Vec<String>, depth: usize) {
        use crate::control::Stmt;
        match stmt {
            Stmt::Apply(t) => out.push(t.clone()),
            Stmt::ApplySelect {
                table,
                arms,
                default,
            } => {
                out.push(table.clone());
                for (_, b) in arms {
                    for s in b {
                        self.flatten_stmt(s, out, depth);
                    }
                }
                for s in default {
                    self.flatten_stmt(s, out, depth);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch {
                    self.flatten_stmt(s, out, depth);
                }
                for s in else_branch {
                    self.flatten_stmt(s, out, depth);
                }
            }
            Stmt::Do(_) => {}
            Stmt::Call(c) => {
                if let Some(cb) = self.controls.get(c) {
                    self.flatten_control(cb, out, depth + 1);
                }
            }
        }
    }

    /// Full structural validation:
    /// * every header type, parser vertex, table, and action is well-formed,
    /// * tables reference existing actions and key fields,
    /// * actions read/write existing fields,
    /// * controls call existing controls acyclically and apply existing
    ///   tables,
    /// * the entry control exists.
    pub fn validate(&self) -> Result<()> {
        for ht in self.header_types.values() {
            ht.validate()?;
        }
        {
            // HashMap view for the parser validator.
            let hm: std::collections::HashMap<String, HeaderType> = self
                .header_types
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            self.parser.validate(&hm)?;
        }
        for t in self.tables.values() {
            t.validate()?;
            for a in &t.actions {
                if !self.actions.contains_key(a) {
                    return Err(IrError::Undefined {
                        kind: "action",
                        name: format!("{a} (table {})", t.name),
                    });
                }
            }
            for k in &t.keys {
                if !self.field_exists(&k.field) {
                    return Err(IrError::Undefined {
                        kind: "table key field",
                        name: format!("{} (table {})", k.field, t.name),
                    });
                }
            }
        }
        for a in self.actions.values() {
            for fr in a.reads().iter().chain(a.writes().iter()) {
                if !self.field_exists(fr) {
                    return Err(IrError::Undefined {
                        kind: "action field",
                        name: format!("{fr} (action {})", a.name),
                    });
                }
            }
        }
        for r in self.registers.values() {
            r.validate()?;
        }
        let entry = self.entry_control().ok_or_else(|| IrError::Undefined {
            kind: "entry control",
            name: self.entry.clone(),
        })?;
        entry.validate_calls(&|n| self.controls.get(n).cloned(), 0)?;
        for cb in self.controls.values() {
            for t in cb.tables_applied() {
                if !self.tables.contains_key(&t) {
                    return Err(IrError::Undefined {
                        kind: "table",
                        name: format!("{t} (control {})", cb.name),
                    });
                }
            }
            for cond_reads in cb.body.iter().map(stmt_cond_reads) {
                for fr in cond_reads {
                    if !self.field_exists(&fr) {
                        return Err(IrError::Undefined {
                            kind: "condition field",
                            name: format!("{fr} (control {})", cb.name),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Header catalog as a `HashMap` (the form the parser walker takes).
    pub fn header_map(&self) -> std::collections::HashMap<String, HeaderType> {
        self.header_types
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Field references read by conditions anywhere under a statement.
fn stmt_cond_reads(stmt: &crate::control::Stmt) -> Vec<FieldRef> {
    use crate::control::Stmt;
    let mut out = Vec::new();
    match stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.extend(cond.reads());
            for s in then_branch.iter().chain(else_branch.iter()) {
                out.extend(stmt_cond_reads(s));
            }
        }
        Stmt::ApplySelect { arms, default, .. } => {
            for (_, b) in arms {
                for s in b {
                    out.extend(stmt_cond_reads(s));
                }
            }
            for s in default {
                out.extend(stmt_cond_reads(s));
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Expr, PrimitiveOp};
    use crate::control::{ControlBlock, Stmt};
    use crate::header::fref;
    use crate::parser::{ParseNode, Target, Transition};
    use crate::table::{MatchKind, TableDef, TableKey};

    fn tiny_program() -> Program {
        let mut p = Program::new("tiny");
        p.header_types.insert(
            "ethernet".into(),
            HeaderType::new(
                "ethernet",
                vec![("dst", 48u16), ("src", 48), ("ether_type", 16)],
            )
            .unwrap(),
        );
        let n = p.parser.add_node(ParseNode {
            header_type: "ethernet".into(),
            offset: 0,
            transition: Transition::Unconditional(Target::Accept),
        });
        p.parser.start = Some(Target::Node(n));
        p.actions.insert(
            "fwd".into(),
            ActionDef {
                name: "fwd".into(),
                params: vec![("port".into(), 16)],
                ops: vec![PrimitiveOp::Set {
                    dst: FieldRef::meta("egress_spec"),
                    value: Expr::Param("port".into()),
                }],
            },
        );
        p.actions.insert(
            "nop".into(),
            ActionDef::simple("nop", vec![PrimitiveOp::NoOp]),
        );
        p.tables.insert(
            "l2".into(),
            TableDef {
                name: "l2".into(),
                keys: vec![TableKey {
                    field: fref("ethernet", "dst"),
                    kind: MatchKind::Exact,
                }],
                actions: vec!["fwd".into(), "nop".into()],
                default_action: "nop".into(),
                default_action_args: vec![],
                size: 4096,
            },
        );
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new("ingress", vec![Stmt::Apply("l2".into())]),
        );
        p.entry = "ingress".into();
        p
    }

    #[test]
    fn valid_program_passes() {
        tiny_program().validate().unwrap();
    }

    #[test]
    fn field_width_resolution() {
        let p = tiny_program();
        assert_eq!(p.field_width(&fref("ethernet", "dst")), Some(48));
        assert_eq!(p.field_width(&FieldRef::meta("egress_spec")), Some(16));
        assert_eq!(p.field_width(&fref("ipv4", "ttl")), None);
    }

    #[test]
    fn missing_action_caught() {
        let mut p = tiny_program();
        p.tables.get_mut("l2").unwrap().actions.push("ghost".into());
        assert!(p.validate().is_err());
    }

    #[test]
    fn missing_table_caught() {
        let mut p = tiny_program();
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new("ingress", vec![Stmt::Apply("ghost".into())]),
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn missing_entry_caught() {
        let mut p = tiny_program();
        p.entry = "nope".into();
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_key_field_caught() {
        let mut p = tiny_program();
        p.tables.get_mut("l2").unwrap().keys[0].field = fref("ipv4", "dst_addr");
        assert!(p.validate().is_err());
    }

    #[test]
    fn tables_in_order_flattens_calls() {
        let mut p = tiny_program();
        p.controls.insert(
            "sub".into(),
            ControlBlock::new("sub", vec![Stmt::Apply("l2".into())]),
        );
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new(
                "ingress",
                vec![Stmt::Call("sub".into()), Stmt::Apply("l2".into())],
            ),
        );
        assert_eq!(p.tables_in_order(), vec!["l2", "l2"]);
    }
}
