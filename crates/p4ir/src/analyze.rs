//! `dejavu-analyze`: abstract interpretation over the P4IR.
//!
//! The structural linter ([`crate::lint`]) reasons about *which* headers and
//! metadata a program touches; this module reasons about *what values* flow
//! through them. A per-field abstract domain — an interval `[lo, hi]` paired
//! with a known-bits mask — is propagated through the parser DAG, the control
//! flow, and action op arrays, mirroring the interpreter's semantics exactly
//! (binary ops wrap at the left operand's width, field writes truncate to the
//! destination width, comparisons are width-agnostic on raw values).
//!
//! The pass emits the `DJV2xx` value checks:
//!
//! * **`DJV201` value truncation** — an assignment (or register access)
//!   whose value may exceed the destination's width. Intentional narrowing
//!   is expressed with an explicit `And` mask, which the known-bits domain
//!   recognizes and does not flag.
//! * **`DJV202` infeasible path** — a parser select case, `if` branch, or
//!   `ApplySelect` arm that can never execute given the value refinements
//!   along every path reaching it.
//! * **`DJV203` unmatchable entry** — an installed-entry pattern (supplied
//!   via [`AnalysisConfig::with_entries`]) that no feasible key value can
//!   ever match.
//! * **`DJV204` unbounded recirculation** — a resubmit/recirculate flag set
//!   with no guard at all, or with a guard no action in the program ever
//!   writes, so the packet loops forever.
//!
//! The `DJV3xx` stateful-safety codes (`DJV301` register hazards between
//! merged pipelets, `DJV302` digest-layout vs. learn-contract mismatches,
//! `DJV303` learn targets without aging) are registered here so the whole
//! band shares one registry, but are emitted by `dejavu-core`'s
//! chain-aware analyzer, exactly as `DJV101`/`DJV102` relate to
//! [`crate::lint`].
//!
//! Entry points: [`check`] with defaults, [`check_with_config`] with
//! severity overrides, per-entity allows, and installed-entry patterns.
//! `dejavu-compiler`'s `StageAllocator` refuses programs carrying
//! error-level findings (`CompileError::AnalysisRejected`).

use crate::action::{ActionDef, Expr, PrimitiveOp};
use crate::control::{BoolExpr, CmpOp, Stmt};
use crate::header::FieldRef;
use crate::lint::{json_str, pattern_matches, Severity};
use crate::parser::{Target, Transition};
use crate::program::Program;
use crate::table::{KeyMatch, TableDef};
use crate::value::mask_for;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The analysis registry: every value/stateful check, with a stable code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnalysisCode {
    /// `DJV201` — assignment or register access that may truncate a value
    /// into a narrower destination.
    ValueTruncation,
    /// `DJV202` — select case, branch arm, or `ApplySelect` arm that can
    /// never execute.
    InfeasiblePath,
    /// `DJV203` — installed-entry pattern no feasible key value matches.
    UnmatchableEntry,
    /// `DJV204` — resubmit/recirculate flag set with no guard, or a guard
    /// no action ever changes: a provably unbounded loop.
    UnboundedRecirc,
    /// `DJV301` — the same register accessed from two or more merged
    /// pipelets with at least one writer (emitted by `dejavu-core`).
    RegisterHazard,
    /// `DJV302` — digest payload layout disagrees with the registered
    /// learn contract's key/action signature (emitted by `dejavu-core`).
    LearnContractMismatch,
    /// `DJV303` — a learn contract installs into a table without
    /// idle-timeout aging: table exhaustion under churn (emitted by
    /// `dejavu-core`).
    LearnWithoutAging,
}

impl AnalysisCode {
    /// Every registered check, in code order.
    pub const ALL: [AnalysisCode; 7] = [
        AnalysisCode::ValueTruncation,
        AnalysisCode::InfeasiblePath,
        AnalysisCode::UnmatchableEntry,
        AnalysisCode::UnboundedRecirc,
        AnalysisCode::RegisterHazard,
        AnalysisCode::LearnContractMismatch,
        AnalysisCode::LearnWithoutAging,
    ];

    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            AnalysisCode::ValueTruncation => "DJV201",
            AnalysisCode::InfeasiblePath => "DJV202",
            AnalysisCode::UnmatchableEntry => "DJV203",
            AnalysisCode::UnboundedRecirc => "DJV204",
            AnalysisCode::RegisterHazard => "DJV301",
            AnalysisCode::LearnContractMismatch => "DJV302",
            AnalysisCode::LearnWithoutAging => "DJV303",
        }
    }

    /// Severity when no [`AnalysisConfig`] override applies.
    pub fn default_severity(self) -> Severity {
        match self {
            AnalysisCode::ValueTruncation
            | AnalysisCode::InfeasiblePath
            | AnalysisCode::UnboundedRecirc
            | AnalysisCode::LearnWithoutAging => Severity::Warning,
            AnalysisCode::UnmatchableEntry
            | AnalysisCode::RegisterHazard
            | AnalysisCode::LearnContractMismatch => Severity::Error,
        }
    }

    /// One-line description for the registry table.
    pub fn summary(self) -> &'static str {
        match self {
            AnalysisCode::ValueTruncation => "value may truncate into a narrower destination",
            AnalysisCode::InfeasiblePath => "select case or branch arm that can never execute",
            AnalysisCode::UnmatchableEntry => "installed entry no feasible key value matches",
            AnalysisCode::UnboundedRecirc => "resubmit/recirculate loop with no changing guard",
            AnalysisCode::RegisterHazard => "register shared across pipelets with a writer",
            AnalysisCode::LearnContractMismatch => "digest layout disagrees with learn contract",
            AnalysisCode::LearnWithoutAging => "learn target table has no idle-timeout aging",
        }
    }
}

impl fmt::Display for AnalysisCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One analysis finding, with a path witness explaining how the analyzer
/// reached the flagged point.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which check fired.
    pub code: AnalysisCode,
    /// Effective severity (after configuration).
    pub severity: Severity,
    /// The entity the finding anchors to: a table, action, control, or
    /// parser vertex (`header@offset`).
    pub entity: String,
    /// Human-readable description of the defect.
    pub message: String,
    /// The control/parser path steps that lead to the flagged point.
    pub witness: Vec<String>,
}

impl Finding {
    /// Creates a finding at the check's default severity.
    pub fn new(code: AnalysisCode, entity: impl Into<String>, message: impl Into<String>) -> Self {
        Finding {
            code,
            severity: code.default_severity(),
            entity: entity.into(),
            message: message.into(),
            witness: Vec::new(),
        }
    }

    /// Attaches the path witness.
    pub fn with_witness(mut self, witness: Vec<String>) -> Self {
        self.witness = witness;
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.entity, self.message
        )
    }
}

/// Analysis configuration: severity overrides, per-entity allows, and the
/// installed-entry patterns checked by `DJV203`.
///
/// Allows use the same pattern syntax as [`crate::lint::LintConfig`]: an
/// exact entity name or a prefix ending in `*`.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    severities: BTreeMap<AnalysisCode, Severity>,
    allows: Vec<(AnalysisCode, String)>,
    /// Per-table installed-entry patterns (one `Vec<KeyMatch>` per entry,
    /// aligned with the table's key list).
    entries: BTreeMap<String, Vec<Vec<KeyMatch>>>,
}

impl AnalysisConfig {
    /// Creates the default configuration (registry defaults, no allows, no
    /// installed entries).
    pub fn new() -> Self {
        AnalysisConfig::default()
    }

    /// Overrides the severity of a check.
    pub fn set_severity(mut self, code: AnalysisCode, severity: Severity) -> Self {
        self.severities.insert(code, severity);
        self
    }

    /// Allows a check for entities matching `pattern` (exact name, or a
    /// prefix ending in `*`).
    pub fn allow(mut self, code: AnalysisCode, pattern: impl Into<String>) -> Self {
        self.allows.push((code, pattern.into()));
        self
    }

    /// Declares the entry patterns installed into `table`, enabling the
    /// `DJV203` unmatchable-entry check for it.
    pub fn with_entries(mut self, table: impl Into<String>, patterns: Vec<Vec<KeyMatch>>) -> Self {
        self.entries.insert(table.into(), patterns);
        self
    }

    /// Effective severity of `code` at `entity`.
    pub fn severity_for(&self, code: AnalysisCode, entity: &str) -> Severity {
        for (c, pat) in &self.allows {
            if *c == code && pattern_matches(pat, entity) {
                return Severity::Allow;
            }
        }
        self.severities
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_severity())
    }
}

/// The findings of one analysis run. Order is deterministic: sorted by
/// code, then entity, then message.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All findings, including `Allow`-level advisories.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// Error-level findings.
    pub fn errors(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// Warning-level findings.
    pub fn warnings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    /// True when any error-level finding exists.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|d| d.severity == Severity::Error)
    }

    /// True when nothing at warning level or above fired.
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|d| d.severity == Severity::Allow)
    }

    /// Absorbs another report's findings and restores deterministic order.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.findings.extend(other.findings);
        self.sort();
    }

    /// One formatted line per error (used in refusal messages).
    pub fn error_summaries(&self) -> Vec<String> {
        self.errors().iter().map(|d| d.to_string()).collect()
    }

    /// Sorts findings by (code, entity, message) — the canonical order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (a.code, &a.entity, &a.message).cmp(&(b.code, &b.entity, &b.message)));
    }

    /// Renders a `rustc`-style plain-text report.
    pub fn render_pretty(&self) -> String {
        if self.findings.is_empty() {
            return "clean: no findings\n".to_string();
        }
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&d.to_string());
            out.push('\n');
            for step in &d.witness {
                out.push_str("  via: ");
                out.push_str(step);
                out.push('\n');
            }
        }
        let (e, w, a) = self
            .findings
            .iter()
            .fold((0, 0, 0), |(e, w, a), d| match d.severity {
                Severity::Error => (e + 1, w, a),
                Severity::Warning => (e, w + 1, a),
                Severity::Allow => (e, w, a + 1),
            });
        out.push_str(&format!("{e} error(s), {w} warning(s), {a} allowed\n"));
        out
    }

    /// Renders the findings as a stable JSON array: one object per finding
    /// with `code`, `severity`, `entity`, `message`, and `witness`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"entity\":{},\"message\":{},\"witness\":[{}]}}",
                json_str(d.code.code()),
                json_str(&d.severity.to_string()),
                json_str(&d.entity),
                json_str(&d.message),
                d.witness
                    .iter()
                    .map(|n| json_str(n))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out.push(']');
        out
    }
}

// ---------------------------------------------------------------------------
// The abstract domain
// ---------------------------------------------------------------------------

/// Abstract value of one field: an interval `[lo, hi]` joined with a
/// known-bits mask, at a declared width.
///
/// Invariants: `lo <= hi <= mask_for(bits)`, `known_bits` is a subset of
/// `known_mask`. Every transfer function mirrors the interpreter: binary
/// operations take their width from the **left** operand, and
/// [`AbstractValue::resize`] models the truncating field write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstractValue {
    /// Width in bits.
    pub bits: u16,
    /// Inclusive lower bound.
    pub lo: u128,
    /// Inclusive upper bound.
    pub hi: u128,
    /// Mask of bits whose value is known.
    pub known_mask: u128,
    /// Values of the known bits (subset of `known_mask`).
    pub known_bits: u128,
}

impl AbstractValue {
    /// The single concrete value `raw` (truncated to `bits`).
    pub fn exact(raw: u128, bits: u16) -> Self {
        let m = mask_for(bits);
        let raw = raw & m;
        AbstractValue {
            bits,
            lo: raw,
            hi: raw,
            known_mask: m,
            known_bits: raw,
        }
    }

    /// The full value set at the given width (no information).
    pub fn top(bits: u16) -> Self {
        AbstractValue {
            bits,
            lo: 0,
            hi: mask_for(bits),
            known_mask: 0,
            known_bits: 0,
        }
    }

    /// The concrete value, if this abstraction pins exactly one.
    pub fn as_exact(&self) -> Option<u128> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// True if `raw` is in the abstraction's value set.
    pub fn contains(&self, raw: u128) -> bool {
        raw >= self.lo && raw <= self.hi && (raw & self.known_mask) == self.known_bits
    }

    /// True if the value set contains anything other than zero.
    pub fn may_be_nonzero(&self) -> bool {
        self.hi != 0
    }

    /// Least upper bound of two abstractions at `self`'s width.
    pub fn join(&self, other: &AbstractValue) -> AbstractValue {
        let other = other.resize(self.bits);
        let known_mask = self.known_mask & other.known_mask & !(self.known_bits ^ other.known_bits);
        AbstractValue {
            bits: self.bits,
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            known_mask,
            known_bits: self.known_bits & known_mask,
        }
    }

    /// Reinterprets at a new width — the abstract counterpart of the
    /// interpreter's truncating field write / widening field read.
    pub fn resize(&self, bits: u16) -> AbstractValue {
        if bits == self.bits {
            return *self;
        }
        let m = mask_for(bits);
        if bits > self.bits {
            // Widening: high bits are known zero.
            return AbstractValue {
                bits,
                lo: self.lo,
                hi: self.hi,
                known_mask: self.known_mask | (m & !mask_for(self.bits)),
                known_bits: self.known_bits,
            };
        }
        // Narrowing.
        let known_mask = self.known_mask & m;
        let known_bits = self.known_bits & m;
        let kb_lo = known_bits;
        let kb_hi = known_bits | (m & !known_mask);
        if self.hi <= m {
            // All values already fit: the interval survives, tightened by
            // the known-bit bounds.
            AbstractValue {
                bits,
                lo: self.lo.max(kb_lo),
                hi: self.hi.min(kb_hi),
                known_mask,
                known_bits,
            }
        } else {
            // Truncation wraps: interval information is lost; only the
            // surviving known bits bound the result.
            AbstractValue {
                bits,
                lo: kb_lo,
                hi: kb_hi,
                known_mask,
                known_bits,
            }
        }
    }

    /// Rebuilds the interval purely from the known bits (used after bitwise
    /// transfer functions).
    fn from_known(bits: u16, known_mask: u128, known_bits: u128) -> AbstractValue {
        let m = mask_for(bits);
        let known_mask = known_mask & m;
        let known_bits = known_bits & known_mask;
        AbstractValue {
            bits,
            lo: known_bits,
            hi: known_bits | (m & !known_mask),
            known_mask,
            known_bits,
        }
    }

    /// Wrapping addition at `self`'s width.
    pub fn add(&self, rhs: &AbstractValue) -> AbstractValue {
        let m = mask_for(self.bits);
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return AbstractValue::exact(a.wrapping_add(b) & m, self.bits);
        }
        match (self.hi.checked_add(rhs.hi), self.lo.checked_add(rhs.lo)) {
            (Some(hi), Some(lo)) if hi <= m => AbstractValue {
                bits: self.bits,
                lo,
                hi,
                known_mask: 0,
                known_bits: 0,
            },
            _ => AbstractValue::top(self.bits),
        }
    }

    /// Wrapping subtraction at `self`'s width.
    pub fn sub(&self, rhs: &AbstractValue) -> AbstractValue {
        let m = mask_for(self.bits);
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return AbstractValue::exact(a.wrapping_sub(b) & m, self.bits);
        }
        if self.lo >= rhs.hi && rhs.hi <= m {
            AbstractValue {
                bits: self.bits,
                lo: self.lo - rhs.hi,
                hi: self.hi - rhs.lo,
                known_mask: 0,
                known_bits: 0,
            }
        } else {
            AbstractValue::top(self.bits)
        }
    }

    /// Bitwise AND at `self`'s width.
    pub fn and(&self, rhs: &AbstractValue) -> AbstractValue {
        let rhs = rhs.resize(self.bits);
        let a1 = self.known_mask & self.known_bits;
        let a0 = self.known_mask & !self.known_bits;
        let b1 = rhs.known_mask & rhs.known_bits;
        let b0 = rhs.known_mask & !rhs.known_bits;
        let k1 = a1 & b1;
        let k0 = a0 | b0;
        AbstractValue::from_known(self.bits, k1 | k0, k1)
    }

    /// Bitwise OR at `self`'s width.
    pub fn or(&self, rhs: &AbstractValue) -> AbstractValue {
        let rhs = rhs.resize(self.bits);
        let a1 = self.known_mask & self.known_bits;
        let a0 = self.known_mask & !self.known_bits;
        let b1 = rhs.known_mask & rhs.known_bits;
        let b0 = rhs.known_mask & !rhs.known_bits;
        let k1 = a1 | b1;
        let k0 = a0 & b0;
        AbstractValue::from_known(self.bits, k1 | k0, k1)
    }

    /// Bitwise XOR at `self`'s width.
    pub fn xor(&self, rhs: &AbstractValue) -> AbstractValue {
        let rhs = rhs.resize(self.bits);
        let km = self.known_mask & rhs.known_mask;
        AbstractValue::from_known(self.bits, km, (self.known_bits ^ rhs.known_bits) & km)
    }

    /// Logical shift left by a constant, at `self`'s width.
    pub fn shl(&self, amount: u32) -> AbstractValue {
        if amount >= 128 {
            return AbstractValue::exact(0, self.bits);
        }
        let m = mask_for(self.bits);
        if let Some(x) = self.as_exact() {
            return AbstractValue::exact((x << amount) & m, self.bits);
        }
        let low_known_zero = if amount == 0 {
            0
        } else {
            mask_for(amount.min(128) as u16)
        };
        let km = ((self.known_mask << amount) | low_known_zero) & m;
        // Bits shifted in past the width are lost; bits whose source lay
        // beyond the width were zero anyway.
        let hi_src_known = self.known_mask | !mask_for(self.bits);
        let km = km & ((hi_src_known << amount) | low_known_zero);
        AbstractValue::from_known(self.bits, km, (self.known_bits << amount) & km)
    }

    /// Logical shift right by a constant, at `self`'s width.
    pub fn shr(&self, amount: u32) -> AbstractValue {
        if amount >= 128 {
            return AbstractValue::exact(0, self.bits);
        }
        let m = mask_for(self.bits);
        if let Some(x) = self.as_exact() {
            return AbstractValue::exact((x >> amount) & m, self.bits);
        }
        let high_known_zero = m & !(m >> amount);
        let km = ((self.known_mask >> amount) | high_known_zero) & m;
        let mut out = AbstractValue::from_known(self.bits, km, (self.known_bits >> amount) & km);
        // shr is monotonic, so the interval survives it.
        out.lo = out.lo.max(self.lo >> amount);
        out.hi = out.hi.min(self.hi >> amount);
        out
    }
}

/// Three-valued truth of an abstract condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Provably true on every concrete value in the abstraction.
    True,
    /// Provably false on every concrete value in the abstraction.
    False,
    /// Cannot be decided abstractly.
    Maybe,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Maybe => Tri::Maybe,
        }
    }
}

type Env = BTreeMap<FieldRef, AbstractValue>;

/// Joins two per-path environments: only facts established on both paths
/// survive (an absent binding means "any value").
fn join_envs(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, va) in a {
        if let Some(vb) = b.get(k) {
            out.insert(k.clone(), va.join(vb));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Expression / condition evaluation and refinement
// ---------------------------------------------------------------------------

/// Compact source-like rendering of an expression for messages.
fn fmt_expr(e: &Expr) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::Field(fr) => fr.to_string(),
        Expr::Param(p) => format!("${p}"),
        Expr::Add(a, b) => format!("({} + {})", fmt_expr(a), fmt_expr(b)),
        Expr::Sub(a, b) => format!("({} - {})", fmt_expr(a), fmt_expr(b)),
        Expr::And(a, b) => format!("({} & {})", fmt_expr(a), fmt_expr(b)),
        Expr::Or(a, b) => format!("({} | {})", fmt_expr(a), fmt_expr(b)),
        Expr::Xor(a, b) => format!("({} ^ {})", fmt_expr(a), fmt_expr(b)),
        Expr::Shl(a, n) => format!("({} << {n})", fmt_expr(a)),
        Expr::Shr(a, n) => format!("({} >> {n})", fmt_expr(a)),
    }
}

/// Compact source-like rendering of a condition for messages.
fn fmt_bool(b: &BoolExpr) -> String {
    match b {
        BoolExpr::Cmp(a, op, c) => {
            let sym = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {sym} {}", fmt_expr(a), fmt_expr(c))
        }
        BoolExpr::And(a, c) => format!("({} && {})", fmt_bool(a), fmt_bool(c)),
        BoolExpr::Or(a, c) => format!("({} || {})", fmt_bool(a), fmt_bool(c)),
        BoolExpr::Not(a) => format!("!({})", fmt_bool(a)),
        BoolExpr::Valid(h) => format!("isValid({h})"),
    }
}

const MAX_DEPTH: usize = 64;

struct Analyzer<'a> {
    program: &'a Program,
    config: &'a AnalysisConfig,
    report: AnalysisReport,
    seen: BTreeSet<(AnalysisCode, String, String)>,
    /// Every field any action in the program writes (for DJV204 guard
    /// mutability).
    writers: Vec<FieldRef>,
}

impl<'a> Analyzer<'a> {
    fn new(program: &'a Program, config: &'a AnalysisConfig) -> Self {
        let writers = program
            .actions
            .values()
            .flat_map(|a| a.writes())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        Analyzer {
            program,
            config,
            report: AnalysisReport::default(),
            seen: BTreeSet::new(),
            writers,
        }
    }

    fn emit(&mut self, code: AnalysisCode, entity: &str, message: String, witness: Vec<String>) {
        if !self
            .seen
            .insert((code, entity.to_string(), message.clone()))
        {
            return;
        }
        let severity = self.config.severity_for(code, entity);
        let mut f = Finding::new(code, entity, message).with_witness(witness);
        f.severity = severity;
        self.report.findings.push(f);
    }

    /// Natural-width abstract evaluation, mirroring the interpreter: the
    /// width of a binary operation is the width of its left operand.
    fn eval(&self, e: &Expr, env: &Env, action: Option<&ActionDef>) -> AbstractValue {
        match e {
            Expr::Const(v) => AbstractValue::exact(v.raw(), v.bits()),
            Expr::Field(fr) => {
                let bits = self.program.field_width(fr).unwrap_or(128);
                env.get(fr)
                    .map(|v| v.resize(bits))
                    .unwrap_or_else(|| AbstractValue::top(bits))
            }
            Expr::Param(p) => {
                let bits = action
                    .and_then(|a| a.params.iter().find(|(n, _)| n == p))
                    .map(|(_, w)| *w)
                    .unwrap_or(128);
                AbstractValue::top(bits)
            }
            Expr::Add(a, b) => self.eval(a, env, action).add(&self.eval(b, env, action)),
            Expr::Sub(a, b) => self.eval(a, env, action).sub(&self.eval(b, env, action)),
            Expr::And(a, b) => self.eval(a, env, action).and(&self.eval(b, env, action)),
            Expr::Or(a, b) => self.eval(a, env, action).or(&self.eval(b, env, action)),
            Expr::Xor(a, b) => self.eval(a, env, action).xor(&self.eval(b, env, action)),
            Expr::Shl(a, n) => self.eval(a, env, action).shl(*n),
            Expr::Shr(a, n) => self.eval(a, env, action).shr(*n),
        }
    }

    /// Three-valued truth of a condition under an environment. The
    /// comparison is width-agnostic on raw values, as in the interpreter.
    fn eval_bool(&self, b: &BoolExpr, env: &Env) -> Tri {
        match b {
            BoolExpr::Cmp(a, op, c) => {
                let ea = self.eval(a, env, None);
                let ec = self.eval(c, env, None);
                cmp_tri(&ea, *op, &ec)
            }
            BoolExpr::And(a, c) => match (self.eval_bool(a, env), self.eval_bool(c, env)) {
                (Tri::True, Tri::True) => Tri::True,
                (Tri::False, _) | (_, Tri::False) => Tri::False,
                _ => Tri::Maybe,
            },
            BoolExpr::Or(a, c) => match (self.eval_bool(a, env), self.eval_bool(c, env)) {
                (Tri::False, Tri::False) => Tri::False,
                (Tri::True, _) | (_, Tri::True) => Tri::True,
                _ => Tri::Maybe,
            },
            BoolExpr::Not(a) => self.eval_bool(a, env).not(),
            BoolExpr::Valid(_) => Tri::Maybe,
        }
    }

    /// Refines `env` under the assumption that `cond` evaluates to `truth`.
    /// `None` means the assumption contradicts the environment.
    fn assume(&self, cond: &BoolExpr, truth: bool, env: &Env) -> Option<Env> {
        match cond {
            BoolExpr::Not(a) => self.assume(a, !truth, env),
            BoolExpr::And(a, b) if truth => {
                let e = self.assume(a, true, env)?;
                self.assume(b, true, &e)
            }
            BoolExpr::Or(a, b) if !truth => {
                let e = self.assume(a, false, env)?;
                self.assume(b, false, &e)
            }
            BoolExpr::Cmp(a, op, b) => {
                let eff = if truth { *op } else { negate_op(*op) };
                if let (Expr::Field(fr), Expr::Const(v)) = (a, b) {
                    return self.refine_field(env, fr, eff, v.raw());
                }
                if let (Expr::Const(v), Expr::Field(fr)) = (a, b) {
                    return self.refine_field(env, fr, mirror_op(eff), v.raw());
                }
                Some(env.clone())
            }
            _ => Some(env.clone()),
        }
    }

    /// Clamps the abstraction of `fr` by `fr <op> raw`. `None` on
    /// contradiction.
    fn refine_field(&self, env: &Env, fr: &FieldRef, op: CmpOp, raw: u128) -> Option<Env> {
        let Some(bits) = self.program.field_width(fr) else {
            return Some(env.clone());
        };
        let cur = env
            .get(fr)
            .copied()
            .unwrap_or_else(|| AbstractValue::top(bits));
        let m = mask_for(cur.bits);
        let refined = match op {
            CmpOp::Eq => {
                if raw > m || !cur.contains(raw) {
                    return None;
                }
                AbstractValue::exact(raw, cur.bits)
            }
            CmpOp::Ne => {
                let mut v = cur;
                if v.as_exact() == Some(raw) {
                    return None;
                }
                if v.lo == raw {
                    v.lo += 1;
                }
                if v.hi == raw && v.hi > 0 {
                    v.hi -= 1;
                }
                if v.lo > v.hi {
                    return None;
                }
                v
            }
            CmpOp::Lt => {
                if raw == 0 {
                    return None;
                }
                let mut v = cur;
                v.hi = v.hi.min(raw - 1);
                if v.lo > v.hi {
                    return None;
                }
                v
            }
            CmpOp::Le => {
                let mut v = cur;
                v.hi = v.hi.min(raw);
                if v.lo > v.hi {
                    return None;
                }
                v
            }
            CmpOp::Gt => {
                let mut v = cur;
                v.lo = v.lo.max(raw.checked_add(1)?);
                if v.lo > v.hi {
                    return None;
                }
                v
            }
            CmpOp::Ge => {
                let mut v = cur;
                v.lo = v.lo.max(raw);
                if v.lo > v.hi {
                    return None;
                }
                v
            }
        };
        let mut out = env.clone();
        out.insert(fr.clone(), refined);
        Some(out)
    }
}

fn cmp_tri(a: &AbstractValue, op: CmpOp, b: &AbstractValue) -> Tri {
    let eq = {
        let disjoint = a.hi < b.lo || b.hi < a.lo;
        let cm = a.known_mask & b.known_mask;
        let bit_conflict = (a.known_bits ^ b.known_bits) & cm != 0;
        if disjoint || bit_conflict {
            Tri::False
        } else if a.as_exact().is_some() && a.as_exact() == b.as_exact() {
            Tri::True
        } else {
            Tri::Maybe
        }
    };
    match op {
        CmpOp::Eq => eq,
        CmpOp::Ne => eq.not(),
        CmpOp::Lt => {
            if a.hi < b.lo {
                Tri::True
            } else if a.lo >= b.hi {
                Tri::False
            } else {
                Tri::Maybe
            }
        }
        CmpOp::Le => {
            if a.hi <= b.lo {
                Tri::True
            } else if a.lo > b.hi {
                Tri::False
            } else {
                Tri::Maybe
            }
        }
        CmpOp::Gt => {
            if a.lo > b.hi {
                Tri::True
            } else if a.hi <= b.lo {
                Tri::False
            } else {
                Tri::Maybe
            }
        }
        CmpOp::Ge => {
            if a.lo >= b.hi {
                Tri::True
            } else if a.hi < b.lo {
                Tri::False
            } else {
                Tri::Maybe
            }
        }
    }
}

fn negate_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// `a <op> b` rewritten as `b <op'> a`.
fn mirror_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Parser pass (DJV202 on select cases, entry-environment construction)
// ---------------------------------------------------------------------------

/// Per-run parser walk state.
struct ParserState {
    /// Environment at each Accept, joined into the entry environment.
    accepts: Vec<Env>,
    /// Header types parsed more than once on some path — their refinements
    /// are ambiguous between instances, so they are dropped from the entry
    /// environment.
    poisoned: BTreeSet<String>,
}

impl<'a> Analyzer<'a> {
    /// Walks every parser path: flags never-matching select cases
    /// (`DJV202`) and returns the join of all accept-path environments — the
    /// value facts that hold for every packet entering the control flow.
    fn parser_pass(&mut self) -> Env {
        let mut st = ParserState {
            accepts: Vec::new(),
            poisoned: BTreeSet::new(),
        };
        if let Some(start) = self.program.parser.start {
            self.visit_parser(start, Env::new(), BTreeSet::new(), Vec::new(), &mut st, 0);
        }
        let mut iter = st.accepts.into_iter();
        let mut entry = iter.next().unwrap_or_default();
        for e in iter {
            entry = join_envs(&entry, &e);
        }
        entry.retain(|k, _| !st.poisoned.contains(&k.header));
        entry
    }

    fn visit_parser(
        &mut self,
        target: Target,
        mut env: Env,
        mut parsed: BTreeSet<String>,
        mut path: Vec<String>,
        st: &mut ParserState,
        depth: usize,
    ) {
        if depth > MAX_DEPTH {
            return;
        }
        let node_idx = match target {
            Target::Accept => {
                st.accepts.push(env);
                return;
            }
            Target::Reject => return,
            Target::Node(i) => i,
        };
        let Some(node) = self.program.parser.nodes.get(node_idx) else {
            return;
        };
        let ht_name = node.header_type.clone();
        if !parsed.insert(ht_name.clone()) {
            st.poisoned.insert(ht_name.clone());
        }
        // Extracting a fresh instance invalidates prior refinements of this
        // header type.
        env.retain(|k, _| k.header != ht_name);
        path.push(format!("{ht_name}@{}", node.offset));
        let entity = format!("{ht_name}@{}", node.offset);
        match node.transition.clone() {
            Transition::Unconditional(t) => {
                self.visit_parser(t, env, parsed, path, st, depth + 1);
            }
            Transition::Select {
                field,
                cases,
                default,
            } => {
                let bits = self
                    .program
                    .header_types
                    .get(&ht_name)
                    .and_then(|ht| ht.field(&field))
                    .map(|f| f.bits)
                    .unwrap_or(128);
                let fr = FieldRef::new(ht_name.clone(), field.clone());
                let av = env
                    .get(&fr)
                    .copied()
                    .unwrap_or_else(|| AbstractValue::top(bits));
                let mut default_av = Some(av);
                for (v, t) in &cases {
                    if !av.contains(v.raw()) {
                        self.emit(
                            AnalysisCode::InfeasiblePath,
                            &entity,
                            format!(
                                "select case {v} on {ht_name}.{field} can never match \
                                 (feasible range [{:#x}, {:#x}])",
                                av.lo, av.hi
                            ),
                            path.clone(),
                        );
                        continue;
                    }
                    let mut env2 = env.clone();
                    env2.insert(fr.clone(), AbstractValue::exact(v.raw(), bits));
                    let mut p2 = path.clone();
                    p2.push(format!("case {v}"));
                    self.visit_parser(*t, env2, parsed.clone(), p2, st, depth + 1);
                    // The default (and later cases, conservatively kept at
                    // the un-refined value) excludes this case's value.
                    default_av = default_av.and_then(|d| refine_ne(d, v.raw()));
                }
                if let Some(d) = default_av {
                    let mut env2 = env;
                    env2.insert(fr, d);
                    let mut p2 = path;
                    p2.push("default".into());
                    self.visit_parser(default, env2, parsed, p2, st, depth + 1);
                }
            }
        }
    }
}

/// `av` with the single value `raw` excluded; `None` if that empties it.
fn refine_ne(mut av: AbstractValue, raw: u128) -> Option<AbstractValue> {
    if av.as_exact() == Some(raw) {
        return None;
    }
    if av.lo == raw {
        av.lo += 1;
    }
    if av.hi == raw && av.hi > 0 {
        av.hi -= 1;
    }
    if av.lo > av.hi {
        return None;
    }
    Some(av)
}

// ---------------------------------------------------------------------------
// Control pass (DJV202 branches, DJV203 entries, DJV204 recirculation)
// ---------------------------------------------------------------------------

impl<'a> Analyzer<'a> {
    fn control_pass(&mut self, entry_env: Env) {
        let Some(entry) = self.program.entry_control() else {
            return;
        };
        let body = entry.body.clone();
        let name = entry.name.clone();
        let mut guards: Vec<FieldRef> = Vec::new();
        let mut path = vec![format!("control {name}")];
        self.walk_stmts(&body, entry_env, &name, &mut guards, &mut path, 0);
    }

    fn walk_stmts(
        &mut self,
        stmts: &[Stmt],
        mut env: Env,
        control: &str,
        guards: &mut Vec<FieldRef>,
        path: &mut Vec<String>,
        depth: usize,
    ) -> Env {
        if depth > MAX_DEPTH {
            return env;
        }
        for stmt in stmts {
            env = self.walk_stmt(stmt, env, control, guards, path, depth);
        }
        env
    }

    fn walk_stmt(
        &mut self,
        stmt: &Stmt,
        env: Env,
        control: &str,
        guards: &mut Vec<FieldRef>,
        path: &mut Vec<String>,
        depth: usize,
    ) -> Env {
        match stmt {
            Stmt::Apply(t) => {
                path.push(format!("apply {t}"));
                let out = self.apply_table(t, env, guards, path);
                path.pop();
                out
            }
            Stmt::ApplySelect {
                table,
                arms,
                default,
            } => {
                path.push(format!("apply {table}"));
                let joined = self.apply_table(table, env.clone(), guards, path);
                let Some(tdef) = self.program.tables.get(table).cloned() else {
                    path.pop();
                    return joined;
                };
                // Arm bodies are control-dependent on the table outcome:
                // its match keys guard them.
                let keys = tdef.match_reads();
                guards.extend(keys.iter().cloned());
                let mut exits: Vec<Env> = Vec::new();
                for (action, body) in arms {
                    if !tdef.actions.contains(action) {
                        self.emit(
                            AnalysisCode::InfeasiblePath,
                            control,
                            format!(
                                "ApplySelect arm `{action}` on table {table} names an \
                                 action the table can never run"
                            ),
                            path.clone(),
                        );
                        continue;
                    }
                    // In this arm, exactly `action` ran.
                    let arm_env = self.apply_action(env.clone(), action);
                    path.push(format!("arm {action}"));
                    exits.push(self.walk_stmts(body, arm_env, control, guards, path, depth + 1));
                    path.pop();
                }
                path.push("arm default".into());
                exits.push(self.walk_stmts(default, joined, control, guards, path, depth + 1));
                path.pop();
                guards.truncate(guards.len() - keys.len());
                path.pop();
                let mut iter = exits.into_iter();
                let first = iter.next().unwrap_or_default();
                iter.fold(first, |acc, e| join_envs(&acc, &e))
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let tri = self.eval_bool(cond, &env);
                let desc = fmt_bool(cond);
                if tri == Tri::False && !then_branch.is_empty() {
                    self.emit(
                        AnalysisCode::InfeasiblePath,
                        control,
                        format!("branch condition `{desc}` is always false"),
                        path.clone(),
                    );
                }
                if tri == Tri::True && !else_branch.is_empty() {
                    self.emit(
                        AnalysisCode::InfeasiblePath,
                        control,
                        format!("else-branch of always-true condition `{desc}` never runs"),
                        path.clone(),
                    );
                }
                let n = cond.reads().len();
                guards.extend(cond.reads());
                let mut exits: Vec<Env> = Vec::new();
                if tri != Tri::False {
                    if let Some(e) = self.assume(cond, true, &env) {
                        path.push(format!("if {desc} [then]"));
                        exits.push(self.walk_stmts(
                            then_branch,
                            e,
                            control,
                            guards,
                            path,
                            depth + 1,
                        ));
                        path.pop();
                    }
                }
                if tri != Tri::True {
                    if let Some(e) = self.assume(cond, false, &env) {
                        path.push(format!("if {desc} [else]"));
                        exits.push(self.walk_stmts(
                            else_branch,
                            e,
                            control,
                            guards,
                            path,
                            depth + 1,
                        ));
                        path.pop();
                    }
                }
                guards.truncate(guards.len() - n);
                let mut iter = exits.into_iter();
                let first = iter.next().unwrap_or(env);
                iter.fold(first, |acc, e| join_envs(&acc, &e))
            }
            Stmt::Do(a) => {
                path.push(format!("do {a}"));
                self.check_recirc_site(a, &[], &env, guards, path);
                let out = self.apply_action(env, a);
                path.pop();
                out
            }
            Stmt::Call(c) => {
                if let Some(cb) = self.program.controls.get(c).cloned() {
                    path.push(format!("call {c}"));
                    let out = self.walk_stmts(&cb.body, env, &cb.name, guards, path, depth + 1);
                    path.pop();
                    out
                } else {
                    env
                }
            }
        }
    }

    /// Applies a table: DJV203 entry satisfiability against the feasible key
    /// values, DJV204 recirculation checks on every action the table may
    /// run, then havocs the environment with the join of all actions.
    fn apply_table(&mut self, table: &str, env: Env, guards: &[FieldRef], path: &[String]) -> Env {
        let Some(tdef) = self.program.tables.get(table).cloned() else {
            return env;
        };
        self.check_entries(&tdef, &env, path);
        let keys = tdef.match_reads();
        let mut exits: Vec<Env> = Vec::new();
        for action in &tdef.actions {
            self.check_recirc_site(action, &keys, &env, guards, path);
            exits.push(self.apply_action(env.clone(), action));
        }
        let mut iter = exits.into_iter();
        let first = iter.next().unwrap_or(env);
        iter.fold(first, |acc, e| join_envs(&acc, &e))
    }

    /// DJV203: every configured entry pattern must be matchable by some
    /// feasible key value.
    fn check_entries(&mut self, tdef: &TableDef, env: &Env, path: &[String]) {
        let Some(patterns) = self.config.entries.get(&tdef.name).cloned() else {
            return;
        };
        for (i, pattern) in patterns.iter().enumerate() {
            if pattern.len() != tdef.keys.len() {
                self.emit(
                    AnalysisCode::UnmatchableEntry,
                    &tdef.name,
                    format!(
                        "installed entry {i} has {} key match(es), table has {} key(s)",
                        pattern.len(),
                        tdef.keys.len()
                    ),
                    path.to_vec(),
                );
                continue;
            }
            for (km, key) in pattern.iter().zip(&tdef.keys) {
                let bits = self.program.field_width(&key.field).unwrap_or(128);
                let av = env
                    .get(&key.field)
                    .copied()
                    .unwrap_or_else(|| AbstractValue::top(bits));
                if !may_match(&av, km, bits) {
                    self.emit(
                        AnalysisCode::UnmatchableEntry,
                        &tdef.name,
                        format!(
                            "installed entry {i} can never match: key {} is confined to \
                             [{:#x}, {:#x}], outside the entry's match set",
                            key.field, av.lo, av.hi
                        ),
                        path.to_vec(),
                    );
                    break;
                }
            }
        }
    }

    /// DJV204: a `Set` of the resubmit/recirculate flag must sit behind a
    /// guard — the owning table's keys or an enclosing `if` — and some
    /// action in the program must be able to change that guard, or the
    /// packet loops forever.
    fn check_recirc_site(
        &mut self,
        action: &str,
        table_keys: &[FieldRef],
        env: &Env,
        guards: &[FieldRef],
        path: &[String],
    ) {
        let Some(adef) = self.program.actions.get(action) else {
            return;
        };
        for op in &adef.ops {
            let PrimitiveOp::Set { dst, value } = op else {
                continue;
            };
            if !dst.is_meta() || (dst.field != "resubmit_flag" && dst.field != "recirc_flag") {
                continue;
            }
            if !self.eval(value, env, Some(adef)).may_be_nonzero() {
                continue; // provably clears the flag
            }
            let all_guards: Vec<&FieldRef> = guards.iter().chain(table_keys.iter()).collect();
            if all_guards.is_empty() {
                self.emit(
                    AnalysisCode::UnboundedRecirc,
                    action,
                    format!(
                        "action {action} sets {dst} with no guarding condition or \
                         table key: every pass resubmits again, unboundedly"
                    ),
                    path.to_vec(),
                );
                continue;
            }
            let mutable = all_guards
                .iter()
                .any(|g| self.writers.iter().any(|w| field_overlaps(g, w)));
            if !mutable {
                let names: Vec<String> = all_guards.iter().map(|g| g.to_string()).collect();
                self.emit(
                    AnalysisCode::UnboundedRecirc,
                    action,
                    format!(
                        "action {action} sets {dst} but no action in the program writes \
                         any guard field ({}): the resubmit condition can never change",
                        names.join(", ")
                    ),
                    path.to_vec(),
                );
            }
        }
    }

    /// Abstract effect of running `action` with unknown (top) parameters.
    fn apply_action(&self, mut env: Env, action: &str) -> Env {
        let Some(adef) = self.program.actions.get(action) else {
            return env;
        };
        for op in &adef.ops {
            match op {
                PrimitiveOp::Set { dst, value } => {
                    if let Some(w) = self.program.field_width(dst) {
                        let av = self.eval(value, &env, Some(adef)).resize(w);
                        env.insert(dst.clone(), av);
                    }
                }
                PrimitiveOp::Hash { dst, .. } | PrimitiveOp::RegisterRead { dst, .. } => {
                    if let Some(w) = self.program.field_width(dst) {
                        env.insert(dst.clone(), AbstractValue::top(w));
                    }
                }
                PrimitiveOp::AddHeader { header, .. }
                | PrimitiveOp::RemoveHeader { header }
                | PrimitiveOp::RemoveHeaderNth { header, .. } => {
                    env.retain(|k, _| &k.header != header);
                }
                PrimitiveOp::Ipv4ChecksumUpdate { header } => {
                    let fr = FieldRef::new(header.clone(), "hdr_checksum");
                    if let Some(w) = self.program.field_width(&fr) {
                        env.insert(fr, AbstractValue::top(w));
                    }
                }
                PrimitiveOp::Drop => {
                    env.insert(FieldRef::meta("drop_flag"), AbstractValue::exact(1, 1));
                }
                PrimitiveOp::RegisterWrite { .. }
                | PrimitiveOp::Digest { .. }
                | PrimitiveOp::NoOp => {}
            }
        }
        env
    }

    /// DJV201: every action, evaluated with unconstrained inputs — an
    /// assignment or register access whose value may exceed the
    /// destination's width truncates silently.
    fn value_pass(&mut self) {
        let env = Env::new();
        for adef in self.program.actions.values().cloned() {
            for op in &adef.ops {
                match op {
                    PrimitiveOp::Set { dst, value } => {
                        if dst.field == "*" {
                            continue;
                        }
                        let Some(dw) = self.program.field_width(dst) else {
                            continue;
                        };
                        let av = self.eval(value, &env, Some(&adef));
                        if av.bits > dw && av.hi > mask_for(dw) {
                            self.emit(
                                AnalysisCode::ValueTruncation,
                                &adef.name,
                                format!(
                                    "assignment `{dst} = {}` truncates a {}-bit value \
                                     into {dw} bits (mask explicitly to silence)",
                                    fmt_expr(value),
                                    av.bits
                                ),
                                vec![format!("action {}", adef.name)],
                            );
                        }
                    }
                    PrimitiveOp::RegisterWrite {
                        register, value, ..
                    } => {
                        let Some(rdef) = self.program.registers.get(register) else {
                            continue;
                        };
                        let cw = rdef.width_bits;
                        let av = self.eval(value, &env, Some(&adef));
                        if av.bits > cw && av.hi > mask_for(cw) {
                            self.emit(
                                AnalysisCode::ValueTruncation,
                                &adef.name,
                                format!(
                                    "register write `{register}[..] = {}` truncates a \
                                     {}-bit value into {cw}-bit cells",
                                    fmt_expr(value),
                                    av.bits
                                ),
                                vec![format!("action {}", adef.name)],
                            );
                        }
                    }
                    PrimitiveOp::RegisterRead { dst, register, .. } => {
                        let Some(rdef) = self.program.registers.get(register) else {
                            continue;
                        };
                        let Some(dw) = self.program.field_width(dst) else {
                            continue;
                        };
                        if rdef.width_bits > dw {
                            self.emit(
                                AnalysisCode::ValueTruncation,
                                &adef.name,
                                format!(
                                    "register read `{dst} = {register}[..]` truncates \
                                     {}-bit cells into a {dw}-bit destination",
                                    rdef.width_bits
                                ),
                                vec![format!("action {}", adef.name)],
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Can any value in `av` satisfy the entry's match specification?
/// Conservative toward "yes".
fn may_match(av: &AbstractValue, km: &KeyMatch, bits: u16) -> bool {
    if let Some(x) = av.as_exact() {
        return km.matches(crate::value::Value::new(x, bits));
    }
    match km {
        KeyMatch::Any => true,
        KeyMatch::Exact(v) => av.contains(v.raw()),
        KeyMatch::Ternary(v, m) => {
            let relevant = m.raw() & av.known_mask;
            (av.known_bits ^ v.raw()) & relevant == 0
        }
        KeyMatch::Lpm(prefix, len) => {
            if *len == 0 {
                return true;
            }
            let shift = u32::from(bits.saturating_sub(*len));
            let low = if shift == 0 {
                0
            } else {
                mask_for(shift.min(128) as u16)
            };
            let range_lo = (prefix.raw() >> shift) << shift;
            let range_hi = range_lo | low;
            if av.hi < range_lo || av.lo > range_hi {
                return false;
            }
            let high_mask = mask_for(bits) & !low;
            (av.known_bits ^ range_lo) & high_mask & av.known_mask == 0
        }
        KeyMatch::Range(lo, hi) => !(av.hi < lo.raw() || av.lo > hi.raw()),
    }
}

/// Field-reference overlap, matching the dependency analysis: same header
/// namespace, and the fields are equal or either side is the `*` wildcard.
fn field_overlaps(a: &FieldRef, b: &FieldRef) -> bool {
    a.header == b.header && (a.field == b.field || a.field == "*" || b.field == "*")
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Analyzes a program with default severities and no installed entries.
pub fn check(program: &Program) -> AnalysisReport {
    check_with_config(program, &AnalysisConfig::default())
}

/// Analyzes a program under an explicit configuration.
pub fn check_with_config(program: &Program, config: &AnalysisConfig) -> AnalysisReport {
    let mut analyzer = Analyzer::new(program, config);
    let entry_env = analyzer.parser_pass();
    analyzer.value_pass();
    analyzer.control_pass(entry_env);
    let mut report = analyzer.report;
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ControlBlock;
    use crate::header::{fref, HeaderType};
    use crate::parser::ParseNode;
    use crate::table::{MatchKind, RegisterDef, TableKey};
    use crate::value::Value;

    /// One header `h { wide:32, f:8 }`, meta `m:8`, single-node parser.
    fn base_program() -> Program {
        let mut p = Program::new("t");
        p.header_types.insert(
            "h".into(),
            HeaderType::new("h", vec![("wide", 32u16), ("f", 8), ("pad", 8)]).unwrap(),
        );
        p.meta_fields.push(crate::header::FieldDef {
            name: "m".into(),
            bits: 8,
        });
        let n = p.parser.add_node(ParseNode {
            header_type: "h".into(),
            offset: 0,
            transition: Transition::Unconditional(Target::Accept),
        });
        p.parser.start = Some(Target::Node(n));
        p.controls
            .insert("ingress".into(), ControlBlock::new("ingress", vec![]));
        p.entry = "ingress".into();
        p
    }

    fn codes(report: &AnalysisReport) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.code.code()).collect()
    }

    #[test]
    fn abstract_value_algebra() {
        let a = AbstractValue::exact(0xff, 8);
        let b = AbstractValue::exact(2, 8);
        assert_eq!(a.add(&b).as_exact(), Some(1)); // wraps at 8 bits
        let t32 = AbstractValue::top(32);
        let masked = t32.and(&AbstractValue::exact(0xff, 32));
        assert_eq!(masked.hi, 0xff); // known-zero high bits bound the interval
        let j = AbstractValue::exact(3, 8).join(&AbstractValue::exact(7, 8));
        assert!(j.contains(3) && j.contains(7) && !j.contains(8));
        assert_eq!(j.known_mask & 0b100, 0); // differing bit unknown
        let narrowed = AbstractValue::exact(0x1234, 16).resize(8);
        assert_eq!(narrowed.as_exact(), Some(0x34));
        let widened = AbstractValue::top(8).resize(16);
        assert_eq!(widened.hi, 0xff); // high byte known zero
        let shifted = AbstractValue {
            bits: 16,
            lo: 0x100,
            hi: 0x1ff,
            known_mask: 0,
            known_bits: 0,
        }
        .shr(8);
        assert_eq!(shifted.as_exact(), Some(1));
    }

    #[test]
    fn truncation_flagged_and_mask_silences() {
        let mut p = base_program();
        p.actions.insert(
            "narrow".into(),
            ActionDef::simple(
                "narrow",
                vec![PrimitiveOp::Set {
                    dst: FieldRef::meta("m"),
                    value: Expr::field("h", "wide"),
                }],
            ),
        );
        p.actions.insert(
            "masked".into(),
            ActionDef::simple(
                "masked",
                vec![PrimitiveOp::Set {
                    dst: FieldRef::meta("m"),
                    value: Expr::And(
                        Box::new(Expr::field("h", "wide")),
                        Box::new(Expr::val(0xff, 32)),
                    ),
                }],
            ),
        );
        let report = check(&p);
        assert_eq!(codes(&report), vec!["DJV201"]);
        assert_eq!(report.findings[0].entity, "narrow");
    }

    #[test]
    fn register_width_mismatches_flagged() {
        let mut p = base_program();
        p.registers.insert(
            "r16".into(),
            RegisterDef {
                name: "r16".into(),
                width_bits: 16,
                size: 64,
            },
        );
        p.actions.insert(
            "wr".into(),
            ActionDef::simple(
                "wr",
                vec![PrimitiveOp::RegisterWrite {
                    register: "r16".into(),
                    index: Expr::val(0, 8),
                    value: Expr::field("h", "wide"),
                }],
            ),
        );
        p.actions.insert(
            "rd".into(),
            ActionDef::simple(
                "rd",
                vec![PrimitiveOp::RegisterRead {
                    dst: FieldRef::meta("m"),
                    register: "r16".into(),
                    index: Expr::val(0, 8),
                }],
            ),
        );
        let report = check(&p);
        assert_eq!(codes(&report), vec!["DJV201", "DJV201"]);
    }

    #[test]
    fn oversized_select_case_is_infeasible() {
        let mut p = base_program();
        p.parser.nodes[0].transition = Transition::Select {
            field: "f".into(),
            cases: vec![(Value::new(300, 16), Target::Accept)],
            default: Target::Accept,
        };
        let report = check(&p);
        assert_eq!(codes(&report), vec!["DJV202"]);
        assert_eq!(report.findings[0].entity, "h@0");
        assert!(!report.findings[0].witness.is_empty());
    }

    #[test]
    fn contradictory_nested_if_flagged() {
        let mut p = base_program();
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new(
                "ingress",
                vec![Stmt::If {
                    cond: BoolExpr::field_eq("h", "f", 5, 8),
                    then_branch: vec![Stmt::If {
                        cond: BoolExpr::field_eq("h", "f", 6, 8),
                        then_branch: vec![Stmt::Do("nop".into())],
                        else_branch: vec![],
                    }],
                    else_branch: vec![],
                }],
            ),
        );
        p.actions.insert(
            "nop".into(),
            ActionDef::simple("nop", vec![PrimitiveOp::NoOp]),
        );
        let report = check(&p);
        assert_eq!(codes(&report), vec!["DJV202"]);
        assert!(report.findings[0].message.contains("always false"));
    }

    #[test]
    fn exact_write_makes_else_dead() {
        let mut p = base_program();
        p.actions.insert(
            "setm".into(),
            ActionDef::simple(
                "setm",
                vec![PrimitiveOp::Set {
                    dst: FieldRef::meta("m"),
                    value: Expr::val(3, 8),
                }],
            ),
        );
        p.actions.insert(
            "nop".into(),
            ActionDef::simple("nop", vec![PrimitiveOp::NoOp]),
        );
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new(
                "ingress",
                vec![
                    Stmt::Do("setm".into()),
                    Stmt::If {
                        cond: BoolExpr::meta_eq("m", 3, 8),
                        then_branch: vec![Stmt::Do("nop".into())],
                        else_branch: vec![Stmt::Do("nop".into())],
                    },
                ],
            ),
        );
        let report = check(&p);
        assert_eq!(codes(&report), vec!["DJV202"]);
        assert!(report.findings[0].message.contains("always-true"));
    }

    fn keyed_table_program() -> Program {
        let mut p = base_program();
        p.actions.insert(
            "nop".into(),
            ActionDef::simple("nop", vec![PrimitiveOp::NoOp]),
        );
        p.tables.insert(
            "t".into(),
            TableDef {
                name: "t".into(),
                keys: vec![TableKey {
                    field: fref("h", "f"),
                    kind: MatchKind::Exact,
                }],
                actions: vec!["nop".into()],
                default_action: "nop".into(),
                default_action_args: vec![],
                size: 16,
            },
        );
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new(
                "ingress",
                vec![Stmt::If {
                    cond: BoolExpr::Cmp(Expr::field("h", "f"), CmpOp::Lt, Expr::val(10, 8)),
                    then_branch: vec![Stmt::Apply("t".into())],
                    else_branch: vec![],
                }],
            ),
        );
        p
    }

    #[test]
    fn unmatchable_entry_flagged() {
        let p = keyed_table_program();
        let config = AnalysisConfig::new().with_entries(
            "t",
            vec![
                vec![KeyMatch::Exact(Value::new(200, 8))],
                vec![KeyMatch::Exact(Value::new(5, 8))],
            ],
        );
        let report = check_with_config(&p, &config);
        assert_eq!(codes(&report), vec!["DJV203"]);
        assert!(report.findings[0].message.contains("entry 0"));
        assert_eq!(report.findings[0].severity, Severity::Error);
    }

    #[test]
    fn range_and_lpm_entry_feasibility() {
        let p = keyed_table_program();
        let config = AnalysisConfig::new().with_entries(
            "t",
            vec![
                vec![KeyMatch::Range(Value::new(100, 8), Value::new(200, 8))],
                vec![KeyMatch::Range(Value::new(0, 8), Value::new(9, 8))],
                vec![KeyMatch::Any],
            ],
        );
        let report = check_with_config(&p, &config);
        assert_eq!(codes(&report), vec!["DJV203"]);
    }

    #[test]
    fn unguarded_resubmit_flagged() {
        let mut p = base_program();
        p.actions.insert(
            "resub".into(),
            ActionDef::simple(
                "resub",
                vec![PrimitiveOp::Set {
                    dst: FieldRef::meta("resubmit_flag"),
                    value: Expr::val(1, 1),
                }],
            ),
        );
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new("ingress", vec![Stmt::Do("resub".into())]),
        );
        let report = check(&p);
        assert_eq!(codes(&report), vec!["DJV204"]);
        assert!(report.findings[0].message.contains("no guarding"));
    }

    #[test]
    fn immutable_guard_flagged_mutable_guard_clean() {
        let mut p = base_program();
        p.actions.insert(
            "resub".into(),
            ActionDef::simple(
                "resub",
                vec![PrimitiveOp::Set {
                    dst: FieldRef::meta("resubmit_flag"),
                    value: Expr::val(1, 1),
                }],
            ),
        );
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new(
                "ingress",
                vec![Stmt::If {
                    cond: BoolExpr::meta_eq("m", 0, 8),
                    then_branch: vec![Stmt::Do("resub".into())],
                    else_branch: vec![],
                }],
            ),
        );
        let report = check(&p);
        assert_eq!(codes(&report), vec!["DJV204"]);
        assert!(report.findings[0].message.contains("never change"));

        // Consuming the guard (the compose framework's pattern) clears it.
        p.actions
            .get_mut("resub")
            .unwrap()
            .ops
            .push(PrimitiveOp::Set {
                dst: FieldRef::meta("m"),
                value: Expr::val(1, 8),
            });
        assert!(check(&p).findings.is_empty());
    }

    #[test]
    fn applyselect_arm_for_foreign_action() {
        let mut p = keyed_table_program();
        p.actions.insert(
            "other".into(),
            ActionDef::simple("other", vec![PrimitiveOp::NoOp]),
        );
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new(
                "ingress",
                vec![Stmt::ApplySelect {
                    table: "t".into(),
                    arms: vec![("other".into(), vec![])],
                    default: vec![],
                }],
            ),
        );
        let report = check(&p);
        assert_eq!(codes(&report), vec!["DJV202"]);
        assert!(report.findings[0].message.contains("ApplySelect"));
    }

    #[test]
    fn allows_and_severity_overrides() {
        let mut p = base_program();
        p.actions.insert(
            "narrow".into(),
            ActionDef::simple(
                "narrow",
                vec![PrimitiveOp::Set {
                    dst: FieldRef::meta("m"),
                    value: Expr::field("h", "wide"),
                }],
            ),
        );
        let allowed = AnalysisConfig::new().allow(AnalysisCode::ValueTruncation, "narr*");
        let report = check_with_config(&p, &allowed);
        assert!(report.is_clean());
        let raised =
            AnalysisConfig::new().set_severity(AnalysisCode::ValueTruncation, Severity::Error);
        assert!(check_with_config(&p, &raised).has_errors());
    }

    #[test]
    fn report_order_and_json_are_stable() {
        let mut r = AnalysisReport::default();
        r.findings
            .push(Finding::new(AnalysisCode::UnboundedRecirc, "z", "m1"));
        r.findings.push(
            Finding::new(AnalysisCode::ValueTruncation, "a", "m2")
                .with_witness(vec!["step \"one\"".into()]),
        );
        r.sort();
        assert_eq!(codes(&r), vec!["DJV201", "DJV204"]);
        let json = r.render_json();
        assert!(json.starts_with("[{\"code\":\"DJV201\""));
        assert!(json.contains("\"witness\":[\"step \\\"one\\\"\"]"));
    }

    #[test]
    fn registry_is_consistent() {
        let mut seen = BTreeSet::new();
        for c in AnalysisCode::ALL {
            assert!(seen.insert(c.code()));
            assert!(!c.summary().is_empty());
        }
        assert_eq!(seen.len(), 7);
    }
}
