//! `dejavu-lint`: dataflow-based static verification of NF programs.
//!
//! [`Program::validate`](crate::Program::validate) catches *malformed* IR
//! (dangling names, width overflows). This module catches *well-formed but
//! wrong* programs — the defect classes that surface only after NFs are
//! merged and composed onto a pipelet (paper §3), when no human reads the
//! generated program anymore:
//!
//! * **Header-validity analysis** (`DJV001`/`DJV002`): from the parser DAG
//!   we compute, per control-flow point, the lattice of *guaranteed-parsed*
//!   and *maybe-parsed* header sets (guaranteed ⊆ maybe). A table key or
//!   action operand reading a header that is in neither set — no parser
//!   path extracts it and no action adds it — reads garbage on every packet
//!   (`DJV001`, error). Reading a header that is valid on only *some*
//!   reaching paths is ordinary in a generic parser that accepts both raw
//!   and SFC-encapsulated packets, so it is an `Allow`-level advisory
//!   (`DJV002`). Writes to never-valid headers are silent no-ops in the
//!   interpreter (and on the ASIC) and also report as `DJV002` — the
//!   firewall's `sfc.drop_flag` write on an un-encapsulated packet is the
//!   canonical intentional case.
//! * **Metadata def-use analysis** (`DJV003`): user metadata read (table
//!   key, action operand, or `if` condition) with **no** potential write on
//!   any reaching path. Standard platform metadata is hardware-initialized
//!   and exempt.
//! * **Structural checks**: mutual table dependencies that no stage order
//!   can satisfy (`DJV004`), tables never applied from the entry control
//!   (`DJV005`), controls unreachable from the entry (`DJV006`), ambiguous
//!   or redundant parser select cases (`DJV007`), and duplicate match keys
//!   (`DJV008`).
//!
//! Chain-level codes `DJV101` (SFC-invariant violations on composed
//! pipelet programs) and `DJV102` (recirculation demand exceeding the
//! loopback budget) are defined here so every diagnostic shares one
//! registry, but are emitted by `dejavu-core`'s composition-aware linter.
//!
//! Entry points: [`check`] with default severities, or
//! [`check_with_config`] with a [`LintConfig`] carrying severity overrides
//! and per-entity allows. `dejavu-compiler`'s `StageAllocator` refuses to
//! allocate programs carrying error-level diagnostics.

use crate::action::{ActionDef, PrimitiveOp};
use crate::control::{BoolExpr, Stmt};
use crate::parser::{Target, Transition};
use crate::program::{Program, STANDARD_METADATA};
use crate::FieldRef;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How seriously a finding is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Recorded for visibility; never blocks anything.
    Allow,
    /// Suspicious; reported but does not block allocation.
    Warning,
    /// Definite defect; `StageAllocator` refuses the program.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The lint registry: every class of finding, with a stable `DJVxxx` code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// `DJV001` — read/match of a header valid on **no** parser path.
    InvalidHeaderAccess,
    /// `DJV002` — access to a header valid on only some reaching paths, or
    /// a silent no-op write to a never-valid header.
    MaybeInvalidHeaderAccess,
    /// `DJV003` — user metadata read with no potential prior write.
    ReadBeforeWrite,
    /// `DJV004` — two tables each consuming the other's output: no stage
    /// order satisfies both data dependencies.
    DependencyCycle,
    /// `DJV005` — table defined but never applied from the entry control.
    UnreachableTable,
    /// `DJV006` — control block unreachable from the entry control.
    UnreachableControl,
    /// `DJV007` — duplicate case value in a parser select transition.
    AmbiguousSelect,
    /// `DJV008` — the same field appears twice in a table's match key.
    DuplicateMatchKey,
    /// `DJV101` — composed pipelet program violates an SFC framework
    /// invariant (emitted by `dejavu-core`).
    SfcInvariant,
    /// `DJV102` — weighted recirculation demand exceeds the loopback
    /// budget of the switch profile (emitted by `dejavu-core`).
    RecircBudget,
}

impl LintCode {
    /// Every registered lint, in code order.
    pub const ALL: [LintCode; 10] = [
        LintCode::InvalidHeaderAccess,
        LintCode::MaybeInvalidHeaderAccess,
        LintCode::ReadBeforeWrite,
        LintCode::DependencyCycle,
        LintCode::UnreachableTable,
        LintCode::UnreachableControl,
        LintCode::AmbiguousSelect,
        LintCode::DuplicateMatchKey,
        LintCode::SfcInvariant,
        LintCode::RecircBudget,
    ];

    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::InvalidHeaderAccess => "DJV001",
            LintCode::MaybeInvalidHeaderAccess => "DJV002",
            LintCode::ReadBeforeWrite => "DJV003",
            LintCode::DependencyCycle => "DJV004",
            LintCode::UnreachableTable => "DJV005",
            LintCode::UnreachableControl => "DJV006",
            LintCode::AmbiguousSelect => "DJV007",
            LintCode::DuplicateMatchKey => "DJV008",
            LintCode::SfcInvariant => "DJV101",
            LintCode::RecircBudget => "DJV102",
        }
    }

    /// Severity when no [`LintConfig`] override applies.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::MaybeInvalidHeaderAccess => Severity::Allow,
            LintCode::UnreachableTable | LintCode::UnreachableControl => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line description for the registry table.
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::InvalidHeaderAccess => "access to a header no parser path makes valid",
            LintCode::MaybeInvalidHeaderAccess => {
                "access to a header valid on only some parser paths"
            }
            LintCode::ReadBeforeWrite => "metadata read before any potential write",
            LintCode::DependencyCycle => "mutual data dependency between two tables",
            LintCode::UnreachableTable => "table never applied from the entry control",
            LintCode::UnreachableControl => "control unreachable from the entry control",
            LintCode::AmbiguousSelect => "duplicate case value in a parser select",
            LintCode::DuplicateMatchKey => "field repeated in a table match key",
            LintCode::SfcInvariant => "composed program violates an SFC framework invariant",
            LintCode::RecircBudget => "recirculation demand exceeds the loopback budget",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity (after configuration).
    pub severity: Severity,
    /// The entity it anchors to: a table, action, control, parser vertex
    /// (`header@offset`), or chain name.
    pub entity: String,
    /// Human-readable description of the defect.
    pub message: String,
    /// Secondary context lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic at the lint's default severity.
    pub fn new(code: LintCode, entity: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            entity: entity.into(),
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Adds a context note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.entity, self.message
        )
    }
}

/// Lint configuration: severity overrides and per-entity allows.
///
/// Allows are `(code, entity pattern)` pairs; a pattern is either an exact
/// entity name or a prefix ending in `*`. A matching finding is demoted to
/// [`Severity::Allow`] — it stays visible in the report but blocks nothing.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    severities: BTreeMap<LintCode, Severity>,
    allows: Vec<(LintCode, String)>,
}

impl LintConfig {
    /// Creates the default configuration (registry defaults, no allows).
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Overrides the severity of a lint code.
    pub fn set_severity(mut self, code: LintCode, severity: Severity) -> Self {
        self.severities.insert(code, severity);
        self
    }

    /// Allows a lint for entities matching `pattern` (exact name, or a
    /// prefix ending in `*`).
    pub fn allow(mut self, code: LintCode, pattern: impl Into<String>) -> Self {
        self.allows.push((code, pattern.into()));
        self
    }

    /// Effective severity of `code` at `entity`.
    pub fn severity_for(&self, code: LintCode, entity: &str) -> Severity {
        for (c, pat) in &self.allows {
            if *c == code && pattern_matches(pat, entity) {
                return Severity::Allow;
            }
        }
        self.severities
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_severity())
    }
}

pub(crate) fn pattern_matches(pattern: &str, entity: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => entity.starts_with(prefix),
        None => pattern == entity,
    }
}

/// The findings of one lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, including `Allow`-level advisories.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Error-level findings.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// Warning-level findings.
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    /// True when any error-level finding exists.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// True when nothing at warning level or above fired. `Allow`-level
    /// advisories do not spoil cleanliness.
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity == Severity::Allow)
    }

    /// Absorbs another report's findings and restores deterministic order.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
        self.sort();
    }

    /// Sorts diagnostics by (code, entity, message) — the canonical order,
    /// so CI output diffs reproducibly across runs and platforms.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (a.code, &a.entity, &a.message).cmp(&(b.code, &b.entity, &b.message)));
    }

    /// One formatted line per error (used in refusal messages).
    pub fn error_summaries(&self) -> Vec<String> {
        self.errors().iter().map(|d| d.to_string()).collect()
    }

    /// Renders a `rustc`-style plain-text report.
    pub fn render_pretty(&self) -> String {
        if self.diagnostics.is_empty() {
            return "clean: no findings\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
            for note in &d.notes {
                out.push_str("  note: ");
                out.push_str(note);
                out.push('\n');
            }
        }
        let (e, w, a) = self
            .diagnostics
            .iter()
            .fold((0, 0, 0), |(e, w, a), d| match d.severity {
                Severity::Error => (e + 1, w, a),
                Severity::Warning => (e, w + 1, a),
                Severity::Allow => (e, w, a + 1),
            });
        out.push_str(&format!("{e} error(s), {w} warning(s), {a} allowed\n"));
        out
    }

    /// Renders the findings as a JSON array.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"entity\":{},\"message\":{},\"notes\":[{}]}}",
                json_str(d.code.code()),
                json_str(&d.severity.to_string()),
                json_str(&d.entity),
                json_str(&d.message),
                d.notes
                    .iter()
                    .map(|n| json_str(n))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out.push(']');
        out
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints a program with default severities.
pub fn check(program: &Program) -> LintReport {
    check_with_config(program, &LintConfig::default())
}

/// Lints a program under an explicit configuration.
pub fn check_with_config(program: &Program, config: &LintConfig) -> LintReport {
    let mut checker = Checker::new(program, config);
    checker.check_duplicate_match_keys();
    checker.check_ambiguous_selects();
    checker.check_reachability();
    checker.check_dependency_cycles();
    checker.check_dataflow();
    checker.report.sort();
    checker.report
}

/// Per-path dataflow facts at one control-flow point.
#[derive(Debug, Clone)]
struct FlowState {
    /// Headers valid on **every** path reaching this point.
    guaranteed: BTreeSet<String>,
    /// Headers valid on **some** path reaching this point.
    maybe: BTreeSet<String>,
    /// User metadata fields potentially written on some reaching path.
    written: BTreeSet<String>,
}

impl FlowState {
    /// Join of two branch exits: guaranteed meets, maybe/written join.
    fn merge(mut self, other: &FlowState) -> FlowState {
        self.guaranteed = self
            .guaranteed
            .intersection(&other.guaranteed)
            .cloned()
            .collect();
        self.maybe.extend(other.maybe.iter().cloned());
        self.written.extend(other.written.iter().cloned());
        self
    }
}

const MAX_DEPTH: usize = 64;

struct Checker<'a> {
    program: &'a Program,
    config: &'a LintConfig,
    report: LintReport,
    /// Dedup key: (code, entity, message).
    seen: BTreeSet<(LintCode, String, String)>,
    meta_declared: BTreeSet<String>,
    std_meta: BTreeSet<&'static str>,
}

impl<'a> Checker<'a> {
    fn new(program: &'a Program, config: &'a LintConfig) -> Self {
        Checker {
            program,
            config,
            report: LintReport::default(),
            seen: BTreeSet::new(),
            meta_declared: program.meta_fields.iter().map(|f| f.name.clone()).collect(),
            std_meta: STANDARD_METADATA.iter().map(|(n, _)| *n).collect(),
        }
    }

    fn emit(&mut self, mut diag: Diagnostic) {
        let key = (diag.code, diag.entity.clone(), diag.message.clone());
        if !self.seen.insert(key) {
            return;
        }
        diag.severity = self.config.severity_for(diag.code, &diag.entity);
        self.report.diagnostics.push(diag);
    }

    // ------------------------------------------------------------------
    // Structural checks
    // ------------------------------------------------------------------

    fn check_duplicate_match_keys(&mut self) {
        for table in self.program.tables.values() {
            let mut seen = BTreeSet::new();
            for key in &table.keys {
                let id = (key.field.header.clone(), key.field.field.clone());
                if !seen.insert(id) {
                    self.emit(Diagnostic::new(
                        LintCode::DuplicateMatchKey,
                        &table.name,
                        format!(
                            "match key `{}.{}` appears more than once",
                            key.field.header, key.field.field
                        ),
                    ));
                }
            }
        }
    }

    fn check_ambiguous_selects(&mut self) {
        for node in &self.program.parser.nodes {
            let Transition::Select { field, cases, .. } = &node.transition else {
                continue;
            };
            let entity = format!("{}@{}", node.header_type, node.offset);
            let mut first: BTreeMap<u128, &Target> = BTreeMap::new();
            for (value, target) in cases {
                match first.get(&value.raw()) {
                    None => {
                        first.insert(value.raw(), target);
                    }
                    Some(existing) => {
                        let detail = if **existing == *target {
                            "redundant duplicate"
                        } else {
                            "ambiguous: the first case wins, the second is dead"
                        };
                        self.emit(Diagnostic::new(
                            LintCode::AmbiguousSelect,
                            &entity,
                            format!(
                                "select on `{}` lists case {:#x} twice ({})",
                                field,
                                value.raw(),
                                detail
                            ),
                        ));
                    }
                }
            }
        }
    }

    fn check_reachability(&mut self) {
        // Controls reachable from the entry via Call.
        let mut reachable: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![self.program.entry.clone()];
        while let Some(name) = stack.pop() {
            if !reachable.insert(name.clone()) {
                continue;
            }
            if let Some(cb) = self.program.controls.get(&name) {
                stack.extend(cb.controls_called());
            }
        }
        for name in self.program.controls.keys() {
            if !reachable.contains(name) {
                self.emit(Diagnostic::new(
                    LintCode::UnreachableControl,
                    name,
                    format!(
                        "control `{name}` is never called from entry `{}`",
                        self.program.entry
                    ),
                ));
            }
        }

        // Tables applied somewhere under the entry.
        let applied: BTreeSet<String> = self.program.tables_in_order().into_iter().collect();
        for name in self.program.tables.keys() {
            if !applied.contains(name) {
                self.emit(Diagnostic::new(
                    LintCode::UnreachableTable,
                    name,
                    format!("table `{name}` is defined but never applied"),
                ));
            }
        }
    }

    /// Footprints of a table: everything its keys and actions read, and
    /// everything its actions may write.
    fn table_footprint(&self, table_name: &str) -> Option<(Vec<FieldRef>, Vec<FieldRef>)> {
        let table = self.program.tables.get(table_name)?;
        let mut reads = table.match_reads();
        let mut writes = Vec::new();
        for action_name in table
            .actions
            .iter()
            .chain(std::iter::once(&table.default_action))
        {
            if let Some(action) = self.program.actions.get(action_name) {
                reads.extend(action.reads());
                writes.extend(action.writes());
            }
        }
        Some((reads, writes))
    }

    fn check_dependency_cycles(&mut self) {
        let mut order: Vec<String> = Vec::new();
        for t in self.program.tables_in_order() {
            if !order.contains(&t) {
                order.push(t);
            }
        }
        let footprints: BTreeMap<&String, (Vec<FieldRef>, Vec<FieldRef>)> = order
            .iter()
            .filter_map(|t| self.table_footprint(t).map(|fp| (t, fp)))
            .collect();
        let exclusive = crate::deps::mutually_exclusive_pairs(self.program);

        for i in 0..order.len() {
            for j in (i + 1)..order.len() {
                let (a, b) = (&order[i], &order[j]);
                if exclusive.contains(&(a.clone(), b.clone()))
                    || exclusive.contains(&(b.clone(), a.clone()))
                {
                    continue;
                }
                let (Some((reads_a, writes_a)), Some((reads_b, writes_b))) =
                    (footprints.get(a), footprints.get(b))
                else {
                    continue;
                };
                // Fields A produces that B consumes, and vice versa. A
                // mutual dependency through the *same* field (e.g. two
                // tables incrementing one counter) is order-sensitive but
                // satisfiable; a cycle through distinct fields is not.
                let fwd: Vec<&FieldRef> = writes_a
                    .iter()
                    .filter(|w| reads_b.iter().any(|r| crate::deps::overlaps(w, r)))
                    .collect();
                let back: Vec<&FieldRef> = writes_b
                    .iter()
                    .filter(|w| reads_a.iter().any(|r| crate::deps::overlaps(w, r)))
                    .collect();
                let witness = fwd.iter().find_map(|fa| {
                    back.iter()
                        .find(|fb| !crate::deps::overlaps(fa, fb))
                        .map(|fb| (*fa, *fb))
                });
                if let Some((fa, fb)) = witness {
                    self.emit(
                        Diagnostic::new(
                            LintCode::DependencyCycle,
                            b,
                            format!(
                                "tables `{a}` and `{b}` depend on each other's output: \
                                 `{a}` writes `{}.{}` which `{b}` reads, and `{b}` writes \
                                 `{}.{}` which `{a}` reads",
                                fa.header, fa.field, fb.header, fb.field
                            ),
                        )
                        .with_note(
                            "no single-pass stage order satisfies both dependencies; \
                             one table always sees the previous pass's value"
                                .to_string(),
                        ),
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Dataflow: header validity + metadata def-use
    // ------------------------------------------------------------------

    fn check_dataflow(&mut self) {
        let (guaranteed, maybe) = self.parser_sets();
        let mut state = FlowState {
            guaranteed,
            maybe,
            written: BTreeSet::new(),
        };
        let entry = self.program.entry.clone();
        let mut call_stack = Vec::new();
        self.walk_control(&entry, &mut state, 0, &mut call_stack);
    }

    /// Guaranteed/maybe header sets at the end of parsing.
    ///
    /// `maybe` is every header on any start-reachable vertex; `guaranteed`
    /// is the meet (set intersection) over all accept paths, computed by a
    /// memoized walk of the DAG. Malformed cyclic parsers (rejected by
    /// `validate`) terminate via an on-stack guard instead of panicking.
    fn parser_sets(&self) -> (BTreeSet<String>, BTreeSet<String>) {
        let nodes = &self.program.parser.nodes;
        let mut maybe = BTreeSet::new();
        let start = match self.program.parser.start {
            Some(Target::Node(i)) if i < nodes.len() => i,
            _ => return (BTreeSet::new(), BTreeSet::new()),
        };
        // Reachable sweep for `maybe`.
        let mut stack = vec![start];
        let mut visited = BTreeSet::new();
        while let Some(i) = stack.pop() {
            if !visited.insert(i) {
                continue;
            }
            maybe.insert(nodes[i].header_type.clone());
            for t in transition_targets(&nodes[i].transition) {
                if let Target::Node(j) = t {
                    if j < nodes.len() {
                        stack.push(j);
                    }
                }
            }
        }
        // Meet over accept paths for `guaranteed`.
        let mut memo: BTreeMap<usize, Option<BTreeSet<String>>> = BTreeMap::new();
        let mut on_stack = BTreeSet::new();
        let guaranteed =
            guaranteed_from(nodes, start, &mut memo, &mut on_stack).unwrap_or_default();
        (guaranteed, maybe)
    }

    fn walk_control(
        &mut self,
        name: &str,
        state: &mut FlowState,
        depth: usize,
        call_stack: &mut Vec<String>,
    ) {
        if depth > MAX_DEPTH || call_stack.iter().any(|c| c == name) {
            return; // validate() rejects runaway nesting/recursion
        }
        let Some(control) = self.program.controls.get(name) else {
            return;
        };
        call_stack.push(name.to_string());
        let body = control.body.clone();
        self.walk_stmts(&body, state, depth, call_stack);
        call_stack.pop();
    }

    fn walk_stmts(
        &mut self,
        stmts: &[Stmt],
        state: &mut FlowState,
        depth: usize,
        call_stack: &mut Vec<String>,
    ) {
        if depth > MAX_DEPTH {
            return;
        }
        for stmt in stmts {
            match stmt {
                Stmt::Apply(table) => self.visit_table(table, state),
                Stmt::ApplySelect {
                    table,
                    arms,
                    default,
                } => {
                    self.visit_table(table, state);
                    let mut exits: Vec<FlowState> = Vec::new();
                    for (_, body) in arms {
                        let mut branch = state.clone();
                        self.walk_stmts(body, &mut branch, depth + 1, call_stack);
                        exits.push(branch);
                    }
                    let mut branch = state.clone();
                    self.walk_stmts(default, &mut branch, depth + 1, call_stack);
                    exits.push(branch);
                    *state = merge_exits(exits);
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    for read in cond_field_reads(cond) {
                        self.check_read(state, &read, "if condition", "condition");
                    }
                    let mut then_state = state.clone();
                    let mut else_state = state.clone();
                    refine_by_validity(cond, &mut then_state, &mut else_state);
                    self.walk_stmts(then_branch, &mut then_state, depth + 1, call_stack);
                    self.walk_stmts(else_branch, &mut else_state, depth + 1, call_stack);
                    *state = merge_exits(vec![then_state, else_state]);
                }
                Stmt::Do(action) => {
                    if let Some(def) = self.program.actions.get(action).cloned() {
                        self.run_action(&def, state);
                    }
                }
                Stmt::Call(control) => {
                    let name = control.clone();
                    self.walk_control(&name, state, depth + 1, call_stack);
                }
            }
        }
    }

    /// Checks a table's keys and actions at this control-flow point, then
    /// folds the actions' effects into the state (actions are alternatives,
    /// so their exits merge like branches).
    fn visit_table(&mut self, name: &str, state: &mut FlowState) {
        let Some(table) = self.program.tables.get(name).cloned() else {
            return;
        };
        for key in &table.keys {
            self.check_read(state, &key.field, &table.name, "match key");
        }
        let mut action_names: Vec<&String> = table.actions.iter().collect();
        if !table.actions.contains(&table.default_action) {
            action_names.push(&table.default_action);
        }
        let mut exits: Vec<FlowState> = Vec::new();
        for action_name in action_names {
            let Some(def) = self.program.actions.get(action_name).cloned() else {
                continue;
            };
            let mut local = state.clone();
            self.run_action(&def, &mut local);
            exits.push(local);
        }
        if !exits.is_empty() {
            *state = merge_exits(exits);
        }
    }

    /// Processes an action's ops in order, checking reads against the state
    /// as of each op and applying writes to it.
    fn run_action(&mut self, def: &ActionDef, state: &mut FlowState) {
        for op in &def.ops {
            for read in op.reads() {
                self.check_read(state, &read, &def.name, "operand");
            }
            match op {
                PrimitiveOp::Set { dst, .. }
                | PrimitiveOp::Hash { dst, .. }
                | PrimitiveOp::RegisterRead { dst, .. } => {
                    self.write_field(state, dst, &def.name);
                }
                PrimitiveOp::AddHeader { header, .. } => {
                    state.guaranteed.insert(header.clone());
                    state.maybe.insert(header.clone());
                }
                PrimitiveOp::RemoveHeader { header }
                | PrimitiveOp::RemoveHeaderNth { header, .. } => {
                    state.guaranteed.remove(header);
                }
                PrimitiveOp::Ipv4ChecksumUpdate { header } => {
                    let dst = FieldRef {
                        header: header.clone(),
                        field: "hdr_checksum".into(),
                    };
                    self.write_field(state, &dst, &def.name);
                }
                // Digest reads were checked above; it writes no packet state.
                PrimitiveOp::RegisterWrite { .. }
                | PrimitiveOp::Digest { .. }
                | PrimitiveOp::Drop
                | PrimitiveOp::NoOp => {}
            }
        }
    }

    fn check_read(&mut self, state: &FlowState, fr: &FieldRef, entity: &str, context: &str) {
        if fr.header.starts_with("reg::") {
            return;
        }
        if fr.is_meta() {
            if fr.field == "*"
                || self.std_meta.contains(fr.field.as_str())
                || !self.meta_declared.contains(&fr.field)
            {
                return; // platform-initialized or undeclared (validate's job)
            }
            if !state.written.contains(&fr.field) {
                self.emit(Diagnostic::new(
                    LintCode::ReadBeforeWrite,
                    entity,
                    format!(
                        "{context} reads metadata `{}` but no reaching path ever writes it",
                        fr.field
                    ),
                ));
            }
            return;
        }
        let header = &fr.header;
        if !self.program.header_types.contains_key(header) {
            return; // undefined header type: validate's job
        }
        if !state.maybe.contains(header) {
            self.emit(
                Diagnostic::new(
                    LintCode::InvalidHeaderAccess,
                    entity,
                    format!(
                        "{context} reads `{}.{}` but header `{header}` is never valid here",
                        header, fr.field
                    ),
                )
                .with_note(
                    "no parser path extracts this header and no earlier action adds it".to_string(),
                ),
            );
        } else if !state.guaranteed.contains(header) {
            self.emit(Diagnostic::new(
                LintCode::MaybeInvalidHeaderAccess,
                entity,
                format!(
                    "{context} reads `{}.{}` but header `{header}` is valid on only \
                     some parser paths",
                    header, fr.field
                ),
            ));
        }
    }

    fn write_field(&mut self, state: &mut FlowState, fr: &FieldRef, entity: &str) {
        if fr.is_meta() {
            if fr.field != "*" {
                state.written.insert(fr.field.clone());
            }
            return;
        }
        if fr.header.starts_with("reg::") {
            return;
        }
        if self.program.header_types.contains_key(&fr.header) && !state.maybe.contains(&fr.header) {
            // Writes to invalid headers are silent no-ops — sometimes
            // deliberate (the firewall sets `sfc.drop_flag` even on raw
            // packets), so this is an advisory, not an error.
            self.emit(Diagnostic::new(
                LintCode::MaybeInvalidHeaderAccess,
                entity,
                format!(
                    "write to `{}.{}` is a silent no-op: header `{}` is never valid here",
                    fr.header, fr.field, fr.header
                ),
            ));
        }
    }
}

fn merge_exits(mut exits: Vec<FlowState>) -> FlowState {
    let first = exits.remove(0);
    exits.into_iter().fold(first, |acc, s| acc.merge(&s))
}

fn transition_targets(t: &Transition) -> Vec<Target> {
    match t {
        Transition::Unconditional(t) => vec![*t],
        Transition::Select { cases, default, .. } => {
            let mut out: Vec<Target> = cases.iter().map(|(_, t)| *t).collect();
            out.push(*default);
            out
        }
    }
}

/// Headers guaranteed valid on every accept path through node `idx`.
/// `None` means no accept path exists below this node.
fn guaranteed_from(
    nodes: &[crate::parser::ParseNode],
    idx: usize,
    memo: &mut BTreeMap<usize, Option<BTreeSet<String>>>,
    on_stack: &mut BTreeSet<usize>,
) -> Option<BTreeSet<String>> {
    if let Some(cached) = memo.get(&idx) {
        return cached.clone();
    }
    if !on_stack.insert(idx) {
        return None; // cyclic parser: validate() rejects it separately
    }
    let mut meet: Option<BTreeSet<String>> = None;
    for target in transition_targets(&nodes[idx].transition) {
        let below = match target {
            Target::Accept => Some(BTreeSet::new()),
            Target::Reject => None,
            Target::Node(j) if j < nodes.len() => guaranteed_from(nodes, j, memo, on_stack),
            Target::Node(_) => None,
        };
        if let Some(set) = below {
            meet = Some(match meet {
                None => set,
                Some(acc) => acc.intersection(&set).cloned().collect(),
            });
        }
    }
    on_stack.remove(&idx);
    let result = meet.map(|mut set| {
        set.insert(nodes[idx].header_type.clone());
        set
    });
    memo.insert(idx, result.clone());
    result
}

/// Field reads of a condition, excluding `Valid(h)` — probing validity is
/// precisely how programs guard maybe-valid headers, not a header read.
fn cond_field_reads(cond: &BoolExpr) -> Vec<FieldRef> {
    match cond {
        BoolExpr::Cmp(a, _, b) => {
            let mut out = a.reads();
            out.extend(b.reads());
            out
        }
        BoolExpr::And(x, y) | BoolExpr::Or(x, y) => {
            let mut out = cond_field_reads(x);
            out.extend(cond_field_reads(y));
            out
        }
        BoolExpr::Not(x) => cond_field_reads(x),
        BoolExpr::Valid(_) => Vec::new(),
    }
}

/// Path-sensitive refinement on validity guards: inside `if valid(h)` the
/// header is guaranteed; inside the else (or under `if !valid(h)`) it is
/// definitely absent.
fn refine_by_validity(cond: &BoolExpr, then_state: &mut FlowState, else_state: &mut FlowState) {
    match cond {
        BoolExpr::Valid(h) => {
            then_state.guaranteed.insert(h.clone());
            then_state.maybe.insert(h.clone());
            else_state.guaranteed.remove(h);
            else_state.maybe.remove(h);
        }
        BoolExpr::Not(inner) => {
            if let BoolExpr::Valid(h) = inner.as_ref() {
                then_state.guaranteed.remove(h);
                then_state.maybe.remove(h);
                else_state.guaranteed.insert(h.clone());
                else_state.maybe.insert(h.clone());
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::table::{TableDef, TableKey};
    use crate::well_known;
    use crate::{fref, Expr, MatchKind};

    /// eth → ipv4 program with one table keyed on a guaranteed header.
    fn base_builder(name: &str) -> ProgramBuilder {
        ProgramBuilder::new(name)
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select_or_reject("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
    }

    fn clean_program() -> Program {
        base_builder("clean")
            .action(
                ActionBuilder::new("mark")
                    .set(fref("ipv4", "dscp"), Expr::val(7, 6))
                    .build(),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("work")
                    .key_exact(fref("ipv4", "dst_addr"))
                    .action("mark")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("work").build())
            .entry("ctrl")
            .build()
            .unwrap()
    }

    #[test]
    fn registry_codes_are_unique_and_stable() {
        let codes: BTreeSet<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), LintCode::ALL.len());
        assert_eq!(LintCode::InvalidHeaderAccess.code(), "DJV001");
        assert_eq!(LintCode::RecircBudget.code(), "DJV102");
    }

    #[test]
    fn clean_program_is_clean() {
        let report = check(&clean_program());
        assert!(
            report.is_clean(),
            "unexpected findings:\n{}",
            report.render_pretty()
        );
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn invalid_header_access_detected() {
        // Parser never reaches tcp, yet a table matches on it.
        let p = base_builder("bad")
            .header(well_known::tcp())
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("l4_acl")
                    .key_exact(fref("tcp", "dst_port"))
                    .action("pass")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("l4_acl").build())
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&p);
        let errors = report.errors();
        assert_eq!(errors.len(), 1, "{}", report.render_pretty());
        assert_eq!(errors[0].code, LintCode::InvalidHeaderAccess);
        assert_eq!(errors[0].entity, "l4_acl");
    }

    #[test]
    fn maybe_invalid_access_is_allow_advisory() {
        // Default-accept select: ipv4 is valid on only the 0x0800 path.
        let p = ProgramBuilder::new("maybe")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("routes")
                    .key_exact(fref("ipv4", "dst_addr"))
                    .action("pass")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("routes").build())
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&p);
        assert!(report.is_clean(), "{}", report.render_pretty());
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::MaybeInvalidHeaderAccess
                    && d.severity == Severity::Allow)
        );
    }

    #[test]
    fn valid_guard_suppresses_maybe_invalid_advisory() {
        let p = ProgramBuilder::new("guarded")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("routes")
                    .key_exact(fref("ipv4", "dst_addr"))
                    .action("pass")
                    .default_action("pass")
                    .build(),
            )
            .control(
                ControlBuilder::new("ctrl")
                    .stmt(Stmt::If {
                        cond: BoolExpr::Valid("ipv4".into()),
                        then_branch: vec![Stmt::Apply("routes".into())],
                        else_branch: vec![],
                    })
                    .build(),
            )
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&p);
        assert!(report.diagnostics.is_empty(), "{}", report.render_pretty());
    }

    #[test]
    fn read_before_write_detected_and_write_first_is_clean() {
        // `probe` reads meta.verdict which nothing writes.
        let bad = base_builder("rbw")
            .meta_field("verdict", 8)
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("probe")
                    .key_exact(FieldRef::meta("verdict"))
                    .action("pass")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("probe").build())
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&bad);
        assert_eq!(report.errors().len(), 1, "{}", report.render_pretty());
        assert_eq!(report.errors()[0].code, LintCode::ReadBeforeWrite);

        // Same read preceded by a conditional write: clean (the write is a
        // *potential* def, which is all the lint demands).
        let good = base_builder("rbw_ok")
            .meta_field("verdict", 8)
            .action(
                ActionBuilder::new("decide")
                    .set(FieldRef::meta("verdict"), Expr::val(1, 8))
                    .build(),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("classify")
                    .key_exact(fref("ipv4", "src_addr"))
                    .action("decide")
                    .default_action("pass")
                    .build(),
            )
            .table(
                TableBuilder::new("probe")
                    .key_exact(FieldRef::meta("verdict"))
                    .action("pass")
                    .default_action("pass")
                    .build(),
            )
            .control(
                ControlBuilder::new("ctrl")
                    .apply("classify")
                    .apply("probe")
                    .build(),
            )
            .entry("ctrl")
            .build()
            .unwrap();
        assert!(check(&good).is_clean(), "{}", check(&good).render_pretty());
    }

    #[test]
    fn dependency_cycle_detected() {
        // swap_a writes dst_addr and reads src_addr; swap_b the reverse.
        let p = base_builder("cycle")
            .action(
                ActionBuilder::new("wa")
                    .set(fref("ipv4", "dst_addr"), Expr::val(1, 32))
                    .build(),
            )
            .action(
                ActionBuilder::new("wb")
                    .set(fref("ipv4", "src_addr"), Expr::val(2, 32))
                    .build(),
            )
            .table(
                TableBuilder::new("swap_a")
                    .key_exact(fref("ipv4", "src_addr"))
                    .action("wa")
                    .default_action("wa")
                    .build(),
            )
            .table(
                TableBuilder::new("swap_b")
                    .key_exact(fref("ipv4", "dst_addr"))
                    .action("wb")
                    .default_action("wb")
                    .build(),
            )
            .control(
                ControlBuilder::new("ctrl")
                    .apply("swap_a")
                    .apply("swap_b")
                    .build(),
            )
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&p);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::DependencyCycle),
            "{}",
            report.render_pretty()
        );
    }

    #[test]
    fn same_field_mutual_use_is_not_a_cycle() {
        // Two tables both incrementing ipv4.ttl: order-sensitive but
        // satisfiable — must not fire DJV004.
        let p = base_builder("ttl")
            .action(
                ActionBuilder::new("dec1")
                    .set(
                        fref("ipv4", "ttl"),
                        Expr::Sub(
                            Box::new(Expr::field("ipv4", "ttl")),
                            Box::new(Expr::val(1, 8)),
                        ),
                    )
                    .build(),
            )
            .action(
                ActionBuilder::new("dec2")
                    .set(
                        fref("ipv4", "ttl"),
                        Expr::Sub(
                            Box::new(Expr::field("ipv4", "ttl")),
                            Box::new(Expr::val(1, 8)),
                        ),
                    )
                    .build(),
            )
            .table(
                TableBuilder::new("hop_a")
                    .key_exact(fref("ipv4", "ttl"))
                    .action("dec1")
                    .default_action("dec1")
                    .build(),
            )
            .table(
                TableBuilder::new("hop_b")
                    .key_exact(fref("ipv4", "ttl"))
                    .action("dec2")
                    .default_action("dec2")
                    .build(),
            )
            .control(
                ControlBuilder::new("ctrl")
                    .apply("hop_a")
                    .apply("hop_b")
                    .build(),
            )
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&p);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::DependencyCycle),
            "{}",
            report.render_pretty()
        );
    }

    #[test]
    fn unreachable_table_and_control_detected() {
        let p = base_builder("orphan")
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("used")
                    .key_exact(fref("ipv4", "dst_addr"))
                    .action("pass")
                    .default_action("pass")
                    .build(),
            )
            .table(
                TableBuilder::new("orphan_table")
                    .key_exact(fref("ipv4", "src_addr"))
                    .action("pass")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("used").build())
            .control(ControlBuilder::new("orphan_ctrl").build())
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&p);
        let codes: Vec<LintCode> = report.warnings().iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&LintCode::UnreachableTable),
            "{}",
            report.render_pretty()
        );
        assert!(
            codes.contains(&LintCode::UnreachableControl),
            "{}",
            report.render_pretty()
        );
        assert!(!report.has_errors());
    }

    #[test]
    fn ambiguous_select_detected() {
        let p = ProgramBuilder::new("amb")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .header(well_known::tcp())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .node("tcp", "tcp", 14)
                    .select(
                        "eth",
                        "ether_type",
                        16,
                        vec![(0x0800, "ip"), (0x0800, "tcp")],
                    )
                    .accept("ip")
                    .accept("tcp")
                    .start("eth"),
            )
            .control(ControlBuilder::new("ctrl").build())
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&p);
        let errors = report.errors();
        assert_eq!(errors.len(), 1, "{}", report.render_pretty());
        assert_eq!(errors[0].code, LintCode::AmbiguousSelect);
        assert_eq!(errors[0].entity, "ethernet@0");
    }

    #[test]
    fn duplicate_match_key_detected() {
        let mut p = clean_program();
        p.tables.insert(
            "dup".into(),
            TableDef {
                name: "dup".into(),
                keys: vec![
                    TableKey {
                        field: fref("ipv4", "dst_addr"),
                        kind: MatchKind::Exact,
                    },
                    TableKey {
                        field: fref("ipv4", "dst_addr"),
                        kind: MatchKind::Ternary,
                    },
                ],
                actions: vec!["pass".into()],
                default_action: "pass".into(),
                default_action_args: vec![],
                size: 16,
            },
        );
        if let Some(ctrl) = p.controls.get_mut("ctrl") {
            ctrl.body.push(Stmt::Apply("dup".into()));
        }
        let report = check(&p);
        assert!(
            report
                .errors()
                .iter()
                .any(|d| d.code == LintCode::DuplicateMatchKey),
            "{}",
            report.render_pretty()
        );
    }

    #[test]
    fn never_valid_write_is_allow_advisory() {
        // The firewall pattern: sets a field of a header its parser never
        // extracts. Legal (silent no-op) — advisory only.
        let p = base_builder("fw")
            .header(crate::HeaderType::new("shim", vec![("flag", 8u16)]).unwrap())
            .action(
                ActionBuilder::new("deny")
                    .set(fref("shim", "flag"), Expr::val(1, 8))
                    .build(),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("acl")
                    .key_exact(fref("ipv4", "src_addr"))
                    .action("deny")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("acl").build())
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&p);
        assert!(report.is_clean(), "{}", report.render_pretty());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::MaybeInvalidHeaderAccess));
    }

    #[test]
    fn config_overrides_and_allows() {
        let bad = base_builder("cfg")
            .meta_field("verdict", 8)
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("probe")
                    .key_exact(FieldRef::meta("verdict"))
                    .action("pass")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("probe").build())
            .entry("ctrl")
            .build()
            .unwrap();
        // Demote to warning globally.
        let cfg = LintConfig::new().set_severity(LintCode::ReadBeforeWrite, Severity::Warning);
        let report = check_with_config(&bad, &cfg);
        assert!(!report.has_errors());
        assert_eq!(report.warnings().len(), 1);
        // Allow for this entity (prefix pattern).
        let cfg = LintConfig::new().allow(LintCode::ReadBeforeWrite, "pro*");
        let report = check_with_config(&bad, &cfg);
        assert!(report.is_clean());
        assert_eq!(report.diagnostics[0].severity, Severity::Allow);
    }

    #[test]
    fn renderers_produce_output() {
        let bad = base_builder("render")
            .header(well_known::tcp())
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("l4")
                    .key_exact(fref("tcp", "dst_port"))
                    .action("pass")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("l4").build())
            .entry("ctrl")
            .build()
            .unwrap();
        let report = check(&bad);
        let pretty = report.render_pretty();
        assert!(pretty.contains("error[DJV001]"), "{pretty}");
        assert!(pretty.contains("1 error(s)"), "{pretty}");
        let json = report.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"code\":\"DJV001\""), "{json}");
    }
}
