//! Table dependency analysis.
//!
//! The Dejavu paper (footnote 2, citing Jose et al., NSDI'15 *Compiling
//! Packet Programs to Reconfigurable Switches*) notes that NFs sharing data
//! fields incur *match*, *action*, or *successor* dependencies, which force
//! the compiler to place tables in separate MAU stages. This module builds
//! that dependency graph for a [`Program`]:
//!
//! * **Match dependency** — a later table's match key reads a field written
//!   by an earlier table's actions. The later table cannot start matching
//!   until the earlier action completes: strictly later stage.
//! * **Action dependency** — a later table's actions read or re-write a field
//!   written by an earlier table's actions: strictly later stage (action
//!   units within one stage execute concurrently).
//! * **Successor dependency** — a later table executes under a control-flow
//!   branch decided by an earlier table or gateway. Order must be preserved
//!   but both can share a stage via predication.
//! * **None** — independent tables, freely placed (this is what lets NF
//!   tables "comfortably share the same stages with Dejavu" in §5).
//!
//! The longest chain of match/action edges gives the minimum number of MAU
//! stages a program needs — the quantity `dejavu-compiler` allocates against
//! and Table 1 of the paper reports.

use crate::header::FieldRef;
use crate::program::Program;
use std::collections::{BTreeMap, BTreeSet};

/// The kind of dependency from an earlier table to a later one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DependencyKind {
    /// Later table matches on a field the earlier table writes.
    Match,
    /// Later table's actions touch a field the earlier table writes.
    Action,
    /// Later table is control-flow dependent on the earlier table.
    Successor,
}

impl DependencyKind {
    /// Minimum stage gap this dependency forces between the two tables
    /// (1 = strictly later stage, 0 = may share a stage with predication).
    pub fn min_stage_gap(self) -> u32 {
        match self {
            DependencyKind::Match | DependencyKind::Action => 1,
            DependencyKind::Successor => 0,
        }
    }
}

/// One edge of the dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyEdge {
    /// Earlier table (apply order).
    pub from: String,
    /// Later table.
    pub to: String,
    /// Dependency kind.
    pub kind: DependencyKind,
}

/// Dependency graph over the tables of one program, in apply order.
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    /// Tables in program apply order (deduplicated, first occurrence).
    pub order: Vec<String>,
    /// Dependency edges (only between distinct tables, from earlier to
    /// later).
    pub edges: Vec<DependencyEdge>,
}

/// Do two field references overlap? A `"*"` field is a whole-header
/// wildcard (used by header add/remove and validity checks).
pub(crate) fn overlaps(a: &FieldRef, b: &FieldRef) -> bool {
    a.header == b.header && (a.field == b.field || a.field == "*" || b.field == "*")
}

fn any_overlap(xs: &BTreeSet<FieldRef>, ys: &BTreeSet<FieldRef>) -> bool {
    xs.iter().any(|x| ys.iter().any(|y| overlaps(x, y)))
}

impl DependencyGraph {
    /// Builds the graph for a program's entry control.
    pub fn build(program: &Program) -> DependencyGraph {
        let applied = program.tables_in_order();
        let mut order: Vec<String> = Vec::new();
        for t in &applied {
            if !order.contains(t) {
                order.push(t.clone());
            }
        }

        // Per-table read/write footprints.
        let mut match_reads: BTreeMap<&str, BTreeSet<FieldRef>> = BTreeMap::new();
        let mut action_reads: BTreeMap<&str, BTreeSet<FieldRef>> = BTreeMap::new();
        let mut writes: BTreeMap<&str, BTreeSet<FieldRef>> = BTreeMap::new();
        for name in &order {
            let Some(t) = program.tables.get(name) else {
                continue;
            };
            match_reads.insert(name, t.match_reads().into_iter().collect());
            let mut ar = BTreeSet::new();
            let mut w = BTreeSet::new();
            for a in &t.actions {
                if let Some(act) = program.actions.get(a) {
                    ar.extend(act.reads());
                    w.extend(act.writes());
                }
            }
            action_reads.insert(name, ar);
            writes.insert(name, w);
        }

        // Control-flow (successor) pairs: B nested under A's branch.
        let successor_pairs = control_flow_pairs(program);
        // Mutually exclusive pairs: tables in *sibling* branches of the same
        // ApplySelect / If never both execute on one packet, so they carry
        // no data dependency and may share stages — the stage-sharing
        // behind the paper's parallel composition ("Parallel composition
        // allows multiple NFs to share the same MAUs").
        let exclusive_pairs = mutually_exclusive_pairs(program);

        let empty = BTreeSet::new();
        let mut edges = Vec::new();
        for (i, a) in order.iter().enumerate() {
            let wa = writes.get(a.as_str()).unwrap_or(&empty);
            for b in order.iter().skip(i + 1) {
                if exclusive_pairs.contains(&(a.clone(), b.clone()))
                    || exclusive_pairs.contains(&(b.clone(), a.clone()))
                {
                    continue;
                }
                let mrb = match_reads.get(b.as_str()).unwrap_or(&empty);
                let arb = action_reads.get(b.as_str()).unwrap_or(&empty);
                let wb = writes.get(b.as_str()).unwrap_or(&empty);
                let kind = if any_overlap(wa, mrb) {
                    Some(DependencyKind::Match)
                } else if any_overlap(wa, arb) || any_overlap(wa, wb) {
                    Some(DependencyKind::Action)
                } else if successor_pairs.contains(&(a.clone(), b.clone())) {
                    Some(DependencyKind::Successor)
                } else {
                    None
                };
                if let Some(kind) = kind {
                    edges.push(DependencyEdge {
                        from: a.clone(),
                        to: b.clone(),
                        kind,
                    });
                }
            }
        }
        DependencyGraph { order, edges }
    }

    /// Minimum number of MAU stages needed: 1 + the longest path measured in
    /// stage gaps over the dependency DAG. Independent tables need 1 stage.
    pub fn min_stages(&self) -> u32 {
        if self.order.is_empty() {
            return 0;
        }
        // Longest-path DP over tables in apply order (edges always go
        // forward in that order, so a single pass suffices).
        let mut level: BTreeMap<&str, u32> = self.order.iter().map(|t| (t.as_str(), 0)).collect();
        for e in &self.edges {
            let from_level = *level.get(e.from.as_str()).unwrap_or(&0);
            let need = from_level + e.kind.min_stage_gap();
            let entry = level.entry(e.to.as_str()).or_insert(0);
            if *entry < need {
                *entry = need;
            }
        }
        level.values().copied().max().unwrap_or(0) + 1
    }

    /// The stage level (0-based) of each table under the ASAP schedule used
    /// by [`Self::min_stages`].
    pub fn stage_levels(&self) -> BTreeMap<String, u32> {
        let mut level: BTreeMap<String, u32> = self.order.iter().map(|t| (t.clone(), 0)).collect();
        for e in &self.edges {
            let from_level = *level.get(&e.from).unwrap_or(&0);
            let need = from_level + e.kind.min_stage_gap();
            let entry = level.entry(e.to.clone()).or_insert(0);
            if *entry < need {
                *entry = need;
            }
        }
        level
    }

    /// Edge lookup.
    pub fn edge(&self, from: &str, to: &str) -> Option<DependencyKind> {
        self.edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .map(|e| e.kind)
    }
}

/// Pairs of tables applied in *sibling* branches of the same `ApplySelect`
/// or `If` — at most one of the pair executes per packet.
pub(crate) fn mutually_exclusive_pairs(program: &Program) -> BTreeSet<(String, String)> {
    use crate::control::Stmt;
    let mut pairs = BTreeSet::new();

    /// Tables applied anywhere under a statement list (following Calls).
    fn tables_under(program: &Program, stmts: &[Stmt], out: &mut Vec<String>, depth: usize) {
        if depth > 64 {
            return;
        }
        for stmt in stmts {
            match stmt {
                Stmt::Apply(t) => out.push(t.clone()),
                Stmt::ApplySelect {
                    table,
                    arms,
                    default,
                } => {
                    out.push(table.clone());
                    for (_, b) in arms {
                        tables_under(program, b, out, depth);
                    }
                    tables_under(program, default, out, depth);
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    tables_under(program, then_branch, out, depth);
                    tables_under(program, else_branch, out, depth);
                }
                Stmt::Do(_) => {}
                Stmt::Call(c) => {
                    if let Some(cb) = program.controls.get(c) {
                        tables_under(program, &cb.body, out, depth + 1);
                    }
                }
            }
        }
    }

    fn walk(
        program: &Program,
        stmts: &[Stmt],
        pairs: &mut BTreeSet<(String, String)>,
        depth: usize,
    ) {
        if depth > 64 {
            return;
        }
        for stmt in stmts {
            let branches: Vec<&Vec<Stmt>> = match stmt {
                Stmt::ApplySelect { arms, default, .. } => {
                    let mut v: Vec<&Vec<Stmt>> = arms.iter().map(|(_, b)| b).collect();
                    v.push(default);
                    v
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => vec![then_branch, else_branch],
                Stmt::Call(c) => {
                    if let Some(cb) = program.controls.get(c) {
                        walk(program, &cb.body, pairs, depth + 1);
                    }
                    continue;
                }
                _ => continue,
            };
            // Cross-branch pairs are exclusive.
            let branch_tables: Vec<Vec<String>> = branches
                .iter()
                .map(|b| {
                    let mut out = Vec::new();
                    tables_under(program, b, &mut out, depth);
                    out
                })
                .collect();
            for (i, ts_a) in branch_tables.iter().enumerate() {
                for ts_b in branch_tables.iter().skip(i + 1) {
                    for a in ts_a {
                        for b in ts_b {
                            pairs.insert((a.clone(), b.clone()));
                        }
                    }
                }
            }
            // Recurse into each branch for nested exclusivity.
            for b in branches {
                walk(program, b, pairs, depth);
            }
        }
    }
    if let Some(entry) = program.entry_control() {
        walk(program, &entry.body, &mut pairs, 0);
    }
    pairs
}

/// Pairs `(a, b)` such that table `b` is applied inside a control-flow
/// branch opened by table `a`'s `ApplySelect` (or inside an `If` directly
/// following it — the gateway reads `a`'s outcome implicitly).
fn control_flow_pairs(program: &Program) -> BTreeSet<(String, String)> {
    use crate::control::Stmt;
    let mut pairs = BTreeSet::new();
    // Walk every control; context = stack of tables whose branches enclose us.
    fn walk(
        program: &Program,
        stmts: &[Stmt],
        enclosing: &mut Vec<String>,
        pairs: &mut BTreeSet<(String, String)>,
        depth: usize,
    ) {
        if depth > 64 {
            return;
        }
        for stmt in stmts {
            match stmt {
                Stmt::Apply(t) => {
                    for a in enclosing.iter() {
                        pairs.insert((a.clone(), t.clone()));
                    }
                }
                Stmt::ApplySelect {
                    table,
                    arms,
                    default,
                } => {
                    for a in enclosing.iter() {
                        pairs.insert((a.clone(), table.clone()));
                    }
                    enclosing.push(table.clone());
                    for (_, b) in arms {
                        walk(program, b, enclosing, pairs, depth);
                    }
                    walk(program, default, enclosing, pairs, depth);
                    enclosing.pop();
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(program, then_branch, enclosing, pairs, depth);
                    walk(program, else_branch, enclosing, pairs, depth);
                }
                Stmt::Do(_) => {}
                Stmt::Call(c) => {
                    if let Some(cb) = program.controls.get(c) {
                        walk(program, &cb.body, enclosing, pairs, depth + 1);
                    }
                }
            }
        }
    }
    if let Some(entry) = program.entry_control() {
        let mut enclosing = Vec::new();
        walk(program, &entry.body, &mut enclosing, &mut pairs, 0);
    }
    pairs
}

/// How a program touches one register array (via the `reg::<name>` pseudo-
/// header namespace actions use for stateful access).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegisterAccess {
    /// Some action reads the array.
    pub reads: bool,
    /// Some action writes the array.
    pub writes: bool,
}

/// Summarizes every register access in a program's action catalog, keyed by
/// register name. The chain-level hazard analysis (`DJV301`) compares these
/// summaries across merged pipelet programs.
pub fn register_accesses(program: &Program) -> BTreeMap<String, RegisterAccess> {
    use crate::action::PrimitiveOp;
    let mut out: BTreeMap<String, RegisterAccess> = BTreeMap::new();
    for action in program.actions.values() {
        for op in &action.ops {
            match op {
                PrimitiveOp::RegisterRead { register, .. } => {
                    out.entry(register.clone()).or_default().reads = true;
                }
                PrimitiveOp::RegisterWrite { register, .. } => {
                    out.entry(register.clone()).or_default().writes = true;
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, Expr, PrimitiveOp};
    use crate::control::{ControlBlock, Stmt};
    use crate::header::{fref, FieldRef, HeaderType};
    use crate::parser::{ParseNode, Target, Transition};
    use crate::table::{MatchKind, TableDef, TableKey};

    /// Program with three tables:
    ///   t1 writes ipv4.dst_addr
    ///   t2 matches on ipv4.dst_addr          (match dep on t1)
    ///   t3 writes meta.egress_spec, reads nothing of t1/t2
    fn program() -> Program {
        let mut p = Program::new("deps");
        p.header_types.insert(
            "ipv4".into(),
            HeaderType::new(
                "ipv4",
                vec![
                    ("src_addr", 32u16),
                    ("dst_addr", 32),
                    ("ttl", 8),
                    ("pad", 24),
                ],
            )
            .unwrap(),
        );
        let n = p.parser.add_node(ParseNode {
            header_type: "ipv4".into(),
            offset: 0,
            transition: Transition::Unconditional(Target::Accept),
        });
        p.parser.start = Some(Target::Node(n));

        p.actions.insert(
            "set_dst".into(),
            ActionDef {
                name: "set_dst".into(),
                params: vec![("d".into(), 32)],
                ops: vec![PrimitiveOp::Set {
                    dst: fref("ipv4", "dst_addr"),
                    value: Expr::Param("d".into()),
                }],
            },
        );
        p.actions.insert(
            "set_port".into(),
            ActionDef {
                name: "set_port".into(),
                params: vec![("pt".into(), 16)],
                ops: vec![PrimitiveOp::Set {
                    dst: FieldRef::meta("egress_spec"),
                    value: Expr::Param("pt".into()),
                }],
            },
        );
        p.actions.insert(
            "nop".into(),
            ActionDef::simple("nop", vec![PrimitiveOp::NoOp]),
        );

        let mk = |name: &str, key: FieldRef, actions: Vec<&str>| TableDef {
            name: name.into(),
            keys: vec![TableKey {
                field: key,
                kind: MatchKind::Exact,
            }],
            actions: actions.iter().map(|s| s.to_string()).collect(),
            default_action: "nop".into(),
            default_action_args: vec![],
            size: 16,
        };
        p.tables.insert(
            "t1".into(),
            mk("t1", fref("ipv4", "src_addr"), vec!["set_dst", "nop"]),
        );
        p.tables.insert(
            "t2".into(),
            mk("t2", fref("ipv4", "dst_addr"), vec!["set_port", "nop"]),
        );
        p.tables.insert(
            "t3".into(),
            mk("t3", fref("ipv4", "ttl"), vec!["set_port", "nop"]),
        );
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new(
                "ingress",
                vec![
                    Stmt::Apply("t1".into()),
                    Stmt::Apply("t2".into()),
                    Stmt::Apply("t3".into()),
                ],
            ),
        );
        p.entry = "ingress".into();
        p
    }

    #[test]
    fn match_dependency_detected() {
        let g = DependencyGraph::build(&program());
        assert_eq!(g.edge("t1", "t2"), Some(DependencyKind::Match));
    }

    #[test]
    fn action_dependency_detected() {
        // t2 and t3 both write meta.egress_spec → action dependency.
        let g = DependencyGraph::build(&program());
        assert_eq!(g.edge("t2", "t3"), Some(DependencyKind::Action));
    }

    #[test]
    fn independent_tables_have_no_edge() {
        let g = DependencyGraph::build(&program());
        assert_eq!(g.edge("t1", "t3"), None);
    }

    #[test]
    fn min_stages_follows_critical_path() {
        // t1 -(match,+1)-> t2 -(action,+1)-> t3  ⇒ 3 stages.
        let g = DependencyGraph::build(&program());
        assert_eq!(g.min_stages(), 3);
        let lv = g.stage_levels();
        assert_eq!(lv["t1"], 0);
        assert_eq!(lv["t2"], 1);
        assert_eq!(lv["t3"], 2);
    }

    #[test]
    fn successor_dependency_from_apply_select() {
        let mut p = program();
        // Make t3 independent of t2 (different action) but nested under t1's arm.
        p.tables.get_mut("t3").unwrap().actions = vec!["nop".into()];
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new(
                "ingress",
                vec![Stmt::ApplySelect {
                    table: "t1".into(),
                    arms: vec![("set_dst".into(), vec![Stmt::Apply("t3".into())])],
                    default: vec![],
                }],
            ),
        );
        let g = DependencyGraph::build(&p);
        assert_eq!(g.edge("t1", "t3"), Some(DependencyKind::Successor));
        // Successor allows sharing a stage: both at level 0 → 1 stage.
        assert_eq!(g.min_stages(), 1);
    }

    #[test]
    fn sibling_branches_are_mutually_exclusive() {
        // t2 and t3 both write meta.egress_spec (action dependency when
        // sequential), but placed in sibling arms of t1's ApplySelect they
        // are mutually exclusive → no edge, shared stage allowed.
        let mut p = program();
        p.controls.insert(
            "ingress".into(),
            ControlBlock::new(
                "ingress",
                vec![Stmt::ApplySelect {
                    table: "t1".into(),
                    arms: vec![("set_dst".into(), vec![Stmt::Apply("t2".into())])],
                    default: vec![Stmt::Apply("t3".into())],
                }],
            ),
        );
        let g = DependencyGraph::build(&p);
        assert_eq!(
            g.edge("t2", "t3"),
            None,
            "exclusive siblings must not depend"
        );
        // t1 → t2 is still a match dependency (t1 writes what t2 matches).
        assert_eq!(g.edge("t1", "t2"), Some(DependencyKind::Match));
    }

    #[test]
    fn empty_program_zero_stages() {
        let p = Program::new("empty");
        let g = DependencyGraph::build(&p);
        assert_eq!(g.min_stages(), 0);
    }

    #[test]
    fn wildcard_overlap() {
        use super::overlaps;
        assert!(overlaps(&fref("sfc", "*"), &fref("sfc", "path_id")));
        assert!(overlaps(&fref("sfc", "path_id"), &fref("sfc", "*")));
        assert!(!overlaps(&fref("sfc", "*"), &fref("ipv4", "ttl")));
    }
}
