//! Error type shared by IR construction and validation.

use std::fmt;

/// Result alias used throughout the IR crate.
pub type Result<T> = std::result::Result<T, IrError>;

/// Errors raised while building or validating IR entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A named entity (header type, table, action, control …) was referenced
    /// but never defined.
    Undefined {
        /// Entity kind, e.g. `"header type"`.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// A named entity was defined twice in the same scope.
    Duplicate {
        /// Entity kind, e.g. `"table"`.
        kind: &'static str,
        /// The clashing name.
        name: String,
    },
    /// A field width is zero or exceeds the 128-bit value limit.
    BadFieldWidth {
        /// Header type owning the field.
        header: String,
        /// Offending field.
        field: String,
        /// The rejected width.
        bits: u16,
    },
    /// A value does not fit in the declared field width.
    ValueOverflow {
        /// Textual location of the overflow.
        context: String,
        /// The value that did not fit.
        value: u128,
        /// The field width in bits.
        bits: u16,
    },
    /// Structural validation failed (cycles, unreachable accept, …).
    Invalid(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Undefined { kind, name } => write!(f, "undefined {kind}: {name}"),
            IrError::Duplicate { kind, name } => write!(f, "duplicate {kind}: {name}"),
            IrError::BadFieldWidth {
                header,
                field,
                bits,
            } => {
                write!(
                    f,
                    "bad width {bits} for field {header}.{field} (must be 1..=128)"
                )
            }
            IrError::ValueOverflow {
                context,
                value,
                bits,
            } => {
                write!(
                    f,
                    "value {value:#x} does not fit in {bits} bits ({context})"
                )
            }
            IrError::Invalid(msg) => write!(f, "invalid IR: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}
