//! Control blocks: the imperative skeleton applying tables and actions.
//!
//! This mirrors the P4-16 `control` construct the paper builds its
//! programming interface on (§3.1): an NF is a control block with the single
//! signature `control XX_control(inout all_headers_t hdr)`. Statements apply
//! tables, branch on which action a table ran (the paper's
//! `if (check_nextNF.apply().LB)` idiom), branch on field predicates
//! (gateways), invoke named actions directly, or call other control blocks
//! (the modularity hook used by Dejavu's sequential/parallel composition).

use crate::action::Expr;
use crate::error::{IrError, Result};
use crate::header::FieldRef;

/// Comparison operators for gateway conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (unsigned).
    Lt,
    /// Less than or equal (unsigned).
    Le,
    /// Greater than (unsigned).
    Gt,
    /// Greater than or equal (unsigned).
    Ge,
}

/// A boolean predicate evaluated by a gateway.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    /// Comparison of two expressions.
    Cmp(Expr, CmpOp, Expr),
    /// Logical AND.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Logical OR.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Logical negation.
    Not(Box<BoolExpr>),
    /// True when the named header was parsed (or added) and not removed —
    /// P4's `hdr.x.isValid()`.
    Valid(String),
}

impl BoolExpr {
    /// Convenience: `field == const`.
    pub fn field_eq(header: &str, field: &str, raw: u128, bits: u16) -> BoolExpr {
        BoolExpr::Cmp(Expr::field(header, field), CmpOp::Eq, Expr::val(raw, bits))
    }

    /// Convenience: `meta.field == const`.
    pub fn meta_eq(field: &str, raw: u128, bits: u16) -> BoolExpr {
        BoolExpr::Cmp(Expr::meta(field), CmpOp::Eq, Expr::val(raw, bits))
    }

    /// All field references read by the predicate.
    pub fn reads(&self) -> Vec<FieldRef> {
        match self {
            BoolExpr::Cmp(a, _, b) => {
                let mut r = a.reads();
                r.extend(b.reads());
                r
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                let mut r = a.reads();
                r.extend(b.reads());
                r
            }
            BoolExpr::Not(a) => a.reads(),
            BoolExpr::Valid(h) => vec![FieldRef::new(h.clone(), "*")],
        }
    }
}

/// One statement of a control block body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Apply a table; run whichever action its entry (or default) selects.
    Apply(String),
    /// Apply a table, then branch on *which action ran* — the P4
    /// `switch (t.apply().action_run)` construct.
    ApplySelect {
        /// Table to apply.
        table: String,
        /// `(action name, branch)` arms.
        arms: Vec<(String, Vec<Stmt>)>,
        /// Branch when the action run has no arm.
        default: Vec<Stmt>,
    },
    /// Gateway branch.
    If {
        /// Predicate.
        cond: BoolExpr,
        /// Taken when true.
        then_branch: Vec<Stmt>,
        /// Taken when false.
        else_branch: Vec<Stmt>,
    },
    /// Invoke a named action directly (no table lookup), with constant args.
    Do(String),
    /// Invoke another control block (composition / modularity).
    Call(String),
}

impl Stmt {
    /// Names of tables applied anywhere under this statement, in program
    /// order (depth-first, then-before-else).
    pub fn tables_applied(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Apply(t) => out.push(t.clone()),
            Stmt::ApplySelect {
                table,
                arms,
                default,
            } => {
                out.push(table.clone());
                for (_, branch) in arms {
                    for s in branch {
                        s.collect_tables(out);
                    }
                }
                for s in default {
                    s.collect_tables(out);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch {
                    s.collect_tables(out);
                }
                for s in else_branch {
                    s.collect_tables(out);
                }
            }
            Stmt::Do(_) | Stmt::Call(_) => {}
        }
    }

    /// Names of control blocks called anywhere under this statement.
    pub fn controls_called(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_calls(&mut out);
        out
    }

    fn collect_calls(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Call(c) => out.push(c.clone()),
            Stmt::ApplySelect { arms, default, .. } => {
                for (_, branch) in arms {
                    for s in branch {
                        s.collect_calls(out);
                    }
                }
                for s in default {
                    s.collect_calls(out);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch {
                    s.collect_calls(out);
                }
                for s in else_branch {
                    s.collect_calls(out);
                }
            }
            Stmt::Apply(_) | Stmt::Do(_) => {}
        }
    }

    /// Number of gateway predicates under this statement (each `If` and each
    /// `ApplySelect` arm dispatch consumes one gateway in the resource
    /// model).
    pub fn gateway_count(&self) -> u32 {
        match self {
            Stmt::Apply(_) | Stmt::Do(_) | Stmt::Call(_) => 0,
            Stmt::ApplySelect { arms, default, .. } => {
                let inner: u32 = arms
                    .iter()
                    .flat_map(|(_, b)| b.iter())
                    .chain(default.iter())
                    .map(Stmt::gateway_count)
                    .sum();
                1 + inner
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let inner: u32 = then_branch
                    .iter()
                    .chain(else_branch.iter())
                    .map(Stmt::gateway_count)
                    .sum();
                1 + inner
            }
        }
    }
}

/// A named control block.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlBlock {
    /// Control name (the `XX_control` of the paper's API).
    pub name: String,
    /// Body statements, executed in order.
    pub body: Vec<Stmt>,
}

impl ControlBlock {
    /// Creates a control block.
    pub fn new(name: impl Into<String>, body: Vec<Stmt>) -> Self {
        ControlBlock {
            name: name.into(),
            body,
        }
    }

    /// Tables applied anywhere in the body, in program order.
    pub fn tables_applied(&self) -> Vec<String> {
        self.body.iter().flat_map(Stmt::tables_applied).collect()
    }

    /// Controls called anywhere in the body.
    pub fn controls_called(&self) -> Vec<String> {
        self.body.iter().flat_map(Stmt::controls_called).collect()
    }

    /// Total gateway predicates in the body.
    pub fn gateway_count(&self) -> u32 {
        self.body.iter().map(Stmt::gateway_count).sum()
    }

    /// Validates that callees exist and there is no recursive call chain.
    pub fn validate_calls(
        &self,
        lookup: &dyn Fn(&str) -> Option<ControlBlock>,
        depth: usize,
    ) -> Result<()> {
        if depth > 64 {
            return Err(IrError::Invalid(format!(
                "control call chain too deep (cycle?) at {}",
                self.name
            )));
        }
        for callee in self.controls_called() {
            let cb = lookup(&callee).ok_or(IrError::Undefined {
                kind: "control block",
                name: callee.clone(),
            })?;
            cb.validate_calls(lookup, depth + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested() -> ControlBlock {
        ControlBlock::new(
            "ingress",
            vec![
                Stmt::Apply("classify".into()),
                Stmt::If {
                    cond: BoolExpr::meta_eq("next_nf", 2, 8),
                    then_branch: vec![
                        Stmt::ApplySelect {
                            table: "lb_session".into(),
                            arms: vec![("to_cpu".into(), vec![Stmt::Apply("punt".into())])],
                            default: vec![],
                        },
                        Stmt::Call("FW_control".into()),
                    ],
                    else_branch: vec![Stmt::Apply("route".into())],
                },
                Stmt::Do("decrement_ttl".into()),
            ],
        )
    }

    #[test]
    fn tables_in_program_order() {
        assert_eq!(
            nested().tables_applied(),
            vec!["classify", "lb_session", "punt", "route"]
        );
    }

    #[test]
    fn controls_called() {
        assert_eq!(nested().controls_called(), vec!["FW_control"]);
    }

    #[test]
    fn gateway_counting() {
        // one If + one ApplySelect = 2 gateways
        assert_eq!(nested().gateway_count(), 2);
    }

    #[test]
    fn call_validation_detects_missing() {
        let cb = nested();
        let err = cb.validate_calls(&|_| None, 0).unwrap_err();
        assert!(matches!(err, IrError::Undefined { .. }));
    }

    #[test]
    fn call_validation_detects_cycle() {
        let a = ControlBlock::new("a", vec![Stmt::Call("b".into())]);
        let lookup = |name: &str| -> Option<ControlBlock> {
            match name {
                "a" => Some(ControlBlock::new("a", vec![Stmt::Call("b".into())])),
                "b" => Some(ControlBlock::new("b", vec![Stmt::Call("a".into())])),
                _ => None,
            }
        };
        assert!(a.validate_calls(&lookup, 0).is_err());
    }

    #[test]
    fn bool_expr_reads() {
        let e = BoolExpr::And(
            Box::new(BoolExpr::field_eq("ipv4", "protocol", 6, 8)),
            Box::new(BoolExpr::Valid("sfc".into())),
        );
        let reads = e.reads();
        assert_eq!(reads.len(), 2);
    }
}
