//! Actions: named sequences of primitive operations.
//!
//! Actions correspond to P4 `action` blocks. Each action has named runtime
//! parameters (bound per table entry, e.g. the server IP in the paper's
//! Fig. 4 `modify_dstIp(bit<32> dip)`) and a body of [`PrimitiveOp`]s over an
//! expression language [`Expr`].
//!
//! The operation set mirrors what a Tofino VLIW action unit plus the hash and
//! header add/remove externs can do — enough to express all five NFs in the
//! paper plus the Dejavu framework logic (SFC header insertion/removal, flag
//! checks, branching-table forwarding).

use crate::header::FieldRef;
use crate::value::Value;

/// Hash functions available to actions (P4 `Hash` extern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlgorithm {
    /// CRC-32 (the paper's Fig. 4 load balancer uses CRC32 over the 5-tuple).
    Crc32,
    /// CRC-16.
    Crc16,
    /// Fold all inputs together with XOR (cheap test hash).
    XorFold,
    /// Identity of the first input (useful in tests).
    Identity,
}

/// A pure expression evaluated against packet headers, metadata, and the
/// action's runtime parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// The current value of a header or metadata field.
    Field(FieldRef),
    /// The action parameter with the given name.
    Param(String),
    /// Wrapping addition.
    Add(Box<Expr>, Box<Expr>),
    /// Wrapping subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Bitwise AND.
    And(Box<Expr>, Box<Expr>),
    /// Bitwise OR.
    Or(Box<Expr>, Box<Expr>),
    /// Bitwise XOR.
    Xor(Box<Expr>, Box<Expr>),
    /// Logical shift left by a constant.
    Shl(Box<Expr>, u32),
    /// Logical shift right by a constant.
    Shr(Box<Expr>, u32),
}

impl Expr {
    /// Literal helper.
    pub fn val(raw: u128, bits: u16) -> Expr {
        Expr::Const(Value::new(raw, bits))
    }

    /// Field read helper.
    pub fn field(header: &str, field: &str) -> Expr {
        Expr::Field(FieldRef::new(header, field))
    }

    /// Metadata read helper.
    pub fn meta(field: &str) -> Expr {
        Expr::Field(FieldRef::meta(field))
    }

    /// All field references read by this expression (for dependency
    /// analysis).
    pub fn reads(&self) -> Vec<FieldRef> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<FieldRef>) {
        match self {
            Expr::Const(_) | Expr::Param(_) => {}
            Expr::Field(fr) => out.push(fr.clone()),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Xor(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Shl(a, _) | Expr::Shr(a, _) => a.collect_reads(out),
        }
    }
}

/// One primitive operation in an action body.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimitiveOp {
    /// `dst = expr` — assign to a header or metadata field.
    Set {
        /// Destination field.
        dst: FieldRef,
        /// Value expression.
        value: Expr,
    },
    /// `dst = hash(algo, inputs) mod 2^width-of-dst`.
    Hash {
        /// Destination field receiving the hash.
        dst: FieldRef,
        /// Hash function.
        algo: HashAlgorithm,
        /// Input field expressions, hashed in order.
        inputs: Vec<Expr>,
    },
    /// Insert a header of the given type into the packet immediately before
    /// the named anchor header (Dejavu inserts the SFC header *"between
    /// Ethernet and IP"*: `AddHeader { header: "sfc", before: "ipv4" }` —
    /// i.e. after everything preceding `ipv4`). Field values must be `Set`
    /// afterwards; the header is zero-initialized.
    AddHeader {
        /// Header type to insert.
        header: String,
        /// Existing header before which the new header is placed; `None`
        /// appends after all currently parsed headers.
        before: Option<String>,
    },
    /// Remove a header of the given type from the packet (first instance).
    RemoveHeader {
        /// Header type to remove.
        header: String,
    },
    /// Remove the `occurrence`-th instance (0-based) of a header type —
    /// needed by tunnel gateways whose packets carry two instances of the
    /// same type (outer/inner).
    RemoveHeaderNth {
        /// Header type to remove.
        header: String,
        /// Which instance, counting from the outermost.
        occurrence: usize,
    },
    /// `dst = register[index]` — read a stateful register cell (P4
    /// `Register.read`). Registers persist across packets within a pipelet.
    RegisterRead {
        /// Destination field receiving the cell value.
        dst: FieldRef,
        /// Register array name.
        register: String,
        /// Cell index expression (wrapped modulo the array size).
        index: Expr,
    },
    /// `register[index] = value` (P4 `Register.write`).
    RegisterWrite {
        /// Register array name.
        register: String,
        /// Cell index expression.
        index: Expr,
        /// Value expression.
        value: Expr,
    },
    /// Recompute an IPv4-style ones-complement header checksum over the
    /// named header instance and store it in the header's `hdr_checksum`
    /// field (the checksum extern real routers invoke after rewriting TTL).
    Ipv4ChecksumUpdate {
        /// Header instance to checksum (must have a `hdr_checksum` field).
        header: String,
    },
    /// Emit a digest message to the control plane (Tofino `Digest` extern):
    /// the named stream receives the evaluated field values. Unlike a
    /// to-CPU punt the packet itself keeps flowing through the pipeline —
    /// only a compact record leaves for the CPU, which is what makes
    /// learn-on-first-packet NFs (dynamic NAT, conntrack) line-rate.
    Digest {
        /// Digest stream name (scoped like tables under merge).
        name: String,
        /// Value expressions carried by the digest, evaluated in order.
        fields: Vec<Expr>,
    },
    /// Mark the packet to be dropped at the end of the pipelet.
    Drop,
    /// No operation (P4 `NoAction`).
    NoOp,
}

/// Pseudo-header namespace used to express register access in the
/// dependency analysis: reading/writing register `r` reads/writes the
/// pseudo-field `reg::r.*`.
pub fn register_field(register: &str) -> FieldRef {
    FieldRef::new(format!("reg::{register}"), "*")
}

impl PrimitiveOp {
    /// Field references read by this op.
    pub fn reads(&self) -> Vec<FieldRef> {
        match self {
            PrimitiveOp::Set { value, .. } => value.reads(),
            PrimitiveOp::Hash { inputs, .. } => inputs.iter().flat_map(Expr::reads).collect(),
            PrimitiveOp::RegisterRead {
                register, index, ..
            } => {
                let mut r = index.reads();
                r.push(register_field(register));
                r
            }
            PrimitiveOp::RegisterWrite { index, value, .. } => {
                let mut r = index.reads();
                r.extend(value.reads());
                r
            }
            PrimitiveOp::Ipv4ChecksumUpdate { header } => {
                vec![FieldRef::new(header.clone(), "*")]
            }
            PrimitiveOp::Digest { fields, .. } => fields.iter().flat_map(Expr::reads).collect(),
            _ => Vec::new(),
        }
    }

    /// Field references written by this op (header add/remove is modelled as
    /// a write to every field of that header for dependency purposes).
    pub fn writes(&self) -> Vec<FieldRef> {
        match self {
            PrimitiveOp::Set { dst, .. } | PrimitiveOp::Hash { dst, .. } => vec![dst.clone()],
            PrimitiveOp::AddHeader { header, .. }
            | PrimitiveOp::RemoveHeader { header }
            | PrimitiveOp::RemoveHeaderNth { header, .. } => {
                vec![FieldRef::new(header.clone(), "*")]
            }
            PrimitiveOp::RegisterRead { dst, register, .. } => {
                // Reading a stateful register also serializes against other
                // accessors of the same array (read-modify-write atomicity
                // of the stateful ALU), so we model the read as a write to
                // the pseudo-field too.
                vec![dst.clone(), register_field(register)]
            }
            PrimitiveOp::RegisterWrite { register, .. } => vec![register_field(register)],
            PrimitiveOp::Ipv4ChecksumUpdate { header } => {
                vec![FieldRef::new(header.clone(), "hdr_checksum")]
            }
            PrimitiveOp::Drop => vec![FieldRef::meta("drop_flag")],
            // A digest only leaves the pipeline; it writes no packet state.
            PrimitiveOp::Digest { .. } | PrimitiveOp::NoOp => Vec::new(),
        }
    }
}

/// A named action definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionDef {
    /// Action name, unique within its program.
    pub name: String,
    /// Runtime parameter names with widths, bound per table entry.
    pub params: Vec<(String, u16)>,
    /// Operation body, executed in order.
    pub ops: Vec<PrimitiveOp>,
}

impl ActionDef {
    /// Creates an action with no parameters.
    pub fn simple(name: impl Into<String>, ops: Vec<PrimitiveOp>) -> Self {
        ActionDef {
            name: name.into(),
            params: Vec::new(),
            ops,
        }
    }

    /// All field references read by the body.
    pub fn reads(&self) -> Vec<FieldRef> {
        self.ops.iter().flat_map(PrimitiveOp::reads).collect()
    }

    /// All field references written by the body.
    pub fn writes(&self) -> Vec<FieldRef> {
        self.ops.iter().flat_map(PrimitiveOp::writes).collect()
    }

    /// Number of VLIW slots this action consumes in the resource model: one
    /// per primitive operation (hash externs count double — they occupy the
    /// hash unit and the result mover; register accesses occupy the
    /// stateful ALU plus the mover; the checksum extern folds the whole
    /// header).
    pub fn vliw_slots(&self) -> u32 {
        self.ops
            .iter()
            .map(|op| match op {
                PrimitiveOp::Hash { .. }
                | PrimitiveOp::RegisterRead { .. }
                | PrimitiveOp::RegisterWrite { .. }
                | PrimitiveOp::Ipv4ChecksumUpdate { .. } => 2,
                PrimitiveOp::NoOp => 0,
                _ => 1,
            })
            .sum()
    }
}

/// Computes a hash over a sequence of values. Shared by the interpreter and
/// tests so both sides agree bit-for-bit.
pub fn run_hash(algo: HashAlgorithm, inputs: &[Value]) -> u128 {
    match algo {
        HashAlgorithm::Crc32 => {
            let mut bytes = Vec::new();
            for v in inputs {
                bytes.extend_from_slice(&v.to_be_bytes());
            }
            u128::from(crc32(&bytes))
        }
        HashAlgorithm::Crc16 => {
            let mut bytes = Vec::new();
            for v in inputs {
                bytes.extend_from_slice(&v.to_be_bytes());
            }
            u128::from(crc16(&bytes))
        }
        HashAlgorithm::XorFold => inputs.iter().fold(0u128, |acc, v| acc ^ v.raw()),
        HashAlgorithm::Identity => inputs.first().map(|v| v.raw()).unwrap_or(0),
    }
}

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), bitwise implementation.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    !crc
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xffff;
    for &b in data {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::fref;

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29b1);
    }

    #[test]
    fn hash_is_deterministic_and_order_sensitive() {
        let a = Value::new(0x0a000001, 32);
        let b = Value::new(0x0a000002, 32);
        let h1 = run_hash(HashAlgorithm::Crc32, &[a, b]);
        let h2 = run_hash(HashAlgorithm::Crc32, &[a, b]);
        let h3 = run_hash(HashAlgorithm::Crc32, &[b, a]);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn xorfold_and_identity() {
        let a = Value::new(0xf0, 8);
        let b = Value::new(0x0f, 8);
        assert_eq!(run_hash(HashAlgorithm::XorFold, &[a, b]), 0xff);
        assert_eq!(run_hash(HashAlgorithm::Identity, &[a, b]), 0xf0);
        assert_eq!(run_hash(HashAlgorithm::Identity, &[]), 0);
    }

    #[test]
    fn reads_and_writes() {
        let act = ActionDef {
            name: "rewrite".into(),
            params: vec![("dip".into(), 32)],
            ops: vec![
                PrimitiveOp::Set {
                    dst: fref("ipv4", "dst_addr"),
                    value: Expr::Param("dip".into()),
                },
                PrimitiveOp::Set {
                    dst: fref("ipv4", "ttl"),
                    value: Expr::Sub(
                        Box::new(Expr::field("ipv4", "ttl")),
                        Box::new(Expr::val(1, 8)),
                    ),
                },
            ],
        };
        assert_eq!(act.reads(), vec![fref("ipv4", "ttl")]);
        assert_eq!(
            act.writes(),
            vec![fref("ipv4", "dst_addr"), fref("ipv4", "ttl")]
        );
        assert_eq!(act.vliw_slots(), 2);
    }

    #[test]
    fn hash_op_counts_two_slots() {
        let act = ActionDef::simple(
            "h",
            vec![PrimitiveOp::Hash {
                dst: FieldRef::meta("session_hash"),
                algo: HashAlgorithm::Crc32,
                inputs: vec![Expr::field("ipv4", "src_addr")],
            }],
        );
        assert_eq!(act.vliw_slots(), 2);
        assert_eq!(act.reads(), vec![fref("ipv4", "src_addr")]);
    }

    #[test]
    fn expr_reads_nested() {
        let e = Expr::Add(
            Box::new(Expr::Xor(
                Box::new(Expr::field("a", "x")),
                Box::new(Expr::field("b", "y")),
            )),
            Box::new(Expr::Shl(Box::new(Expr::meta("m")), 3)),
        );
        let reads = e.reads();
        assert_eq!(reads.len(), 3);
        assert!(reads.contains(&fref("a", "x")));
        assert!(reads.contains(&FieldRef::meta("m")));
    }
}
