//! Header types and field references.
//!
//! A [`HeaderType`] is an ordered list of fixed-width fields, e.g. `ethernet`
//! = (dst_mac:48, src_mac:48, ether_type:16). Dejavu restricts headers to
//! whole-byte total widths so that `(header_type, offset)` parser vertices
//! have well-defined byte offsets.
//!
//! A [`FieldRef`] names a field either inside a parsed header instance
//! (`ipv4.dst_addr`) or in per-packet metadata (`meta.egress_port`). The
//! distinguished pseudo-header name [`FieldRef::META`] addresses metadata;
//! everything else refers to the unique instance of that header type in the
//! parsed representation.

use crate::error::{IrError, Result};
use std::fmt;

/// One fixed-width field inside a header type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name, unique within its header type.
    pub name: String,
    /// Width in bits, `1..=128`.
    pub bits: u16,
}

/// A named header type: an ordered sequence of fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderType {
    /// Type name, e.g. `"ipv4"`. Unique within a program (and, after
    /// merging, within the merged program — see `dejavu-core`).
    pub name: String,
    /// Ordered fields; bit offsets follow declaration order.
    pub fields: Vec<FieldDef>,
}

impl HeaderType {
    /// Creates a header type, validating field widths and name uniqueness,
    /// and requiring the total width to be a whole number of bytes.
    pub fn new(name: impl Into<String>, fields: Vec<(impl Into<String>, u16)>) -> Result<Self> {
        let name = name.into();
        let fields: Vec<FieldDef> = fields
            .into_iter()
            .map(|(n, bits)| FieldDef {
                name: n.into(),
                bits,
            })
            .collect();
        let ht = HeaderType { name, fields };
        ht.validate()?;
        Ok(ht)
    }

    /// Checks field-width bounds, duplicate field names, and byte alignment
    /// of the total width.
    pub fn validate(&self) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        for f in &self.fields {
            if !(1..=128).contains(&f.bits) {
                return Err(IrError::BadFieldWidth {
                    header: self.name.clone(),
                    field: f.name.clone(),
                    bits: f.bits,
                });
            }
            if !seen.insert(f.name.as_str()) {
                return Err(IrError::Duplicate {
                    kind: "field",
                    name: format!("{}.{}", self.name, f.name),
                });
            }
        }
        if !self.total_bits().is_multiple_of(8) {
            return Err(IrError::Invalid(format!(
                "header type {} is {} bits, not byte-aligned",
                self.name,
                self.total_bits()
            )));
        }
        Ok(())
    }

    /// Total width in bits.
    pub fn total_bits(&self) -> u32 {
        self.fields.iter().map(|f| u32::from(f.bits)).sum()
    }

    /// Total width in whole bytes.
    pub fn total_bytes(&self) -> u32 {
        self.total_bits() / 8
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Bit offset of a field from the start of the header.
    pub fn field_bit_offset(&self, name: &str) -> Option<u32> {
        let mut off = 0u32;
        for f in &self.fields {
            if f.name == name {
                return Some(off);
            }
            off += u32::from(f.bits);
        }
        None
    }
}

/// A reference to a field: `header.field` or `meta.field`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldRef {
    /// Header type name, or [`FieldRef::META`] for packet metadata.
    pub header: String,
    /// Field name within the header/metadata space.
    pub field: String,
}

impl FieldRef {
    /// Pseudo-header name addressing per-packet metadata.
    pub const META: &'static str = "meta";

    /// Creates a reference to `header.field`.
    pub fn new(header: impl Into<String>, field: impl Into<String>) -> Self {
        FieldRef {
            header: header.into(),
            field: field.into(),
        }
    }

    /// Creates a reference to metadata field `meta.field`.
    pub fn meta(field: impl Into<String>) -> Self {
        FieldRef {
            header: Self::META.to_string(),
            field: field.into(),
        }
    }

    /// True if this reference addresses metadata rather than a parsed header.
    pub fn is_meta(&self) -> bool {
        self.header == Self::META
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.header, self.field)
    }
}

/// Convenience constructor: `fref("ipv4", "dst_addr")`.
pub fn fref(header: &str, field: &str) -> FieldRef {
    FieldRef::new(header, field)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eth() -> HeaderType {
        HeaderType::new(
            "ethernet",
            vec![("dst", 48u16), ("src", 48), ("ether_type", 16)],
        )
        .unwrap()
    }

    #[test]
    fn widths_and_offsets() {
        let h = eth();
        assert_eq!(h.total_bits(), 112);
        assert_eq!(h.total_bytes(), 14);
        assert_eq!(h.field_bit_offset("dst"), Some(0));
        assert_eq!(h.field_bit_offset("src"), Some(48));
        assert_eq!(h.field_bit_offset("ether_type"), Some(96));
        assert_eq!(h.field_bit_offset("missing"), None);
        assert_eq!(h.field("src").unwrap().bits, 48);
    }

    #[test]
    fn rejects_duplicate_field() {
        let err = HeaderType::new("h", vec![("a", 8u16), ("a", 8)]).unwrap_err();
        assert!(matches!(err, IrError::Duplicate { .. }));
    }

    #[test]
    fn rejects_zero_width() {
        let err = HeaderType::new("h", vec![("a", 0u16)]).unwrap_err();
        assert!(matches!(err, IrError::BadFieldWidth { .. }));
    }

    #[test]
    fn rejects_unaligned_total() {
        let err = HeaderType::new("h", vec![("a", 4u16)]).unwrap_err();
        assert!(matches!(err, IrError::Invalid(_)));
    }

    #[test]
    fn sub_byte_fields_allowed_when_total_aligned() {
        // IPv4-style: version(4) + ihl(4) = one byte.
        let h = HeaderType::new("v", vec![("version", 4u16), ("ihl", 4)]).unwrap();
        assert_eq!(h.total_bytes(), 1);
    }

    #[test]
    fn fieldref_display_and_meta() {
        let r = fref("ipv4", "ttl");
        assert_eq!(r.to_string(), "ipv4.ttl");
        assert!(!r.is_meta());
        assert!(FieldRef::meta("egress_port").is_meta());
    }
}
