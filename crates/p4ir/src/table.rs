//! Match-action tables.
//!
//! A [`TableDef`] is the static shape of a table: its match keys (field +
//! match kind), the set of actions its entries may invoke, a default action
//! for misses, and a declared capacity used by the resource model. Runtime
//! entries live in `dejavu-asic`'s table state, installed by the control
//! plane — exactly as on real hardware, where the P4 program fixes the shape
//! and the driver populates it.

use crate::error::{IrError, Result};
use crate::header::FieldRef;
use crate::value::Value;

/// How a key field is matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// Exact match (SRAM).
    Exact,
    /// Ternary match with per-entry mask (TCAM).
    Ternary,
    /// Longest-prefix match (TCAM).
    Lpm,
    /// Inclusive range match (TCAM, via range expansion).
    Range,
}

impl MatchKind {
    /// True if this kind requires TCAM rather than SRAM in the resource
    /// model.
    pub fn needs_tcam(self) -> bool {
        !matches!(self, MatchKind::Exact)
    }
}

/// One key of a table: a field reference plus its match kind.
#[derive(Debug, Clone, PartialEq)]
pub struct TableKey {
    /// The matched field.
    pub field: FieldRef,
    /// Match kind.
    pub kind: MatchKind,
}

/// Static definition of a match-action table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Table name, unique within its program.
    pub name: String,
    /// Match keys, in order.
    pub keys: Vec<TableKey>,
    /// Names of actions entries may invoke.
    pub actions: Vec<String>,
    /// Default action name invoked on a miss (must be in `actions`).
    pub default_action: String,
    /// Constant arguments bound to the default action.
    pub default_action_args: Vec<Value>,
    /// Declared capacity in entries; drives SRAM/TCAM sizing.
    pub size: u32,
}

impl TableDef {
    /// Validates internal consistency (default action is listed, non-zero
    /// size, no duplicate keys).
    pub fn validate(&self) -> Result<()> {
        if !self.actions.contains(&self.default_action) {
            return Err(IrError::Undefined {
                kind: "default action",
                name: format!("{} (table {})", self.default_action, self.name),
            });
        }
        if self.size == 0 {
            return Err(IrError::Invalid(format!(
                "table {} has zero size",
                self.name
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for k in &self.keys {
            if !seen.insert(&k.field) {
                return Err(IrError::Duplicate {
                    kind: "table key",
                    name: format!("{} (table {})", k.field, self.name),
                });
            }
        }
        Ok(())
    }

    /// True if any key needs TCAM.
    pub fn needs_tcam(&self) -> bool {
        self.keys.iter().any(|k| k.kind.needs_tcam())
    }

    /// Total match key width in bits, given a resolver from field reference
    /// to width. Returns an error for unknown fields.
    pub fn key_bits(&self, width_of: &dyn Fn(&FieldRef) -> Option<u16>) -> Result<u32> {
        let mut total = 0u32;
        for k in &self.keys {
            let w = width_of(&k.field).ok_or_else(|| IrError::Undefined {
                kind: "table key field",
                name: k.field.to_string(),
            })?;
            total += u32::from(w);
        }
        Ok(total)
    }

    /// The fields this table's match stage reads.
    pub fn match_reads(&self) -> Vec<FieldRef> {
        self.keys.iter().map(|k| k.field.clone()).collect()
    }
}

/// A stateful register array declaration (P4 `Register<bit<W>>(size)`).
///
/// Registers hold per-pipelet state that persists across packets — session
/// counters, token buckets, sketches. Cells are `width_bits` wide
/// (`1..=128`) and indexed modulo `size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterDef {
    /// Array name, unique within its program.
    pub name: String,
    /// Cell width in bits.
    pub width_bits: u16,
    /// Number of cells.
    pub size: u32,
}

impl RegisterDef {
    /// Validates width and size bounds.
    pub fn validate(&self) -> Result<()> {
        if !(1..=128).contains(&self.width_bits) {
            return Err(IrError::BadFieldWidth {
                header: format!("reg::{}", self.name),
                field: "cell".into(),
                bits: self.width_bits,
            });
        }
        if self.size == 0 {
            return Err(IrError::Invalid(format!(
                "register {} has zero size",
                self.name
            )));
        }
        Ok(())
    }

    /// SRAM bits the array occupies.
    pub fn total_bits(&self) -> u64 {
        u64::from(self.width_bits) * u64::from(self.size)
    }
}

/// A runtime entry installed into a table by the control plane.
///
/// Match data layout parallels the table's key list: one [`KeyMatch`] per
/// key. Priority orders ternary/range entries (higher wins).
#[derive(Debug, Clone, PartialEq)]
pub struct TableEntry {
    /// Per-key match specifications, same order as `TableDef::keys`.
    pub matches: Vec<KeyMatch>,
    /// Action to run on hit.
    pub action: String,
    /// Runtime arguments bound to the action's parameters.
    pub action_args: Vec<Value>,
    /// Priority for ternary/range arbitration; higher wins. Exact tables
    /// ignore it.
    pub priority: i32,
}

/// Match specification for a single key within an entry.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyMatch {
    /// Value must equal exactly.
    Exact(Value),
    /// `(value, mask)`: matches when `key & mask == value & mask`.
    Ternary(Value, Value),
    /// `(prefix, prefix_len)`: longest-prefix match.
    Lpm(Value, u16),
    /// Inclusive `[lo, hi]` range.
    Range(Value, Value),
    /// Wildcard (matches anything).
    Any,
}

impl KeyMatch {
    /// Does `v` satisfy this match specification?
    pub fn matches(&self, v: Value) -> bool {
        match self {
            KeyMatch::Exact(e) => v == *e,
            KeyMatch::Ternary(val, mask) => v.and(*mask) == val.and(*mask),
            KeyMatch::Lpm(prefix, len) => {
                if *len == 0 {
                    return true;
                }
                let shift = u32::from(v.bits().saturating_sub(*len));
                v.shr(shift) == prefix.shr(shift)
            }
            KeyMatch::Range(lo, hi) => v.raw() >= lo.raw() && v.raw() <= hi.raw(),
            KeyMatch::Any => true,
        }
    }

    /// Prefix length used to order LPM entries; `None` for other kinds.
    pub fn lpm_len(&self) -> Option<u16> {
        match self {
            KeyMatch::Lpm(_, len) => Some(*len),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::fref;

    fn acl() -> TableDef {
        TableDef {
            name: "acl".into(),
            keys: vec![
                TableKey {
                    field: fref("ipv4", "src_addr"),
                    kind: MatchKind::Ternary,
                },
                TableKey {
                    field: fref("ipv4", "dst_addr"),
                    kind: MatchKind::Lpm,
                },
            ],
            actions: vec!["permit".into(), "deny".into()],
            default_action: "permit".into(),
            default_action_args: vec![],
            size: 1024,
        }
    }

    #[test]
    fn validate_ok_and_tcam() {
        let t = acl();
        t.validate().unwrap();
        assert!(t.needs_tcam());
    }

    #[test]
    fn validate_rejects_bad_default() {
        let mut t = acl();
        t.default_action = "nope".into();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_size() {
        let mut t = acl();
        t.size = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_key() {
        let mut t = acl();
        t.keys.push(TableKey {
            field: fref("ipv4", "src_addr"),
            kind: MatchKind::Exact,
        });
        assert!(t.validate().is_err());
    }

    #[test]
    fn key_bits_resolution() {
        let t = acl();
        let bits = t
            .key_bits(&|fr| if fr.header == "ipv4" { Some(32) } else { None })
            .unwrap();
        assert_eq!(bits, 64);
        assert!(t.key_bits(&|_| None).is_err());
    }

    #[test]
    fn exact_match() {
        let m = KeyMatch::Exact(Value::new(7, 8));
        assert!(m.matches(Value::new(7, 8)));
        assert!(!m.matches(Value::new(8, 8)));
    }

    #[test]
    fn ternary_match() {
        let m = KeyMatch::Ternary(Value::new(0x0a00_0000, 32), Value::new(0xff00_0000, 32));
        assert!(m.matches(Value::new(0x0a01_0203, 32)));
        assert!(!m.matches(Value::new(0x0b01_0203, 32)));
    }

    #[test]
    fn lpm_match() {
        let m = KeyMatch::Lpm(Value::new(0x0a000000, 32), 8);
        assert!(m.matches(Value::new(0x0a123456, 32)));
        assert!(!m.matches(Value::new(0x0b123456, 32)));
        let default = KeyMatch::Lpm(Value::new(0, 32), 0);
        assert!(default.matches(Value::new(0xffff_ffff, 32)));
    }

    #[test]
    fn range_and_any() {
        let m = KeyMatch::Range(Value::new(1000, 16), Value::new(2000, 16));
        assert!(m.matches(Value::new(1000, 16)));
        assert!(m.matches(Value::new(2000, 16)));
        assert!(!m.matches(Value::new(999, 16)));
        assert!(KeyMatch::Any.matches(Value::new(0xdead, 16)));
    }
}
