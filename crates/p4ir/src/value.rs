//! Fixed-width values.
//!
//! Switch ASIC pipelines operate on bit fields of bounded width. We cap field
//! width at 128 bits (enough for IPv6 addresses) and represent every runtime
//! value as a [`Value`]: a `u128` paired with its width. Arithmetic wraps
//! modulo 2^width, mirroring P4 bit-vector semantics.

use std::fmt;

/// Returns the bit mask covering the low `bits` bits.
///
/// `bits` must be in `1..=128`; passing `128` returns all-ones.
///
/// ```
/// assert_eq!(dejavu_p4ir::mask_for(8), 0xff);
/// assert_eq!(dejavu_p4ir::mask_for(128), u128::MAX);
/// ```
pub fn mask_for(bits: u16) -> u128 {
    debug_assert!((1..=128).contains(&bits), "width out of range: {bits}");
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

/// A bit-vector value: an unsigned integer of a declared width.
///
/// All constructors and operations truncate to the declared width, so a
/// `Value` is always in canonical form (`raw <= mask_for(bits)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value {
    raw: u128,
    bits: u16,
}

impl Value {
    /// Creates a value of the given width, truncating `raw` to fit.
    pub fn new(raw: u128, bits: u16) -> Self {
        assert!(
            (1..=128).contains(&bits),
            "value width out of range: {bits}"
        );
        Value {
            raw: raw & mask_for(bits),
            bits,
        }
    }

    /// The raw unsigned integer.
    pub fn raw(self) -> u128 {
        self.raw
    }

    /// The declared width in bits.
    pub fn bits(self) -> u16 {
        self.bits
    }

    /// Returns a copy reinterpreted at a new width, truncating if narrower.
    pub fn resize(self, bits: u16) -> Self {
        Value::new(self.raw, bits)
    }

    /// Wrapping addition modulo 2^width (width taken from `self`).
    pub fn wrapping_add(self, rhs: Value) -> Self {
        Value::new(self.raw.wrapping_add(rhs.raw), self.bits)
    }

    /// Wrapping subtraction modulo 2^width (width taken from `self`).
    pub fn wrapping_sub(self, rhs: Value) -> Self {
        Value::new(self.raw.wrapping_sub(rhs.raw), self.bits)
    }

    /// Bitwise AND; width taken from `self`.
    pub fn and(self, rhs: Value) -> Self {
        Value::new(self.raw & rhs.raw, self.bits)
    }

    /// Bitwise OR; width taken from `self`.
    pub fn or(self, rhs: Value) -> Self {
        Value::new(self.raw | rhs.raw, self.bits)
    }

    /// Bitwise XOR; width taken from `self`.
    pub fn xor(self, rhs: Value) -> Self {
        Value::new(self.raw ^ rhs.raw, self.bits)
    }

    /// Logical shift left; width taken from `self`.
    #[allow(clippy::should_implement_trait)] // P4 semantics, not Rust's Shl
    pub fn shl(self, amount: u32) -> Self {
        if amount >= 128 {
            Value::new(0, self.bits)
        } else {
            Value::new(self.raw << amount, self.bits)
        }
    }

    /// Logical shift right.
    #[allow(clippy::should_implement_trait)] // P4 semantics, not Rust's Shr
    pub fn shr(self, amount: u32) -> Self {
        if amount >= 128 {
            Value::new(0, self.bits)
        } else {
            Value::new(self.raw >> amount, self.bits)
        }
    }

    /// True if the value is non-zero (P4 boolean coercion).
    pub fn as_bool(self) -> bool {
        self.raw != 0
    }

    /// Serializes the value into big-endian bytes covering exactly
    /// `ceil(bits/8)` bytes, left-padded with zero bits.
    pub fn to_be_bytes(self) -> Vec<u8> {
        let nbytes = self.byte_len();
        let all = self.raw.to_be_bytes();
        all[16 - nbytes..].to_vec()
    }

    /// Number of whole bytes needed to hold this value's width.
    pub fn byte_len(self) -> usize {
        usize::from(self.bits).div_ceil(8)
    }

    /// Parses a big-endian byte slice into a value of width `bits`.
    ///
    /// The slice must be exactly `ceil(bits/8)` long.
    pub fn from_be_bytes(bytes: &[u8], bits: u16) -> Self {
        let nbytes = usize::from(bits).div_ceil(8);
        assert_eq!(
            bytes.len(),
            nbytes,
            "byte slice length mismatch for {bits}-bit value"
        );
        let mut raw: u128 = 0;
        for &b in bytes {
            raw = (raw << 8) | u128::from(b);
        }
        Value::new(raw, bits)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}w{}", self.raw, self.bits)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}w{}", self.raw, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_bounds() {
        assert_eq!(mask_for(1), 1);
        assert_eq!(mask_for(16), 0xffff);
        assert_eq!(mask_for(127), u128::MAX >> 1);
        assert_eq!(mask_for(128), u128::MAX);
    }

    #[test]
    fn construction_truncates() {
        let v = Value::new(0x1ff, 8);
        assert_eq!(v.raw(), 0xff);
        assert_eq!(v.bits(), 8);
    }

    #[test]
    fn wrapping_arithmetic() {
        let a = Value::new(0xff, 8);
        let b = Value::new(2, 8);
        assert_eq!(a.wrapping_add(b).raw(), 1);
        assert_eq!(b.wrapping_sub(a).raw(), 3);
    }

    #[test]
    fn bitwise_ops() {
        let a = Value::new(0b1100, 4);
        let b = Value::new(0b1010, 4);
        assert_eq!(a.and(b).raw(), 0b1000);
        assert_eq!(a.or(b).raw(), 0b1110);
        assert_eq!(a.xor(b).raw(), 0b0110);
        assert_eq!(a.shl(1).raw(), 0b1000);
        assert_eq!(a.shr(2).raw(), 0b0011);
    }

    #[test]
    fn shift_overflow_is_zero() {
        let a = Value::new(0xffff, 16);
        assert_eq!(a.shl(128).raw(), 0);
        assert_eq!(a.shr(200).raw(), 0);
    }

    #[test]
    fn byte_roundtrip() {
        for bits in [1u16, 7, 8, 9, 16, 24, 32, 48, 64, 128] {
            let v = Value::new(0xdead_beef_dead_beef_dead_beef, bits);
            let bytes = v.to_be_bytes();
            assert_eq!(bytes.len(), usize::from(bits).div_ceil(8));
            assert_eq!(Value::from_be_bytes(&bytes, bits), v);
        }
    }

    #[test]
    fn resize_truncates() {
        let v = Value::new(0x1234, 16);
        assert_eq!(v.resize(8).raw(), 0x34);
        assert_eq!(v.resize(32).raw(), 0x1234);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        let _ = Value::new(1, 0);
    }
}
