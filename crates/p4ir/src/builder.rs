//! Typed builders — the frontend that replaces P4 source text.
//!
//! A Dejavu NF author writes, in the paper, a P4-16 control block against the
//! one-argument API. In this reproduction the same author writes Rust against
//! these builders. The shapes map one-to-one: `HeaderTypeBuilder` ↔ `header`,
//! `ParserBuilder` ↔ `parser`, `ActionBuilder` ↔ `action`, `TableBuilder` ↔
//! `table`, `ControlBuilder` ↔ `control`, and `ProgramBuilder` packages them
//! into a validated [`Program`].
//!
//! Builders are infallible until [`ProgramBuilder::build`], which runs full
//! validation and reports the first inconsistency.

use crate::action::{ActionDef, Expr, HashAlgorithm, PrimitiveOp};
use crate::control::{ControlBlock, Stmt};
use crate::error::{IrError, Result};
use crate::header::{FieldDef, FieldRef, HeaderType};
use crate::parser::{ParseNode, ParserDag, Target, Transition};
use crate::program::Program;
use crate::table::{MatchKind, RegisterDef, TableDef, TableKey};
use crate::value::Value;
use std::collections::BTreeMap;

/// Builds a [`HeaderType`].
#[derive(Debug, Clone)]
pub struct HeaderTypeBuilder {
    name: String,
    fields: Vec<(String, u16)>,
}

impl HeaderTypeBuilder {
    /// Starts a header type.
    pub fn new(name: impl Into<String>) -> Self {
        HeaderTypeBuilder {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Appends a field.
    pub fn field(mut self, name: impl Into<String>, bits: u16) -> Self {
        self.fields.push((name.into(), bits));
        self
    }

    /// Finishes, validating widths and alignment.
    pub fn build(self) -> Result<HeaderType> {
        HeaderType::new(self.name, self.fields)
    }
}

/// Named-target transition spec used while building a parser.
#[derive(Debug, Clone)]
enum PendingTransition {
    Unconditional(PendingTarget),
    Select {
        field: String,
        cases: Vec<(Value, PendingTarget)>,
        default: PendingTarget,
    },
}

/// Target referenced by node name before resolution.
#[derive(Debug, Clone)]
enum PendingTarget {
    Node(String),
    Accept,
    Reject,
}

/// Builds a [`ParserDag`] with human-readable node names resolved at build
/// time.
#[derive(Debug, Clone, Default)]
pub struct ParserBuilder {
    nodes: Vec<(String, String, u32, Option<PendingTransition>)>,
    start: Option<PendingTarget>,
    /// Errors deferred until [`build`](Self::build) so the fluent chain
    /// stays ergonomic (e.g. a transition set on an undeclared node).
    errors: Vec<IrError>,
}

impl ParserBuilder {
    /// Starts an empty parser.
    pub fn new() -> Self {
        ParserBuilder::default()
    }

    /// Declares a parse node `name` extracting `header_type` at byte
    /// `offset`. Its transition defaults to Accept until one of the
    /// transition methods is called.
    pub fn node(
        mut self,
        name: impl Into<String>,
        header_type: impl Into<String>,
        offset: u32,
    ) -> Self {
        self.nodes
            .push((name.into(), header_type.into(), offset, None));
        self
    }

    /// Sets node `name`'s transition to unconditionally continue at node
    /// `target`.
    pub fn goto(mut self, name: &str, target: &str) -> Self {
        self.set_transition(
            name,
            PendingTransition::Unconditional(PendingTarget::Node(target.into())),
        );
        self
    }

    /// Sets node `name`'s transition to accept.
    pub fn accept(mut self, name: &str) -> Self {
        self.set_transition(
            name,
            PendingTransition::Unconditional(PendingTarget::Accept),
        );
        self
    }

    /// Sets node `name`'s transition to select on `field` with the given
    /// `(value, target-node)` cases, defaulting to accept.
    pub fn select(
        mut self,
        name: &str,
        field: impl Into<String>,
        bits: u16,
        cases: Vec<(u128, &str)>,
    ) -> Self {
        self.set_transition(
            name,
            PendingTransition::Select {
                field: field.into(),
                cases: cases
                    .into_iter()
                    .map(|(v, t)| (Value::new(v, bits), PendingTarget::Node(t.into())))
                    .collect(),
                default: PendingTarget::Accept,
            },
        );
        self
    }

    /// Like [`select`](Self::select) but rejecting packets that match no
    /// case.
    pub fn select_or_reject(
        mut self,
        name: &str,
        field: impl Into<String>,
        bits: u16,
        cases: Vec<(u128, &str)>,
    ) -> Self {
        self.set_transition(
            name,
            PendingTransition::Select {
                field: field.into(),
                cases: cases
                    .into_iter()
                    .map(|(v, t)| (Value::new(v, bits), PendingTarget::Node(t.into())))
                    .collect(),
                default: PendingTarget::Reject,
            },
        );
        self
    }

    /// Marks the start node.
    pub fn start(mut self, name: &str) -> Self {
        self.start = Some(PendingTarget::Node(name.into()));
        self
    }

    fn set_transition(&mut self, name: &str, t: PendingTransition) {
        if let Some(entry) = self.nodes.iter_mut().find(|(n, ..)| n == name) {
            entry.3 = Some(t);
        } else {
            self.errors.push(IrError::Undefined {
                kind: "parser node",
                name: name.to_string(),
            });
        }
    }

    /// Resolves names and produces the DAG. A transition set on an
    /// undeclared node or a target name that resolves to no node is an
    /// [`IrError::Undefined`] — surfaced here rather than panicking, so a
    /// typo in a generated parser is a recoverable diagnostic.
    pub fn build(self) -> Result<ParserDag> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let index: BTreeMap<String, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, (n, ..))| (n.clone(), i))
            .collect();
        let resolve = |t: &PendingTarget| -> Result<Target> {
            match t {
                PendingTarget::Accept => Ok(Target::Accept),
                PendingTarget::Reject => Ok(Target::Reject),
                PendingTarget::Node(n) => {
                    index
                        .get(n)
                        .map(|i| Target::Node(*i))
                        .ok_or_else(|| IrError::Undefined {
                            kind: "parser node",
                            name: n.clone(),
                        })
                }
            }
        };
        let mut dag = ParserDag::new();
        for (_, header_type, offset, transition) in &self.nodes {
            let transition = match transition {
                None => Transition::Unconditional(Target::Accept),
                Some(PendingTransition::Unconditional(t)) => Transition::Unconditional(resolve(t)?),
                Some(PendingTransition::Select {
                    field,
                    cases,
                    default,
                }) => Transition::Select {
                    field: field.clone(),
                    cases: cases
                        .iter()
                        .map(|(v, t)| Ok((*v, resolve(t)?)))
                        .collect::<Result<Vec<_>>>()?,
                    default: resolve(default)?,
                },
            };
            dag.add_node(ParseNode {
                header_type: header_type.clone(),
                offset: *offset,
                transition,
            });
        }
        dag.start = self.start.as_ref().map(&resolve).transpose()?;
        Ok(dag)
    }
}

/// Parser input accepted by [`ProgramBuilder::parser`]: a finished DAG, a
/// [`ParserBuilder`] (resolved on the spot), or an explicit result. A
/// resolution failure is carried into the program builder and reported by
/// [`ProgramBuilder::build`] instead of panicking mid-chain.
#[derive(Debug, Clone)]
pub struct ParserResult(Result<ParserDag>);

impl From<ParserDag> for ParserResult {
    fn from(dag: ParserDag) -> ParserResult {
        ParserResult(Ok(dag))
    }
}

impl From<ParserBuilder> for ParserResult {
    fn from(b: ParserBuilder) -> ParserResult {
        ParserResult(b.build())
    }
}

impl From<Result<ParserDag>> for ParserResult {
    fn from(r: Result<ParserDag>) -> ParserResult {
        ParserResult(r)
    }
}

/// Builds an [`ActionDef`].
#[derive(Debug, Clone)]
pub struct ActionBuilder {
    def: ActionDef,
}

impl ActionBuilder {
    /// Starts an action.
    pub fn new(name: impl Into<String>) -> Self {
        ActionBuilder {
            def: ActionDef {
                name: name.into(),
                params: Vec::new(),
                ops: Vec::new(),
            },
        }
    }

    /// Declares a runtime parameter.
    pub fn param(mut self, name: impl Into<String>, bits: u16) -> Self {
        self.def.params.push((name.into(), bits));
        self
    }

    /// Appends `dst = expr`.
    pub fn set(mut self, dst: FieldRef, value: Expr) -> Self {
        self.def.ops.push(PrimitiveOp::Set { dst, value });
        self
    }

    /// Appends a hash computation.
    pub fn hash(mut self, dst: FieldRef, algo: HashAlgorithm, inputs: Vec<Expr>) -> Self {
        self.def.ops.push(PrimitiveOp::Hash { dst, algo, inputs });
        self
    }

    /// Appends a header insertion.
    pub fn add_header(mut self, header: impl Into<String>, before: Option<&str>) -> Self {
        self.def.ops.push(PrimitiveOp::AddHeader {
            header: header.into(),
            before: before.map(str::to_string),
        });
        self
    }

    /// Appends a header removal.
    pub fn remove_header(mut self, header: impl Into<String>) -> Self {
        self.def.ops.push(PrimitiveOp::RemoveHeader {
            header: header.into(),
        });
        self
    }

    /// Appends removal of the `occurrence`-th instance of `header`.
    pub fn remove_header_nth(mut self, header: impl Into<String>, occurrence: usize) -> Self {
        self.def.ops.push(PrimitiveOp::RemoveHeaderNth {
            header: header.into(),
            occurrence,
        });
        self
    }

    /// Appends `dst = register[index]`.
    pub fn reg_read(mut self, dst: FieldRef, register: impl Into<String>, index: Expr) -> Self {
        self.def.ops.push(PrimitiveOp::RegisterRead {
            dst,
            register: register.into(),
            index,
        });
        self
    }

    /// Appends `register[index] = value`.
    pub fn reg_write(mut self, register: impl Into<String>, index: Expr, value: Expr) -> Self {
        self.def.ops.push(PrimitiveOp::RegisterWrite {
            register: register.into(),
            index,
            value,
        });
        self
    }

    /// Appends an IPv4 checksum recomputation over `header`.
    pub fn update_checksum(mut self, header: impl Into<String>) -> Self {
        self.def.ops.push(PrimitiveOp::Ipv4ChecksumUpdate {
            header: header.into(),
        });
        self
    }

    /// Appends a digest emission to stream `name` carrying `fields`.
    pub fn digest(mut self, name: impl Into<String>, fields: Vec<Expr>) -> Self {
        self.def.ops.push(PrimitiveOp::Digest {
            name: name.into(),
            fields,
        });
        self
    }

    /// Appends a drop mark.
    pub fn drop_packet(mut self) -> Self {
        self.def.ops.push(PrimitiveOp::Drop);
        self
    }

    /// Finishes the action.
    pub fn build(self) -> ActionDef {
        self.def
    }
}

/// Builds a [`TableDef`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    def: TableDef,
}

impl TableBuilder {
    /// Starts a table with a default size of 1024 entries.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            def: TableDef {
                name: name.into(),
                keys: Vec::new(),
                actions: Vec::new(),
                default_action: String::new(),
                default_action_args: Vec::new(),
                size: 1024,
            },
        }
    }

    /// Adds an exact-match key.
    pub fn key_exact(mut self, field: FieldRef) -> Self {
        self.def.keys.push(TableKey {
            field,
            kind: MatchKind::Exact,
        });
        self
    }

    /// Adds a ternary key.
    pub fn key_ternary(mut self, field: FieldRef) -> Self {
        self.def.keys.push(TableKey {
            field,
            kind: MatchKind::Ternary,
        });
        self
    }

    /// Adds an LPM key.
    pub fn key_lpm(mut self, field: FieldRef) -> Self {
        self.def.keys.push(TableKey {
            field,
            kind: MatchKind::Lpm,
        });
        self
    }

    /// Adds a range key.
    pub fn key_range(mut self, field: FieldRef) -> Self {
        self.def.keys.push(TableKey {
            field,
            kind: MatchKind::Range,
        });
        self
    }

    /// Registers an invocable action.
    pub fn action(mut self, name: impl Into<String>) -> Self {
        self.def.actions.push(name.into());
        self
    }

    /// Sets the miss action (also registered if not yet listed).
    pub fn default_action(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if !self.def.actions.contains(&name) {
            self.def.actions.push(name.clone());
        }
        self.def.default_action = name;
        self
    }

    /// Sets constant arguments for the miss action.
    pub fn default_args(mut self, args: Vec<Value>) -> Self {
        self.def.default_action_args = args;
        self
    }

    /// Sets the declared capacity.
    pub fn size(mut self, entries: u32) -> Self {
        self.def.size = entries;
        self
    }

    /// Finishes the table.
    pub fn build(self) -> TableDef {
        self.def
    }
}

/// Builds a [`ControlBlock`].
#[derive(Debug, Clone)]
pub struct ControlBuilder {
    name: String,
    body: Vec<Stmt>,
}

impl ControlBuilder {
    /// Starts a control block.
    pub fn new(name: impl Into<String>) -> Self {
        ControlBuilder {
            name: name.into(),
            body: Vec::new(),
        }
    }

    /// Appends a statement.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.body.push(s);
        self
    }

    /// Appends `table.apply()`.
    pub fn apply(mut self, table: &str) -> Self {
        self.body.push(Stmt::Apply(table.into()));
        self
    }

    /// Appends a direct action invocation.
    pub fn invoke(mut self, action: &str) -> Self {
        self.body.push(Stmt::Do(action.into()));
        self
    }

    /// Appends a call to another control.
    pub fn call(mut self, control: &str) -> Self {
        self.body.push(Stmt::Call(control.into()));
        self
    }

    /// Finishes the control block.
    pub fn build(self) -> ControlBlock {
        ControlBlock::new(self.name, self.body)
    }
}

/// Builds a validated [`Program`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    program: Program,
    parser_error: Option<IrError>,
}

impl ProgramBuilder {
    /// Starts a program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program::new(name),
            parser_error: None,
        }
    }

    /// Registers a header type.
    pub fn header(mut self, ht: HeaderType) -> Self {
        self.program.header_types.insert(ht.name.clone(), ht);
        self
    }

    /// Declares a user metadata field.
    pub fn meta_field(mut self, name: impl Into<String>, bits: u16) -> Self {
        self.program.meta_fields.push(FieldDef {
            name: name.into(),
            bits,
        });
        self
    }

    /// Installs the parser (accepts a finished DAG, a [`ParserBuilder`], or
    /// a `Result<ParserDag, IrError>`). A failed parser build is stashed and
    /// reported by [`build`](Self::build).
    pub fn parser(mut self, dag: impl Into<ParserResult>) -> Self {
        match dag.into().0 {
            Ok(dag) => self.program.parser = dag,
            Err(e) => self.parser_error = Some(e),
        }
        self
    }

    /// Registers an action.
    pub fn action(mut self, a: ActionDef) -> Self {
        self.program.actions.insert(a.name.clone(), a);
        self
    }

    /// Registers a table.
    pub fn table(mut self, t: TableDef) -> Self {
        self.program.tables.insert(t.name.clone(), t);
        self
    }

    /// Declares a stateful register array.
    pub fn register(mut self, name: impl Into<String>, width_bits: u16, size: u32) -> Self {
        let name = name.into();
        self.program.registers.insert(
            name.clone(),
            RegisterDef {
                name,
                width_bits,
                size,
            },
        );
        self
    }

    /// Registers a control block.
    pub fn control(mut self, c: ControlBlock) -> Self {
        self.program.controls.insert(c.name.clone(), c);
        self
    }

    /// Sets the entry control.
    pub fn entry(mut self, name: impl Into<String>) -> Self {
        self.program.entry = name.into();
        self
    }

    /// Validates and returns the program. A parser that failed to resolve
    /// is reported first.
    pub fn build(self) -> Result<Program> {
        if let Some(e) = self.parser_error {
            return Err(e);
        }
        self.program.validate()?;
        Ok(self.program)
    }

    /// Returns the program without validation (for tests constructing
    /// deliberately broken programs).
    pub fn build_unchecked(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::fref;
    use crate::well_known;

    #[test]
    fn full_builder_roundtrip() {
        let program = ProgramBuilder::new("demo")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .meta_field("class", 8)
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("set_class")
                    .param("c", 8)
                    .set(FieldRef::meta("class"), Expr::Param("c".into()))
                    .build(),
            )
            .action(ActionBuilder::new("nop").build())
            .table(
                TableBuilder::new("classify")
                    .key_lpm(fref("ipv4", "src_addr"))
                    .action("set_class")
                    .default_action("nop")
                    .size(256)
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("classify").build())
            .entry("ingress")
            .build()
            .unwrap();
        assert_eq!(program.tables_in_order(), vec!["classify"]);
        assert_eq!(program.field_width(&FieldRef::meta("class")), Some(8));
    }

    #[test]
    fn parser_builder_select_or_reject() {
        let dag = ParserBuilder::new()
            .node("eth", "ethernet", 0)
            .node("ip", "ipv4", 14)
            .select_or_reject("eth", "ether_type", 16, vec![(0x0800, "ip")])
            .accept("ip")
            .start("eth")
            .build()
            .unwrap();
        let headers = [well_known::ethernet(), well_known::ipv4()]
            .into_iter()
            .map(|h| (h.name.clone(), h))
            .collect();
        let mut pkt = vec![0u8; 34];
        pkt[12] = 0x08;
        assert!(dag.parse(&headers, &pkt).is_ok());
        pkt[12] = 0x86;
        assert!(dag.parse(&headers, &pkt).is_err());
    }

    #[test]
    fn unknown_target_is_an_error() {
        let err = ParserBuilder::new()
            .node("eth", "ethernet", 0)
            .goto("eth", "ghost")
            .start("eth")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            IrError::Undefined {
                kind: "parser node",
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn transition_on_undeclared_node_is_an_error() {
        let err = ParserBuilder::new()
            .node("eth", "ethernet", 0)
            .accept("ghost")
            .start("eth")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            IrError::Undefined {
                kind: "parser node",
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn parser_error_surfaces_from_program_build() {
        let err = ProgramBuilder::new("broken")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .goto("eth", "ghost")
                    .start("eth"),
            )
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            IrError::Undefined {
                kind: "parser node",
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn default_action_auto_registered() {
        let t = TableBuilder::new("t").default_action("nop").build();
        assert_eq!(t.actions, vec!["nop"]);
        assert_eq!(t.default_action, "nop");
    }
}
