//! Well-known protocol header types shared across the workspace.
//!
//! NF programs, the traffic generator, and the packet test framework all
//! need consistent definitions of the standard protocol headers. Field names
//! follow P4 community conventions (`switch.p4` / `tna` idioms).

use crate::builder::ParserBuilder;
use crate::header::HeaderType;
use crate::parser::ParserDag;

/// EtherType of IPv4.
pub const ETHERTYPE_IPV4: u128 = 0x0800;
/// EtherType of ARP.
pub const ETHERTYPE_ARP: u128 = 0x0806;
/// EtherType Dejavu assigns to its SFC header (paper §3: "a special
/// EtherType to signify its existence"). Value from the experimental range.
pub const ETHERTYPE_SFC: u128 = 0x88B5;
/// IPv4 protocol number for TCP.
pub const IPPROTO_TCP: u128 = 6;
/// IPv4 protocol number for UDP.
pub const IPPROTO_UDP: u128 = 17;
/// UDP destination port for VXLAN.
pub const VXLAN_PORT: u128 = 4789;

/// Ethernet II header (14 bytes).
pub fn ethernet() -> HeaderType {
    HeaderType::new(
        "ethernet",
        vec![("dst_mac", 48u16), ("src_mac", 48), ("ether_type", 16)],
    )
    .expect("ethernet header is well-formed")
}

/// IPv4 header without options (20 bytes).
pub fn ipv4() -> HeaderType {
    HeaderType::new(
        "ipv4",
        vec![
            ("version", 4u16),
            ("ihl", 4),
            ("dscp", 6),
            ("ecn", 2),
            ("total_len", 16),
            ("identification", 16),
            ("flags", 3),
            ("frag_offset", 13),
            ("ttl", 8),
            ("protocol", 8),
            ("hdr_checksum", 16),
            ("src_addr", 32),
            ("dst_addr", 32),
        ],
    )
    .expect("ipv4 header is well-formed")
}

/// TCP header without options (20 bytes).
pub fn tcp() -> HeaderType {
    HeaderType::new(
        "tcp",
        vec![
            ("src_port", 16u16),
            ("dst_port", 16),
            ("seq_no", 32),
            ("ack_no", 32),
            ("data_offset", 4),
            ("reserved", 4),
            ("flags", 8),
            ("window", 16),
            ("checksum", 16),
            ("urgent_ptr", 16),
        ],
    )
    .expect("tcp header is well-formed")
}

/// UDP header (8 bytes).
pub fn udp() -> HeaderType {
    HeaderType::new(
        "udp",
        vec![
            ("src_port", 16u16),
            ("dst_port", 16),
            ("length", 16),
            ("checksum", 16),
        ],
    )
    .expect("udp header is well-formed")
}

/// VXLAN header (8 bytes).
pub fn vxlan() -> HeaderType {
    HeaderType::new(
        "vxlan",
        vec![
            ("flags", 8u16),
            ("reserved1", 24),
            ("vni", 24),
            ("reserved2", 8),
        ],
    )
    .expect("vxlan header is well-formed")
}

/// ARP header for IPv4 over Ethernet (28 bytes).
pub fn arp() -> HeaderType {
    HeaderType::new(
        "arp",
        vec![
            ("hw_type", 16u16),
            ("proto_type", 16),
            ("hw_len", 8),
            ("proto_len", 8),
            ("opcode", 16),
            ("sender_mac", 48),
            ("sender_ip", 32),
            ("target_mac", 48),
            ("target_ip", 32),
        ],
    )
    .expect("arp header is well-formed")
}

/// A conventional `ethernet → ipv4 → {tcp | udp}` parser starting at byte 0.
///
/// Byte offsets: ethernet 0, ipv4 14, L4 at 34.
pub fn eth_ip_l4_parser() -> ParserDag {
    ParserBuilder::new()
        .node("eth", "ethernet", 0)
        .node("ip", "ipv4", 14)
        .node("tcp", "tcp", 34)
        .node("udp", "udp", 34)
        .select("eth", "ether_type", 16, vec![(ETHERTYPE_IPV4, "ip")])
        .select(
            "ip",
            "protocol",
            8,
            vec![(IPPROTO_TCP, "tcp"), (IPPROTO_UDP, "udp")],
        )
        .accept("tcp")
        .accept("udp")
        .start("eth")
        .build()
        .expect("well-known parser resolves")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_sizes() {
        assert_eq!(ethernet().total_bytes(), 14);
        assert_eq!(ipv4().total_bytes(), 20);
        assert_eq!(tcp().total_bytes(), 20);
        assert_eq!(udp().total_bytes(), 8);
        assert_eq!(vxlan().total_bytes(), 8);
        assert_eq!(arp().total_bytes(), 28);
    }

    #[test]
    fn standard_parser_parses_tcp_and_udp() {
        let headers: std::collections::HashMap<_, _> = [ethernet(), ipv4(), tcp(), udp()]
            .into_iter()
            .map(|h| (h.name.clone(), h))
            .collect();
        let dag = eth_ip_l4_parser();
        let mut pkt = vec![0u8; 54];
        pkt[12] = 0x08; // IPv4
        pkt[23] = 6; // TCP
        let path = dag.parse(&headers, &pkt).unwrap();
        assert_eq!(path.last().unwrap().0, "tcp");
        pkt[23] = 17; // UDP
        let path = dag.parse(&headers, &pkt[..42]).unwrap();
        assert_eq!(path.last().unwrap().0, "udp");
    }

    #[test]
    fn non_ip_accepted_after_ethernet() {
        let headers: std::collections::HashMap<_, _> = [ethernet(), ipv4(), tcp(), udp()]
            .into_iter()
            .map(|h| (h.name.clone(), h))
            .collect();
        let dag = eth_ip_l4_parser();
        let mut pkt = vec![0u8; 14];
        pkt[12] = 0x08;
        pkt[13] = 0x06; // ARP
        let path = dag.parse(&headers, &pkt).unwrap();
        assert_eq!(path, vec![("ethernet".to_string(), 0)]);
    }
}
