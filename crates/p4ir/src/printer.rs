//! Pseudo-P4 pretty-printer.
//!
//! Renders a [`Program`] as P4-16-flavoured source text — the inverse of the
//! builder frontend. The output is for humans (inspecting what Dejavu's
//! merge/composition generated, diffing programs, documentation); it is not
//! fed back into a parser.

use crate::action::{Expr, HashAlgorithm, PrimitiveOp};
use crate::control::{BoolExpr, CmpOp, Stmt};
use crate::parser::{Target, Transition};
use crate::program::Program;
use crate::table::MatchKind;
use std::fmt::Write;

/// Renders a whole program as pseudo-P4 source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// program: {}", p.name);

    for ht in p.header_types.values() {
        let _ = writeln!(out, "header {} {{", ht.name);
        for f in &ht.fields {
            let _ = writeln!(out, "    bit<{}> {};", f.bits, f.name);
        }
        let _ = writeln!(out, "}}");
    }

    if !p.meta_fields.is_empty() {
        let _ = writeln!(out, "struct metadata {{");
        for f in &p.meta_fields {
            let _ = writeln!(out, "    bit<{}> {};", f.bits, f.name);
        }
        let _ = writeln!(out, "}}");
    }

    for r in p.registers.values() {
        let _ = writeln!(
            out,
            "Register<bit<{}>>({}) {};",
            r.width_bits, r.size, r.name
        );
    }

    // Parser.
    let _ = writeln!(out, "parser prs(packet_in pkt, out headers hdr) {{");
    for (i, node) in p.parser.nodes.iter().enumerate() {
        let state = format!("parse_{}_{}", node.header_type, node.offset);
        let _ = writeln!(out, "    state {state} {{ // node {i}");
        let _ = writeln!(out, "        pkt.extract(hdr.{});", node.header_type);
        match &node.transition {
            Transition::Unconditional(t) => {
                let _ = writeln!(out, "        transition {};", target_name(p, *t));
            }
            Transition::Select {
                field,
                cases,
                default,
            } => {
                let _ = writeln!(
                    out,
                    "        transition select(hdr.{}.{field}) {{",
                    node.header_type
                );
                for (v, t) in cases {
                    let _ = writeln!(out, "            {:#x}: {};", v.raw(), target_name(p, *t));
                }
                let _ = writeln!(out, "            default: {};", target_name(p, *default));
                let _ = writeln!(out, "        }}");
            }
        }
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "}}");

    for a in p.actions.values() {
        let _ = write!(out, "action {}(", a.name);
        let params: Vec<String> = a
            .params
            .iter()
            .map(|(n, b)| format!("bit<{b}> {n}"))
            .collect();
        let _ = writeln!(out, "{}) {{", params.join(", "));
        for op in &a.ops {
            let _ = writeln!(out, "    {}", print_op(op));
        }
        let _ = writeln!(out, "}}");
    }

    for t in p.tables.values() {
        let _ = writeln!(out, "table {} {{", t.name);
        let _ = writeln!(out, "    key = {{");
        for k in &t.keys {
            let _ = writeln!(out, "        {}: {};", k.field, match_kind(k.kind));
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    actions = {{ {} }};", t.actions.join("; "));
        let _ = writeln!(out, "    default_action = {}();", t.default_action);
        let _ = writeln!(out, "    size = {};", t.size);
        let _ = writeln!(out, "}}");
    }

    for c in p.controls.values() {
        let marker = if c.name == p.entry { " // entry" } else { "" };
        let _ = writeln!(
            out,
            "control {}(inout all_headers_t hdr) {{{marker}",
            c.name
        );
        let _ = writeln!(out, "    apply {{");
        for s in &c.body {
            print_stmt(&mut out, s, 2);
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "}}");
    }
    out
}

fn target_name(p: &Program, t: Target) -> String {
    match t {
        Target::Accept => "accept".into(),
        Target::Reject => "reject".into(),
        Target::Node(i) => {
            let n = &p.parser.nodes[i];
            format!("parse_{}_{}", n.header_type, n.offset)
        }
    }
}

fn match_kind(k: MatchKind) -> &'static str {
    match k {
        MatchKind::Exact => "exact",
        MatchKind::Ternary => "ternary",
        MatchKind::Lpm => "lpm",
        MatchKind::Range => "range",
    }
}

fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Const(v) => format!("{:#x}", v.raw()),
        Expr::Field(fr) => fr.to_string(),
        Expr::Param(p) => p.clone(),
        Expr::Add(a, b) => format!("({} + {})", print_expr(a), print_expr(b)),
        Expr::Sub(a, b) => format!("({} - {})", print_expr(a), print_expr(b)),
        Expr::And(a, b) => format!("({} & {})", print_expr(a), print_expr(b)),
        Expr::Or(a, b) => format!("({} | {})", print_expr(a), print_expr(b)),
        Expr::Xor(a, b) => format!("({} ^ {})", print_expr(a), print_expr(b)),
        Expr::Shl(a, n) => format!("({} << {n})", print_expr(a)),
        Expr::Shr(a, n) => format!("({} >> {n})", print_expr(a)),
    }
}

fn print_op(op: &PrimitiveOp) -> String {
    match op {
        PrimitiveOp::Set { dst, value } => format!("{dst} = {};", print_expr(value)),
        PrimitiveOp::Hash { dst, algo, inputs } => {
            let algo = match algo {
                HashAlgorithm::Crc32 => "crc32",
                HashAlgorithm::Crc16 => "crc16",
                HashAlgorithm::XorFold => "xor_fold",
                HashAlgorithm::Identity => "identity",
            };
            let inputs: Vec<String> = inputs.iter().map(print_expr).collect();
            format!("{dst} = hash_{algo}({{{}}});", inputs.join(", "))
        }
        PrimitiveOp::AddHeader { header, before } => match before {
            Some(b) => format!("hdr.{header}.setValid(); // inserted before {b}"),
            None => format!("hdr.{header}.setValid();"),
        },
        PrimitiveOp::RemoveHeader { header } => format!("hdr.{header}.setInvalid();"),
        PrimitiveOp::RemoveHeaderNth { header, occurrence } => {
            format!("hdr.{header}[{occurrence}].setInvalid();")
        }
        PrimitiveOp::RegisterRead {
            dst,
            register,
            index,
        } => {
            format!("{register}.read({dst}, {});", print_expr(index))
        }
        PrimitiveOp::RegisterWrite {
            register,
            index,
            value,
        } => {
            format!(
                "{register}.write({}, {});",
                print_expr(index),
                print_expr(value)
            )
        }
        PrimitiveOp::Ipv4ChecksumUpdate { header } => {
            format!("update_checksum(hdr.{header});")
        }
        PrimitiveOp::Digest { name, fields } => {
            let fields: Vec<String> = fields.iter().map(print_expr).collect();
            format!("digest<{name}>({{{}}});", fields.join(", "))
        }
        PrimitiveOp::Drop => "mark_to_drop();".into(),
        PrimitiveOp::NoOp => "/* no-op */".into(),
    }
}

fn print_bool(b: &BoolExpr) -> String {
    match b {
        BoolExpr::Cmp(a, op, c) => {
            let op = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {op} {}", print_expr(a), print_expr(c))
        }
        BoolExpr::And(a, b) => format!("({} && {})", print_bool(a), print_bool(b)),
        BoolExpr::Or(a, b) => format!("({} || {})", print_bool(a), print_bool(b)),
        BoolExpr::Not(a) => format!("!({})", print_bool(a)),
        BoolExpr::Valid(h) => format!("hdr.{h}.isValid()"),
    }
}

fn print_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Apply(t) => {
            let _ = writeln!(out, "{pad}{t}.apply();");
        }
        Stmt::ApplySelect {
            table,
            arms,
            default,
        } => {
            let _ = writeln!(out, "{pad}switch ({table}.apply().action_run) {{");
            for (a, b) in arms {
                let _ = writeln!(out, "{pad}    {a}: {{");
                for s in b {
                    print_stmt(out, s, indent + 2);
                }
                let _ = writeln!(out, "{pad}    }}");
            }
            if !default.is_empty() {
                let _ = writeln!(out, "{pad}    default: {{");
                for s in default {
                    print_stmt(out, s, indent + 2);
                }
                let _ = writeln!(out, "{pad}    }}");
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", print_bool(cond));
            for s in then_branch {
                print_stmt(out, s, indent + 1);
            }
            if else_branch.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_branch {
                    print_stmt(out, s, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::Do(a) => {
            let _ = writeln!(out, "{pad}{a}();");
        }
        Stmt::Call(c) => {
            let _ = writeln!(out, "{pad}{c}.apply(hdr);");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::header::fref;
    use crate::well_known;
    use crate::FieldRef;

    fn sample() -> Program {
        ProgramBuilder::new("printme")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .meta_field("mark", 8)
            .register("counter", 32, 64)
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("count_and_mark")
                    .reg_read(FieldRef::meta("mark"), "counter", Expr::val(0, 32))
                    .reg_write("counter", Expr::val(0, 32), Expr::val(1, 32))
                    .set(fref("ipv4", "dscp"), Expr::val(7, 6))
                    .build(),
            )
            .action(ActionBuilder::new("nop").build())
            .table(
                TableBuilder::new("t")
                    .key_lpm(fref("ipv4", "dst_addr"))
                    .action("count_and_mark")
                    .default_action("nop")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("t").build())
            .entry("ingress")
            .build()
            .unwrap()
    }

    #[test]
    fn printer_covers_all_constructs() {
        let text = print_program(&sample());
        for needle in [
            "header ethernet {",
            "bit<48> dst_mac;",
            "struct metadata {",
            "Register<bit<32>>(64) counter;",
            "state parse_ethernet_0",
            "transition select(hdr.ethernet.ether_type)",
            "0x800: parse_ipv4_14;",
            "action count_and_mark(",
            "counter.read(meta.mark, 0x0);",
            "counter.write(0x0, 0x1);",
            "table t {",
            "ipv4.dst_addr: lpm;",
            "default_action = nop();",
            "control ingress(inout all_headers_t hdr) { // entry",
            "t.apply();",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn printer_is_deterministic() {
        assert_eq!(print_program(&sample()), print_program(&sample()));
    }
}
