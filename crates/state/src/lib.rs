//! Flow-state runtime: portable snapshots of a pipelet's mutable state.
//!
//! An NF's dataplane state — dynamically learned table entries and register
//! file contents — outlives any single program binary. This crate gives that
//! state a representation of its own, decoupled from the executor:
//!
//! * [`StateSnapshot`] captures every dynamic table entry and register cell
//!   of one pipelet, together with the logical clock and per-table aging
//!   configuration, under an explicit format version.
//! * [`snapshot::to_json`] / [`snapshot::from_json`] round-trip a snapshot
//!   through plain JSON so state can be exported for inspection, shipped to
//!   a standby switch, or diffed in CI.
//! * [`MigrationReport`] accounts for what happened when a snapshot was
//!   remapped onto a (possibly different) program during a hitless upgrade:
//!   how many entries and registers survived, and exactly which were dropped
//!   and why.
//!
//! The crate deliberately depends only on the IR (`dejavu-p4ir`) plus the
//! telemetry crate's self-contained JSON parser: both the ASIC model (which
//! produces and consumes snapshots) and the control plane (which orchestrates
//! migration) link against it without creating dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod migrate;
pub mod snapshot;

pub use migrate::{DroppedEntry, MigrationReport};
pub use snapshot::{RegisterSnapshot, StateSnapshot, TableSnapshot, SNAPSHOT_FORMAT_VERSION};
