//! Versioned snapshots of pipelet state and their JSON round-trip.
//!
//! A [`StateSnapshot`] is the unit of state migration: everything the
//! control plane needs to rebuild a pipelet's dynamic state on a freshly
//! loaded program (or a different switch). Tables are keyed by their merged
//! name (`<nf>__<table>`), so remapping after an NF upgrade is a plain name
//! lookup — entries whose table vanished or changed shape are reported, not
//! silently discarded (see [`crate::migrate`]).
//!
//! The JSON encoding is hand-rolled on the write side and parsed back with
//! `dejavu-telemetry`'s self-contained parser (the workspace `serde_json`
//! shim is write-only). `u128` raw values are encoded as decimal *strings*
//! so register cells and match values wider than 64 bits survive the trip.

use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::Value;
use dejavu_telemetry::parse_json;
use serde::json::Value as Json;
use std::fmt::Write as _;

/// Current snapshot format version. Bump on any incompatible change to the
/// JSON layout; [`from_json`] rejects versions it does not understand.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Dynamic state of one table: its installed entries plus the aging
/// configuration in force when the snapshot was taken.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Merged table name (`<nf>__<table>` after composition).
    pub name: String,
    /// Idle timeout in logical ticks, when aging was enabled.
    pub idle_timeout: Option<u64>,
    /// Installed entries, in install order.
    pub entries: Vec<TableEntry>,
}

/// Contents of one register array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterSnapshot {
    /// Register name (`<nf>__<register>` after composition).
    pub name: String,
    /// Cell values, index order. Length equals the declared array size.
    pub cells: Vec<u128>,
}

/// A complete, versioned capture of one pipelet's mutable dataplane state.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSnapshot {
    /// Format version ([`SNAPSHOT_FORMAT_VERSION`] when produced here).
    pub version: u32,
    /// Name of the program the state was captured from (informational).
    pub program: String,
    /// Logical clock at capture time, so aging continuity survives
    /// migration.
    pub clock: u64,
    /// Per-table dynamic state, in table registration order.
    pub tables: Vec<TableSnapshot>,
    /// Register file contents, one per register array.
    pub registers: Vec<RegisterSnapshot>,
}

impl StateSnapshot {
    /// An empty snapshot for a program (no entries, no registers, clock 0).
    pub fn empty(program: impl Into<String>) -> Self {
        StateSnapshot {
            version: SNAPSHOT_FORMAT_VERSION,
            program: program.into(),
            clock: 0,
            tables: Vec::new(),
            registers: Vec::new(),
        }
    }

    /// Total dynamic entries across all tables.
    pub fn total_entries(&self) -> usize {
        self.tables.iter().map(|t| t.entries.len()).sum()
    }

    /// The table snapshot with the given merged name, if present.
    pub fn table(&self, name: &str) -> Option<&TableSnapshot> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Serializes to the versioned JSON format.
    pub fn to_json(&self) -> String {
        to_json(self)
    }

    /// Parses the versioned JSON format back into a snapshot.
    pub fn from_json(text: &str) -> Result<Self, String> {
        from_json(text)
    }
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: Value) {
    let _ = write!(out, "{{\"raw\":\"{}\",\"bits\":{}}}", v.raw(), v.bits());
}

fn write_key_match(out: &mut String, m: &KeyMatch) {
    match m {
        KeyMatch::Exact(v) => {
            out.push_str("{\"kind\":\"exact\",\"value\":");
            write_value(out, *v);
            out.push('}');
        }
        KeyMatch::Ternary(v, mask) => {
            out.push_str("{\"kind\":\"ternary\",\"value\":");
            write_value(out, *v);
            out.push_str(",\"mask\":");
            write_value(out, *mask);
            out.push('}');
        }
        KeyMatch::Lpm(prefix, len) => {
            out.push_str("{\"kind\":\"lpm\",\"prefix\":");
            write_value(out, *prefix);
            let _ = write!(out, ",\"len\":{len}}}");
        }
        KeyMatch::Range(lo, hi) => {
            out.push_str("{\"kind\":\"range\",\"lo\":");
            write_value(out, *lo);
            out.push_str(",\"hi\":");
            write_value(out, *hi);
            out.push('}');
        }
        KeyMatch::Any => out.push_str("{\"kind\":\"any\"}"),
    }
}

fn write_entry(out: &mut String, e: &TableEntry) {
    out.push_str("{\"matches\":[");
    for (i, m) in e.matches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key_match(out, m);
    }
    let _ = write!(out, "],\"action\":\"{}\",\"args\":[", escape(&e.action));
    for (i, a) in e.action_args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_value(out, *a);
    }
    let _ = write!(out, "],\"priority\":{}}}", e.priority);
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes a snapshot to the versioned JSON format.
pub fn to_json(snap: &StateSnapshot) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"version\":{},\"program\":\"{}\",\"clock\":{},\"tables\":[",
        snap.version,
        escape(&snap.program),
        snap.clock
    );
    for (i, t) in snap.tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",\"idle_timeout\":", escape(&t.name));
        match t.idle_timeout {
            Some(ticks) => {
                let _ = write!(out, "{ticks}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"entries\":[");
        for (j, e) in t.entries.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_entry(&mut out, e);
        }
        out.push_str("]}");
    }
    out.push_str("],\"registers\":[");
    for (i, r) in snap.registers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",\"cells\":[", escape(&r.name));
        for (j, c) in r.cells.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{c}\"");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------- parsing

fn field<'a>(obj: &'a [(String, Json)], name: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {name:?}"))
}

fn as_object(v: &Json) -> Result<&[(String, Json)], String> {
    match v {
        Json::Object(fields) => Ok(fields),
        other => Err(format!("expected object, got {other:?}")),
    }
}

fn as_array(v: &Json) -> Result<&[Json], String> {
    match v {
        Json::Array(items) => Ok(items),
        other => Err(format!("expected array, got {other:?}")),
    }
}

fn as_str(v: &Json) -> Result<&str, String> {
    match v {
        Json::Str(s) => Ok(s),
        other => Err(format!("expected string, got {other:?}")),
    }
}

fn as_u64(v: &Json) -> Result<u64, String> {
    match v {
        Json::UInt(u) => Ok(*u),
        Json::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(format!("expected unsigned number, got {other:?}")),
    }
}

fn as_i32(v: &Json) -> Result<i32, String> {
    match v {
        Json::UInt(u) => i32::try_from(*u).map_err(|_| format!("priority {u} out of range")),
        Json::Int(i) => i32::try_from(*i).map_err(|_| format!("priority {i} out of range")),
        other => Err(format!("expected integer, got {other:?}")),
    }
}

/// Raw values are encoded as decimal strings so the full `u128` range
/// survives the shim's `u64` number representation.
fn as_u128(v: &Json) -> Result<u128, String> {
    match v {
        Json::Str(s) => s
            .parse::<u128>()
            .map_err(|e| format!("bad u128 {s:?}: {e}")),
        Json::UInt(u) => Ok(u128::from(*u)),
        other => Err(format!("expected u128 string, got {other:?}")),
    }
}

fn parse_value(v: &Json) -> Result<Value, String> {
    let obj = as_object(v)?;
    let raw = as_u128(field(obj, "raw")?)?;
    let bits = as_u64(field(obj, "bits")?)?;
    let bits = u16::try_from(bits).map_err(|_| format!("width {bits} out of range"))?;
    Ok(Value::new(raw, bits))
}

fn parse_key_match(v: &Json) -> Result<KeyMatch, String> {
    let obj = as_object(v)?;
    match as_str(field(obj, "kind")?)? {
        "exact" => Ok(KeyMatch::Exact(parse_value(field(obj, "value")?)?)),
        "ternary" => Ok(KeyMatch::Ternary(
            parse_value(field(obj, "value")?)?,
            parse_value(field(obj, "mask")?)?,
        )),
        "lpm" => {
            let len = as_u64(field(obj, "len")?)?;
            let len = u16::try_from(len).map_err(|_| format!("prefix len {len} out of range"))?;
            Ok(KeyMatch::Lpm(parse_value(field(obj, "prefix")?)?, len))
        }
        "range" => Ok(KeyMatch::Range(
            parse_value(field(obj, "lo")?)?,
            parse_value(field(obj, "hi")?)?,
        )),
        "any" => Ok(KeyMatch::Any),
        other => Err(format!("unknown match kind {other:?}")),
    }
}

fn parse_entry(v: &Json) -> Result<TableEntry, String> {
    let obj = as_object(v)?;
    let matches = as_array(field(obj, "matches")?)?
        .iter()
        .map(parse_key_match)
        .collect::<Result<Vec<_>, _>>()?;
    let action = as_str(field(obj, "action")?)?.to_string();
    let action_args = as_array(field(obj, "args")?)?
        .iter()
        .map(parse_value)
        .collect::<Result<Vec<_>, _>>()?;
    let priority = as_i32(field(obj, "priority")?)?;
    Ok(TableEntry {
        matches,
        action,
        action_args,
        priority,
    })
}

/// Parses the versioned JSON format back into a [`StateSnapshot`].
pub fn from_json(text: &str) -> Result<StateSnapshot, String> {
    let root = parse_json(text)?;
    let obj = as_object(&root)?;
    let version = u32::try_from(as_u64(field(obj, "version")?)?)
        .map_err(|_| "version out of range".to_string())?;
    if version != SNAPSHOT_FORMAT_VERSION {
        return Err(format!(
            "unsupported snapshot version {version} (this build reads {SNAPSHOT_FORMAT_VERSION})"
        ));
    }
    let program = as_str(field(obj, "program")?)?.to_string();
    let clock = as_u64(field(obj, "clock")?)?;
    let mut tables = Vec::new();
    for t in as_array(field(obj, "tables")?)? {
        let tobj = as_object(t)?;
        let idle_timeout = match field(tobj, "idle_timeout")? {
            Json::Null => None,
            other => Some(as_u64(other)?),
        };
        tables.push(TableSnapshot {
            name: as_str(field(tobj, "name")?)?.to_string(),
            idle_timeout,
            entries: as_array(field(tobj, "entries")?)?
                .iter()
                .map(parse_entry)
                .collect::<Result<Vec<_>, _>>()?,
        });
    }
    let mut registers = Vec::new();
    for r in as_array(field(obj, "registers")?)? {
        let robj = as_object(r)?;
        registers.push(RegisterSnapshot {
            name: as_str(field(robj, "name")?)?.to_string(),
            cells: as_array(field(robj, "cells")?)?
                .iter()
                .map(as_u128)
                .collect::<Result<Vec<_>, _>>()?,
        });
    }
    Ok(StateSnapshot {
        version,
        program,
        clock,
        tables,
        registers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StateSnapshot {
        StateSnapshot {
            version: SNAPSHOT_FORMAT_VERSION,
            program: "nat\"v2\"".to_string(),
            clock: 42,
            tables: vec![
                TableSnapshot {
                    name: "nat__nat_in".to_string(),
                    idle_timeout: Some(30),
                    entries: vec![TableEntry {
                        matches: vec![
                            KeyMatch::Exact(Value::new(0x0a000001, 32)),
                            KeyMatch::Lpm(Value::new(0x0a000000, 32), 8),
                            KeyMatch::Ternary(Value::new(0x50, 16), Value::new(0xffff, 16)),
                            KeyMatch::Range(Value::new(1, 16), Value::new(1024, 16)),
                            KeyMatch::Any,
                        ],
                        action: "restore_dst".to_string(),
                        action_args: vec![Value::new(u128::MAX, 128)],
                        priority: -3,
                    }],
                },
                TableSnapshot {
                    name: "nat__empty".to_string(),
                    idle_timeout: None,
                    entries: vec![],
                },
            ],
            registers: vec![RegisterSnapshot {
                name: "lb__backends".to_string(),
                cells: vec![0, u128::MAX, 7],
            }],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let text = snap.to_json();
        let back = StateSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn rejects_unknown_version() {
        let mut snap = sample();
        snap.version = 99;
        let err = StateSnapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(StateSnapshot::from_json("{}").is_err());
        assert!(StateSnapshot::from_json("not json").is_err());
        assert!(StateSnapshot::from_json(r#"{"version":1}"#).is_err());
    }

    #[test]
    fn u128_values_survive_the_shim() {
        let snap = sample();
        let back = StateSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.registers[0].cells[1], u128::MAX);
        assert_eq!(back.tables[0].entries[0].action_args[0].raw(), u128::MAX);
    }

    #[test]
    fn helpers_report_shape() {
        let snap = sample();
        assert_eq!(snap.total_entries(), 1);
        assert!(snap.table("nat__nat_in").is_some());
        assert!(snap.table("absent").is_none());
        assert_eq!(StateSnapshot::empty("x").total_entries(), 0);
    }
}
