//! Accounting for state migration across a program swap.
//!
//! When the control plane upgrades an NF in place, the freshly loaded
//! program gets a *new* table state; surviving state from the old program
//! is remapped onto it by merged name. Remapping is lossy by design — a
//! table may have been renamed, dropped, or reshaped — and the one thing a
//! hitless upgrade must never do is lose state *silently*. A
//! [`MigrationReport`] records exactly what was restored and what was
//! dropped (with the reason), so operators and tests can assert on it.

use dejavu_p4ir::table::TableEntry;

/// One entry that could not be carried across a migration, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct DroppedEntry {
    /// Merged table name the entry belonged to.
    pub table: String,
    /// The entry itself, so it can be logged or re-learned.
    pub entry: TableEntry,
    /// Human-readable reason (`"table not in new program"`,
    /// `"action no longer defined"`, ...).
    pub reason: String,
}

/// Outcome of remapping a [`crate::StateSnapshot`] onto a program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationReport {
    /// Entries successfully reinstalled into the new program's tables.
    pub restored_entries: usize,
    /// Tables from the snapshot that exist (by merged name) in the new
    /// program and received at least their aging configuration.
    pub remapped_tables: usize,
    /// Register arrays whose cells were restored.
    pub restored_registers: usize,
    /// Entries that could not be carried over, with reasons.
    pub dropped_entries: Vec<DroppedEntry>,
    /// Snapshot registers absent from the new program.
    pub dropped_registers: Vec<String>,
}

impl MigrationReport {
    /// True when nothing was lost: every entry and register in the snapshot
    /// made it into the new program.
    pub fn is_clean(&self) -> bool {
        self.dropped_entries.is_empty() && self.dropped_registers.is_empty()
    }

    /// Records a dropped entry.
    pub fn drop_entry(
        &mut self,
        table: impl Into<String>,
        entry: TableEntry,
        reason: impl Into<String>,
    ) {
        self.dropped_entries.push(DroppedEntry {
            table: table.into(),
            entry,
            reason: reason.into(),
        });
    }

    /// Folds another report into this one (a deployment-level migration is
    /// the merge of its per-pipelet migrations).
    pub fn merge(&mut self, other: MigrationReport) {
        self.restored_entries += other.restored_entries;
        self.remapped_tables += other.remapped_tables;
        self.restored_registers += other.restored_registers;
        self.dropped_entries.extend(other.dropped_entries);
        self.dropped_registers.extend(other.dropped_registers);
    }

    /// One-line operator summary.
    pub fn summary(&self) -> String {
        format!(
            "{} entries restored across {} tables, {} registers restored, {} entries dropped, {} registers dropped",
            self.restored_entries,
            self.remapped_tables,
            self.restored_registers,
            self.dropped_entries.len(),
            self.dropped_registers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::table::KeyMatch;
    use dejavu_p4ir::Value;

    fn entry() -> TableEntry {
        TableEntry {
            matches: vec![KeyMatch::Exact(Value::new(1, 32))],
            action: "fwd".to_string(),
            action_args: vec![],
            priority: 0,
        }
    }

    #[test]
    fn clean_until_something_drops() {
        let mut r = MigrationReport {
            restored_entries: 3,
            remapped_tables: 1,
            ..Default::default()
        };
        assert!(r.is_clean());
        r.drop_entry("nat__nat_in", entry(), "table not in new program");
        assert!(!r.is_clean());
        assert_eq!(r.dropped_entries[0].table, "nat__nat_in");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MigrationReport {
            restored_entries: 2,
            remapped_tables: 1,
            restored_registers: 1,
            ..Default::default()
        };
        let mut b = MigrationReport::default();
        b.drop_entry("t", entry(), "x");
        b.dropped_registers.push("r".to_string());
        a.merge(b);
        assert_eq!(a.restored_entries, 2);
        assert_eq!(a.dropped_entries.len(), 1);
        assert_eq!(a.dropped_registers, vec!["r".to_string()]);
        assert!(a.summary().contains("2 entries restored"));
    }
}
