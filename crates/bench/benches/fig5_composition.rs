//! Fig. 5 — sequential vs parallel composition of LB and FW on one pipelet.
//!
//! The paper's trade-off (§3.2): sequential composition runs several chain
//! hops per pass but its implicit dependencies force more MAU stages;
//! parallel composition shares stages but crossing branches costs a
//! resubmission (ingress) or recirculation (egress). We compose the actual
//! LB and FW NFs both ways, compile both programs, and measure the stage
//! footprint and the transition cost on the simulated switch.

use dejavu_asic::{PipeletId, TofinoProfile};
use dejavu_bench::{banner, row, write_json};
use dejavu_compiler::StageAllocator;
use dejavu_core::compose::{compose_pipelet, CompositionMode, PipeletPlan, PlannedNf};
use dejavu_core::merge::merge_programs;
use dejavu_core::placement::{traverse, Placement};
use dejavu_core::{ChainPolicy, ChainSet};
use dejavu_nf::{firewall, load_balancer};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    mode: String,
    stage_span: usize,
    dependency_min_stages: u32,
    branch_transition_resubmissions: u32,
}

fn main() {
    banner(
        "Fig. 5",
        "sequential vs parallel composition (LB + FW, one ingress pipelet)",
    );
    let lb = load_balancer::load_balancer();
    let fw = firewall::firewall();
    let merged = merge_programs("fig5", &[&lb, &fw]).unwrap();
    let allocator = StageAllocator::new(TofinoProfile::wedge_100b_32x());

    let mut records = Vec::new();
    for mode in [CompositionMode::Sequential, CompositionMode::Parallel] {
        let plan = PipeletPlan {
            pipelet: PipeletId::ingress(0),
            nfs: vec![PlannedNf::indexed("lb"), PlannedNf::indexed("firewall")],
            mode,
        };
        let program = compose_pipelet(&merged, &plan).unwrap();
        let alloc = allocator
            .clone()
            .with_lint_config(dejavu_core::lint::pipelet_lint_config(&program, &plan))
            .compile(&program)
            .unwrap();
        let deps = dejavu_p4ir::DependencyGraph::build(&program);

        // Branch-transition cost: a chain that runs FW then LB (against the
        // slot order), on this pipelet, under this mode.
        let chains = ChainSet::new(vec![ChainPolicy::new(
            1,
            "fw-then-lb",
            vec!["firewall", "lb"],
            1.0,
        )])
        .unwrap();
        let mut placement =
            Placement::sequential(vec![(PipeletId::ingress(0), vec!["lb", "firewall"])]);
        placement.modes.insert(PipeletId::ingress(0), mode);
        let cost = traverse(&chains.chains[0], &placement, 0, 0, false).unwrap();

        let mode_name = format!("{mode:?}");
        row(
            &format!("{mode_name}: stage span"),
            "seq > par (trade-off)",
            &format!(
                "{} stages (dep floor {})",
                alloc.stage_span(),
                deps.min_stages()
            ),
        );
        row(
            &format!("{mode_name}: cross-branch transition"),
            "≥1 resubmission",
            &format!("{} resubmissions", cost.resubmissions),
        );
        records.push(Record {
            mode: mode_name,
            stage_span: alloc.stage_span(),
            dependency_min_stages: deps.min_stages(),
            branch_transition_resubmissions: cost.resubmissions,
        });
    }

    // The paper's trade-off, asserted.
    assert!(
        records[0].stage_span >= records[1].stage_span,
        "sequential should need at least as many stages as parallel"
    );
    assert!(
        records[1].branch_transition_resubmissions >= 1,
        "parallel branch transition costs a resubmission"
    );

    write_json("fig5_composition", &records);
    println!("\n  SHAPE CHECK: sequential = more stages / free in-order transitions; parallel = fewer stages / loop per branch switch.");
}
