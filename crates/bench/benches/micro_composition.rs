//! Criterion micro-benchmark: program merging and pipelet composition cost.

use criterion::{criterion_group, criterion_main, Criterion};
use dejavu_asic::{PipeletId, TofinoProfile};
use dejavu_compiler::StageAllocator;
use dejavu_core::compose::{compose_pipelet, CompositionMode, PipeletPlan, PlannedNf};
use dejavu_core::merge::merge_programs;
use dejavu_nf::edge_cloud_suite;

fn bench_composition(c: &mut Criterion) {
    let suite = edge_cloud_suite();
    let refs: Vec<_> = suite.iter().collect();
    let mut group = c.benchmark_group("composition");
    group.bench_function("merge_5_nfs", |b| {
        b.iter(|| merge_programs("bench", &refs).unwrap())
    });

    let merged = merge_programs("bench", &refs).unwrap();
    let plan = PipeletPlan {
        pipelet: PipeletId::ingress(0),
        nfs: vec![
            PlannedNf::entry("classifier"),
            PlannedNf::indexed("firewall"),
        ],
        mode: CompositionMode::Sequential,
    };
    group.bench_function("compose_pipelet", |b| {
        b.iter(|| compose_pipelet(&merged, &plan).unwrap())
    });

    let program = compose_pipelet(&merged, &plan).unwrap();
    let allocator = StageAllocator::new(TofinoProfile::wedge_100b_32x());
    let allocator =
        allocator.with_lint_config(dejavu_core::lint::pipelet_lint_config(&program, &plan));
    group.bench_function("compile_pipelet", |b| {
        b.iter(|| allocator.compile(&program).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_composition
}
criterion_main!(benches);
