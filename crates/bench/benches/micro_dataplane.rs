//! Criterion micro-benchmark: simulated data-plane packet rate through the
//! deployed 5-NF prototype (full parse → chain → deparse per pipelet pass).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dejavu_integration::{chain_packet, fig9_testbed, IN_PORT};
use dejavu_nf::load_balancer::{five_tuple_of, session_entry_for, SESSION_TABLE};

fn bench_dataplane(c: &mut Criterion) {
    let (mut switch, dep) = fig9_testbed();
    let pkt1 = chain_packet(1, 0xc633_6450, 80);
    let tuple = five_tuple_of(&pkt1).unwrap();
    dep.install(
        &mut switch,
        "lb",
        SESSION_TABLE,
        session_entry_for(&tuple, 0x0a63_0001),
    )
    .unwrap();

    let mut group = c.benchmark_group("dataplane");
    group.throughput(Throughput::Elements(1));
    let pkt3 = chain_packet(3, 0xc633_6450, 80);
    group.bench_function("path3_classifier_router", |b| {
        b.iter(|| switch.inject(pkt3.clone(), IN_PORT).unwrap())
    });
    group.bench_function("path1_full_5nf_chain", |b| {
        b.iter(|| switch.inject(pkt1.clone(), IN_PORT).unwrap())
    });
    let deny = chain_packet(1, 0xc633_6450, 22);
    group.bench_function("firewall_drop_path", |b| {
        b.iter(|| switch.inject(deny.clone(), IN_PORT).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dataplane
}
criterion_main!(benches);
