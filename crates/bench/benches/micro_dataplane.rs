//! Criterion micro-benchmark: simulated data-plane packet rate.
//!
//! Two parts:
//!
//! 1. The original fig9 prototype passes (full parse → chain → deparse per
//!    pipelet pass) under Criterion.
//! 2. A table-size sweep (1 / 100 / 10k entries, plus a 100k ternary point
//!    and a 10k ACL-shaped src×dst ruleset) comparing the reference
//!    interpreter against the compiled fast path, single vs batched
//!    injection. Modes are measured in interleaved rounds so machine drift
//!    cannot bias one mode. The sweep emits a machine-readable record to
//!    `target/experiments/BENCH_dataplane.json`
//!    (`scripts/bench_dataplane.sh` copies it to the repo root).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dejavu_asic::{
    ExecMode, InjectedPacket, PipeletId, RtcConfig, RtcSession, Switch, TofinoProfile,
};
use dejavu_bench::{banner, row, write_json};
use dejavu_integration::{chain_packet, fig9_testbed, IN_PORT};
use dejavu_nf::load_balancer::{five_tuple_of, session_entry_for, SESSION_TABLE};
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::{fref, well_known, Expr, FieldRef, Program, Value};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Counting global allocator, compiled in only under `--features
/// count-allocs`: the sweep's `allocs_per_packet` probe. The asic crates
/// stay `forbid(unsafe_code)`; this bench-target-only shim is the one
/// place the harness touches the allocator API, and it delegates verbatim
/// to [`std::alloc::System`] — the sole addition is a relaxed counter.
#[cfg(feature = "count-allocs")]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Heap allocations (incl. reallocations) since process start.
    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: every method forwards to `System` unchanged; bumping a
    // relaxed atomic cannot violate any allocator contract.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTER: CountingAlloc = CountingAlloc;
}

/// Allocations so far, or `None` when the counting allocator is not
/// compiled in (plain `cargo bench` without the feature).
fn alloc_count() -> Option<u64> {
    #[cfg(feature = "count-allocs")]
    {
        Some(alloc_counter::ALLOCS.load(std::sync::atomic::Ordering::Relaxed))
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        None
    }
}

fn bench_dataplane(c: &mut Criterion) {
    let (mut switch, dep) = fig9_testbed();
    let pkt1 = chain_packet(1, 0xc633_6450, 80);
    let tuple = five_tuple_of(&pkt1).unwrap();
    dep.install(
        &mut switch,
        "lb",
        SESSION_TABLE,
        session_entry_for(&tuple, 0x0a63_0001),
    )
    .unwrap();

    let mut group = c.benchmark_group("dataplane");
    group.throughput(Throughput::Elements(1));
    let pkt3 = chain_packet(3, 0xc633_6450, 80);
    group.bench_function("path3_classifier_router", |b| {
        b.iter(|| {
            switch
                .inject(InjectedPacket::new(pkt3.clone(), IN_PORT))
                .unwrap()
        })
    });
    group.bench_function("path1_full_5nf_chain", |b| {
        b.iter(|| {
            switch
                .inject(InjectedPacket::new(pkt1.clone(), IN_PORT))
                .unwrap()
        })
    });
    let deny = chain_packet(1, 0xc633_6450, 22);
    group.bench_function("firewall_drop_path", |b| {
        b.iter(|| {
            switch
                .inject(InjectedPacket::new(deny.clone(), IN_PORT))
                .unwrap()
        })
    });
    group.finish();
}

// ---------------------------------------------------------------------
// Table-size sweep: reference vs compiled, single vs batched
// ---------------------------------------------------------------------

const KINDS: [&str; 4] = ["exact", "lpm", "ternary", "acl"];
/// Distinct packets cycled during measurement (spread across the table).
const PACKET_POOL: usize = 256;
/// Modes are measured in interleaved rounds (ref, compiled, batch, ref, …)
/// so slow machine drift (thermal, scheduler) hits every mode equally —
/// a fixed measurement order had made whichever mode ran last look slower
/// (the "batch slower than single" artifact documented in DESIGN.md).
const ROUNDS: u32 = 3;

/// Smoke mode for CI: `DEJAVU_BENCH_QUICK=1` shrinks budgets and skips the
/// 100k point so every PR exercises the sweep end-to-end in seconds.
fn quick() -> bool {
    std::env::var_os("DEJAVU_BENCH_QUICK").is_some()
}

/// Wall-clock budget per (config, mode) measurement, split across rounds.
fn budget() -> Duration {
    if quick() {
        Duration::from_millis(25)
    } else {
        Duration::from_millis(250)
    }
}

/// Table sizes swept per kind. Ternary gets a 100k point to show the index
/// holding up two orders of magnitude past the old scan cliff; the
/// ACL-shaped two-field ruleset is only interesting at scale.
fn sizes_for(kind: &str) -> &'static [usize] {
    match kind {
        "ternary" => &[1, 100, 10_000, 100_000],
        "acl" => &[10_000],
        _ => &[1, 100, 10_000],
    }
}

fn sweep_program(kind: &str, entries: usize) -> Program {
    let mut tb = TableBuilder::new("sweep");
    tb = match kind {
        "exact" => tb.key_exact(fref("ethernet", "dst_mac")),
        "lpm" => tb.key_lpm(fref("ipv4", "dst_addr")),
        "ternary" => tb.key_ternary(fref("ipv4", "dst_addr")),
        // ACL shape: source × destination ternary pair, the paper's
        // firewall/classifier NFs.
        "acl" => tb
            .key_ternary(fref("ipv4", "src_addr"))
            .key_ternary(fref("ipv4", "dst_addr")),
        other => unreachable!("unknown kind {other}"),
    };
    ProgramBuilder::new("sweep")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("fwd")
                .param("port", 16)
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(ActionBuilder::new("deny").drop_packet().build())
        .table(
            tb.action("fwd")
                .default_action("deny")
                .size(entries.max(1024) as u32 * 2)
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("sweep").build())
        .entry("ingress")
        .build()
        .expect("sweep program validates")
}

fn sweep_entry(kind: &str, i: usize) -> KeyMatch {
    match kind {
        "exact" => KeyMatch::Exact(Value::new(i as u128, 48)),
        // Distinct /24 prefixes under 10.0.0.0/8.
        "lpm" => KeyMatch::Lpm(Value::new(0x0a00_0000 | ((i as u128) << 8), 32), 24),
        "ternary" => KeyMatch::Ternary(
            Value::new(0x0a00_0000 | ((i as u128) << 8), 32),
            Value::new(0xffff_ff00, 32),
        ),
        other => unreachable!("unknown kind {other}"),
    }
}

fn sweep_packet(kind: &str, i: usize) -> Vec<u8> {
    let mut p = dejavu_traffic::PacketBuilder::udp()
        .src_ip(0x0a00_0001)
        .dst_ip(0x0a00_0000 | ((i as u32) << 8) | 1)
        .src_port(1000)
        .dst_port(53)
        .payload(&[0u8; 18])
        .build();
    if kind == "exact" {
        p[..6].copy_from_slice(&(i as u64).to_be_bytes()[2..]);
    }
    p
}

/// A switch with one `kind` table of `entries` entries, plus a pool of
/// packets that all hit (cycling across the installed entries).
fn sweep_testbed(kind: &str, entries: usize) -> (Switch, Vec<InjectedPacket>) {
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.load_program(PipeletId::ingress(0), sweep_program(kind, entries))
        .unwrap();
    let n = entries.max(1);
    let pool_size = PACKET_POOL.min(n);
    if kind == "acl" {
        let rules = dejavu_traffic::acl_ruleset(entries, 0xac1);
        for r in &rules {
            sw.install_entry(
                PipeletId::ingress(0),
                "sweep",
                TableEntry {
                    matches: vec![
                        KeyMatch::Ternary(
                            Value::new(u128::from(r.src_val), 32),
                            Value::new(u128::from(r.src_mask), 32),
                        ),
                        KeyMatch::Ternary(
                            Value::new(u128::from(r.dst_val), 32),
                            Value::new(u128::from(r.dst_mask), 32),
                        ),
                    ],
                    action: "fwd".into(),
                    action_args: vec![Value::new(2, 16)],
                    priority: r.priority,
                },
            )
            .unwrap();
        }
        let pool = (0..pool_size)
            .map(|i| {
                let rule = &rules[i * n / pool_size];
                let (src, dst) = dejavu_traffic::matching_flow(rule, i as u64);
                let p = dejavu_traffic::PacketBuilder::udp()
                    .src_ip(src)
                    .dst_ip(dst)
                    .src_port(1000)
                    .dst_port(53)
                    .payload(&[0u8; 18])
                    .build();
                InjectedPacket::new(p, 0)
            })
            .collect();
        return (sw, pool);
    }
    for i in 0..entries {
        sw.install_entry(
            PipeletId::ingress(0),
            "sweep",
            TableEntry {
                matches: vec![sweep_entry(kind, i)],
                action: "fwd".into(),
                action_args: vec![Value::new(2, 16)],
                priority: 0,
            },
        )
        .unwrap();
    }
    // Spread the pool uniformly over the installed entries so scan-based
    // lookups are measured at their average depth, not the table front.
    let pool = (0..pool_size)
        .map(|i| InjectedPacket::new(sweep_packet(kind, i * n / pool_size), 0))
        .collect();
    (sw, pool)
}

/// One timed slice of per-packet `inject` (full traces — the pre-PR
/// usage). Returns (packets, seconds) so interleaved rounds can be summed.
fn run_single(sw: &mut Switch, pool: &[InjectedPacket], slice: Duration) -> (usize, f64) {
    let start = Instant::now();
    let mut n = 0usize;
    loop {
        for pkt in pool {
            sw.inject(pkt.clone()).unwrap();
        }
        n += pool.len();
        if start.elapsed() >= slice {
            break;
        }
    }
    (n, start.elapsed().as_secs_f64())
}

/// One timed slice of `inject_batch` (traces off — the replay fast path).
fn run_batch(sw: &mut Switch, pool: &[InjectedPacket], slice: Duration) -> (usize, f64) {
    let start = Instant::now();
    let mut n = 0usize;
    loop {
        let stats = sw.inject_batch(pool);
        assert_eq!(stats.errors, 0);
        n += stats.injected;
        if start.elapsed() >= slice {
            break;
        }
    }
    (n, start.elapsed().as_secs_f64())
}

/// Workers the rtc column runs with (the acceptance floor is 4).
const RTC_WORKERS: usize = 4;
/// Times the packet pool is tiled into one session workload so per-run
/// dispatch/collect cost is amortized over thousands of packets.
const RTC_TILE: usize = 16;
/// `compiled_batch_pps` at the 10k-exact point in the committed
/// BENCH_dataplane.json *before* the zero-allocation engine landed — the
/// fixed yardstick the "rtc ≥ 3× batch" acceptance flag is defined
/// against (the same change that added the rtc path also sped up the
/// batch path it is compared to, so the comparison is pinned to the
/// pre-change number rather than a moving target).
const BASELINE_BATCH_PPS_10K_EXACT: f64 = 381_592.24;

/// One timed slice of the pooled run-to-completion engine through a warm
/// [`RtcSession`]: resident per-core workers, flow-hash steering, pooled
/// buffers, zero steady-state allocation. The session is booted once per
/// sweep point (outside the timed region) — steady-state throughput, the
/// way a dataplane that boots once and runs forever is measured.
fn run_rtc(sess: &mut RtcSession, workload: &[InjectedPacket], slice: Duration) -> (usize, f64) {
    let start = Instant::now();
    let mut n = 0usize;
    loop {
        let r = sess.run(workload);
        assert_eq!(r.errors, 0);
        assert_eq!(r.pool_dropped, 0);
        n += r.injected as usize;
        if start.elapsed() >= slice {
            break;
        }
    }
    (n, start.elapsed().as_secs_f64())
}

/// Steady-state heap allocations per packet on the pooled path: warm one
/// pass over the pool (scratch arenas, deparse buffer, pool buffers all
/// grow to size), then drive the same packets through
/// [`Switch::inject_buf`] and count allocator hits. `None` without the
/// `count-allocs` feature.
fn measure_allocs_per_packet(sw: &Switch, pool: &[InjectedPacket]) -> Option<f64> {
    alloc_count()?;
    let mut sw = sw.clone();
    sw.set_exec_mode(ExecMode::Compiled);
    let mut buf = Vec::with_capacity(2048);
    let mut drive = |sw: &mut Switch| {
        for pkt in pool {
            buf.clear();
            buf.extend_from_slice(&pkt.bytes);
            sw.inject_buf(&mut buf, pkt.port).unwrap();
        }
    };
    drive(&mut sw); // warm-up: every later pass reuses this capacity
    const ROUNDS: usize = 8;
    let before = alloc_count()?;
    for _ in 0..ROUNDS {
        drive(&mut sw);
    }
    let allocs = alloc_count()? - before;
    Some(allocs as f64 / (ROUNDS * pool.len()) as f64)
}

/// Measures all three modes over one testbed in interleaved rounds.
///
/// The reference switch is pinned to the linear-scan index
/// (`IndexPolicy::Force(IndexKind::Scan)`) so `reference_pps` keeps the
/// honest O(entries) cost model the speedup flags are defined against —
/// the reference interpreter itself now routes through the same
/// classification indexes as the compiled engine.
fn measure_point(sw: &Switch, pool: &[InjectedPacket]) -> (f64, f64, f64, f64, String) {
    let pid = PipeletId::ingress(0);
    let mut ref_sw = sw.clone();
    ref_sw.set_exec_mode(ExecMode::Reference);
    ref_sw
        .set_table_index(
            pid,
            "sweep",
            dejavu_asic::IndexPolicy::Force(dejavu_asic::IndexKind::Scan),
        )
        .unwrap();
    let mut comp_sw = sw.clone();
    comp_sw.set_exec_mode(ExecMode::Compiled);
    let mut batch_sw = sw.clone();
    batch_sw.set_exec_mode(ExecMode::Compiled);
    let index_kind = comp_sw
        .table_index_kind(pid, "sweep")
        .map_or_else(|| "?".into(), |k| k.name().to_string());
    // The rtc workload tiles the pool so per-run dispatch/collect cost is
    // amortized the same way inject_batch amortizes its per-call setup,
    // and the session boots its worker clones here, outside the timing.
    let rtc_workload: Vec<InjectedPacket> = pool
        .iter()
        .cycle()
        .take((pool.len() * RTC_TILE).max(2048))
        .cloned()
        .collect();
    let mut rtc_sess = RtcSession::new(
        sw,
        RtcConfig {
            workers: RTC_WORKERS,
            ..RtcConfig::default()
        },
    );

    let slice = budget() / ROUNDS;
    let (mut rn, mut rs) = (0usize, 0f64);
    let (mut cn, mut cs) = (0usize, 0f64);
    let (mut bn, mut bs) = (0usize, 0f64);
    let (mut tn, mut ts) = (0usize, 0f64);
    for _ in 0..ROUNDS {
        let (n, s) = run_single(&mut ref_sw, pool, slice);
        rn += n;
        rs += s;
        let (n, s) = run_single(&mut comp_sw, pool, slice);
        cn += n;
        cs += s;
        let (n, s) = run_batch(&mut batch_sw, pool, slice);
        bn += n;
        bs += s;
        let (n, s) = run_rtc(&mut rtc_sess, &rtc_workload, slice);
        tn += n;
        ts += s;
    }
    (
        rn as f64 / rs,
        cn as f64 / cs,
        bn as f64 / bs,
        tn as f64 / ts,
        index_kind,
    )
}

#[derive(Serialize)]
struct SweepPoint {
    kind: String,
    entries: usize,
    /// Classification index serving the compiled engine at this point.
    index_kind: String,
    reference_pps: f64,
    compiled_pps: f64,
    compiled_batch_pps: f64,
    /// Pooled run-to-completion executor, `rtc_workers` cores.
    rtc_pps: f64,
    speedup_compiled: f64,
    speedup_batch: f64,
    /// rtc_pps / compiled_batch_pps — the zero-alloc engine's gain over
    /// the allocating batch path.
    speedup_rtc_vs_batch: f64,
    /// Steady-state heap allocations per packet on the pooled path
    /// (`null` unless the bench ran with `--features count-allocs`).
    allocs_per_packet: Option<f64>,
}

#[derive(Serialize)]
struct SweepReport {
    description: String,
    points: Vec<SweepPoint>,
    exact_10k_speedup: f64,
    meets_10x_at_10k_exact: bool,
    ternary_10k_speedup: f64,
    meets_10x_at_10k_ternary: bool,
    /// Worker threads the rtc column ran with.
    rtc_workers: usize,
    /// rtc_pps / compiled_batch_pps at the 10k exact point, both measured
    /// in this run (the same engine rework that added rtc also sped the
    /// batch path, so this ratio understates the rtc gain).
    rtc_10k_exact_speedup_vs_batch: f64,
    /// The committed pre-rework `compiled_batch_pps` at 10k exact that the
    /// acceptance flag compares against.
    baseline_batch_pps_10k_exact: f64,
    /// rtc_pps at 10k exact over the pre-rework batch number.
    rtc_10k_exact_speedup_vs_baseline: f64,
    /// The run-to-completion engine must clear 3x the pre-rework batch
    /// path at 10k exact on >= 4 workers.
    meets_3x_rtc_at_10k_exact: bool,
    /// Steady-state allocations per packet on the pooled path at 10k
    /// exact (`null` without `--features count-allocs`; the gate requires
    /// exactly zero when present).
    rtc_allocs_per_packet: Option<f64>,
    flow_state: FlowStatePoint,
    /// Hitless live migration: downtime and goodput while the
    /// re-placement driver moves a learned NAT across switches.
    migration: migration::MigrationPoint,
    /// Every learned flow must still translate after the live migration,
    /// and every packet in flight during the window must land emitted.
    meets_zero_flow_loss_migration: bool,
}

// ---------------------------------------------------------------------
// Flow-state runtime: learn-heavy phase, then aged steady state
// ---------------------------------------------------------------------

#[derive(Serialize)]
struct FlowStatePoint {
    /// Flows learned during the learn-heavy phase.
    flows_learned: usize,
    /// Packets/sec during learning (digest → drain → install per chunk).
    learn_pps: f64,
    /// Batched packets/sec on established flows with aging off — the
    /// same learned table, no idle timeout, no clock ticks. The honest
    /// denominator for the aging-overhead criterion: comparing against
    /// the *plain* sweep program conflates aging cost with unrelated
    /// per-program differences (field projection optimizes the two
    /// programs differently).
    steady_state_no_aging_pps: f64,
    /// Batched packets/sec on established flows with aging enabled (an
    /// idle-timeout on the table, a clock tick per batch).
    steady_state_aging_pps: f64,
    /// The plain 10k-exact batched number from the sweep, for context.
    baseline_exact_10k_pps: f64,
    /// steady_state_aging_pps / steady_state_no_aging_pps.
    steady_state_ratio: f64,
    /// Aging + hit-stamping must cost under 5% on the established path.
    steady_state_within_5pct: bool,
}

const LEARN_CHUNK: usize = 256;

/// Flows learned in the flow-state experiment; scaled down in quick mode.
fn learn_flows() -> usize {
    if quick() {
        2_000
    } else {
        10_000
    }
}

/// Exact-match flow table whose misses digest the flow key — the learn
/// path a dynamic NAT or conntrack firewall exercises per new flow.
fn learn_program() -> Program {
    ProgramBuilder::new("learner")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("fwd")
                .param("port", 16)
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("learn")
                .digest("new_flow", vec![Expr::field("ethernet", "dst_mac")])
                .set(FieldRef::meta("egress_spec"), Expr::val(2, 16))
                .build(),
        )
        .table(
            TableBuilder::new("flows")
                .key_exact(fref("ethernet", "dst_mac"))
                .action("fwd")
                .default_action("learn")
                .size(32_768)
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("flows").build())
        .entry("ingress")
        .build()
        .expect("learn program validates")
}

fn measure_flow_state(baseline_exact_10k_pps: f64) -> FlowStatePoint {
    let pid = PipeletId::ingress(0);
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.set_exec_mode(ExecMode::Compiled);
    sw.load_program(pid, learn_program()).unwrap();
    sw.set_idle_timeout(pid, "flows", Some(1 << 20)).unwrap();

    // Learn-heavy phase: 10k never-seen flows, chunked like a control
    // plane servicing the digest queue between bursts.
    let start = Instant::now();
    let mut learned = 0usize;
    let mut injected = 0usize;
    let learn_flows = learn_flows();
    for chunk in 0..learn_flows.div_ceil(LEARN_CHUNK) {
        let batch: Vec<InjectedPacket> = (0..LEARN_CHUNK)
            .map(|i| InjectedPacket::new(sweep_packet("exact", chunk * LEARN_CHUNK + i), 0))
            .take(learn_flows - chunk * LEARN_CHUNK)
            .collect();
        let stats = sw.inject_batch(&batch);
        assert_eq!(stats.errors, 0);
        injected += stats.injected;
        for (_, d) in sw.drain_digests() {
            sw.install_entry(
                pid,
                "flows",
                TableEntry {
                    matches: vec![KeyMatch::Exact(d.values[0])],
                    action: "fwd".into(),
                    action_args: vec![Value::new(2, 16)],
                    priority: 0,
                },
            )
            .unwrap();
            learned += 1;
        }
    }
    let learn_pps = injected as f64 / start.elapsed().as_secs_f64();
    assert_eq!(learned, learn_flows, "every new flow digests exactly once");

    // Steady state: established flows only, measured twice over the same
    // learned table — aging off (no idle timeout, no clock ticks) and
    // aging live (hit stamps touched per lookup, one expiry sweep per
    // batch) — in interleaved rounds so machine drift hits both equally.
    // The with/without ratio isolates what aging itself costs.
    let pool: Vec<InjectedPacket> = (0..PACKET_POOL)
        .map(|i| InjectedPacket::new(sweep_packet("exact", i * learn_flows / PACKET_POOL), 0))
        .collect();
    let slice = budget() / ROUNDS;
    let (mut bn, mut bs) = (0usize, 0.0f64);
    let (mut an, mut as_) = (0usize, 0.0f64);
    for _ in 0..ROUNDS {
        sw.set_idle_timeout(pid, "flows", None).unwrap();
        let start = Instant::now();
        while start.elapsed() < slice {
            let stats = sw.inject_batch(&pool);
            assert_eq!(stats.errors, 0);
            bn += stats.injected;
        }
        bs += start.elapsed().as_secs_f64();

        sw.set_idle_timeout(pid, "flows", Some(1 << 20)).unwrap();
        let start = Instant::now();
        while start.elapsed() < slice {
            let stats = sw.inject_batch(&pool);
            assert_eq!(stats.errors, 0);
            an += stats.injected;
            assert!(sw.advance_time(1).is_empty(), "nothing ages mid-run");
        }
        as_ += start.elapsed().as_secs_f64();
    }
    let steady_base = bn as f64 / bs;
    let steady = an as f64 / as_;
    assert_eq!(sw.digest_backlog(0), 0, "established flows stay silent");

    let ratio = steady / steady_base;
    FlowStatePoint {
        flows_learned: learned,
        learn_pps,
        steady_state_no_aging_pps: steady_base,
        steady_state_aging_pps: steady,
        baseline_exact_10k_pps,
        steady_state_ratio: ratio,
        steady_state_within_5pct: ratio >= 0.95,
    }
}

// ---------------------------------------------------------------------
// Live migration: downtime and goodput across a hitless re-placement
// ---------------------------------------------------------------------

/// Self-contained harness measuring the orchestrator's migration driver
/// on a 3-switch channel-transport cluster: learn a batch of NAT flows,
/// stream established traffic, run [`dejavu_core::orchestrator::migrate`]
/// mid-stream to the placement optimal under inverted chain weights, and
/// record the pause-to-resume downtime, the goodput over the whole
/// stream (migration window included), and flow survival.
mod migration {
    use super::quick;
    use dejavu_asic::switch::Disposition;
    use dejavu_asic::{InjectedPacket, TofinoProfile};
    use dejavu_core::deploy::DeployOptions;
    use dejavu_core::multiswitch::{ClusterProblem, ClusterWiring};
    use dejavu_core::orchestrator::{
        migrate, ExhaustiveSearch, FleetProblem, FleetSpec, PlacementSearch,
    };
    use dejavu_core::placement::PlacementProblem;
    use dejavu_core::transport::{spawn_cluster, ChannelTransport, ClusterHandle, ClusterOptions};
    use dejavu_core::{ChainPolicy, ChainSet, NfModule};
    use dejavu_integration::{marker_nf, EXIT_PORT, IN_PORT};
    use dejavu_nf::nat::{
        dynamic_nat, nat_learn_policy, nat_out_entry, NAT_FLOW_STREAM, NAT_OUT_TABLE,
    };
    use dejavu_nf::{classifier, router};
    use serde::Serialize;
    use std::collections::BTreeMap;
    use std::time::{Duration, Instant};

    const SERVER: u32 = 0x0808_0808;
    const PUBLIC_IP: u32 = 0xc633_6401;
    const CLIENT: u32 = 0x0a01_0101;
    const BASE_PORT: u16 = 52000;

    #[derive(Serialize)]
    pub struct MigrationPoint {
        /// NAT flows learned (and expected to survive the migration).
        pub flows_learned: usize,
        /// Entries the driver reported moving across switches.
        pub flows_migrated: u64,
        /// Entries re-installed on the destination switches.
        pub restored_entries: u64,
        /// Packets held at ingress during the pause window.
        pub parked_packets: u64,
        /// Packets drained out of the fabric before state moved.
        pub quiesced_packets: u64,
        /// Pause-to-resume wall time of the migration itself.
        pub migration_downtime_ns: u64,
        /// Established-flow packets streamed around the window.
        pub stream_packets: usize,
        /// stream_packets / wall time from first inject to last delivery,
        /// with the migration in the middle.
        pub goodput_pps: f64,
        /// Learned flows that still translate after the migration.
        pub flows_surviving: usize,
        /// flows_surviving == flows_learned and every streamed packet
        /// landed emitted with the correct translation.
        pub zero_flow_loss: bool,
    }

    fn flows() -> u16 {
        if quick() {
            32
        } else {
            256
        }
    }

    fn outbound(src_port: u16) -> Vec<u8> {
        dejavu_traffic::PacketBuilder::tcp()
            .src_ip(CLIENT)
            .dst_ip(SERVER)
            .src_port(src_port)
            .dst_port(80)
            .build()
    }

    fn inbound(dst_port: u16) -> Vec<u8> {
        dejavu_traffic::PacketBuilder::tcp()
            .src_ip(SERVER)
            .dst_ip(PUBLIC_IP)
            .src_port(80)
            .dst_port(dst_port)
            .build()
    }

    fn ip_at(bytes: &[u8], off: usize) -> u32 {
        u32::from_be_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
    }

    /// The same placement-sensitive fleet the replacement tests use: the
    /// NAT cannot share a pipelet with the classifier, so inverting the
    /// chain weights genuinely moves it across switches.
    fn fleet_problem() -> FleetProblem {
        let chains = ChainSet::new(vec![
            ChainPolicy::new(1, "nat_path", vec!["classifier", "nat", "router"], 1.0),
            ChainPolicy::new(2, "mark_path", vec!["classifier", "mark_a"], 6.0),
        ])
        .unwrap();
        let stages: BTreeMap<String, u32> = [
            ("classifier".to_string(), 2),
            ("nat".to_string(), 6),
            ("router".to_string(), 2),
            ("mark_a".to_string(), 2),
        ]
        .into_iter()
        .collect();
        let mut template = PlacementProblem::new(chains, stages);
        template.pipelines = 1;
        FleetProblem::new(ClusterProblem::new(template, 3))
    }

    fn arm(handle: &mut ClusterHandle) {
        handle
            .register_learn_policy("nat", NAT_FLOW_STREAM, nat_learn_policy())
            .unwrap();
        for (prefix, path) in [
            ((0x0a01_0000u32, 16u16), 1u16),
            ((0x0800_0000, 8), 1),
            ((0x0b00_0000, 8), 2),
        ] {
            handle
                .install(
                    "classifier",
                    classifier::CLASSIFY_TABLE,
                    classifier::classify_entry(prefix, (0, 0), path, 100),
                )
                .unwrap();
        }
        handle
            .install(
                "nat",
                NAT_OUT_TABLE,
                nat_out_entry((0x0a01_0000, 16), PUBLIC_IP),
            )
            .unwrap();
        handle
            .install(
                "router",
                router::ROUTES_TABLE,
                router::route_entry((0, 0), EXIT_PORT, 0x0200_0000_0099, 0x0200_0000_0001),
            )
            .unwrap();
    }

    pub fn measure() -> MigrationPoint {
        let nfs = [
            classifier::classifier(),
            dynamic_nat(),
            router::router(),
            marker_nf("mark_a", 0),
        ];
        let refs: Vec<&NfModule> = nfs.iter().collect();
        let problem = fleet_problem();
        let wiring = ClusterWiring::default();
        let deploy = DeployOptions {
            entry_nf: Some("classifier".into()),
            ..Default::default()
        };
        let exit_ports: BTreeMap<u16, dejavu_asic::PortId> =
            [(1u16, EXIT_PORT), (2u16, EXIT_PORT)].into_iter().collect();

        let pre = ExhaustiveSearch::default().search(&problem).unwrap();
        // Invert the traffic matrix: the NAT chain becomes dominant and
        // the optimum folds NAT + router back onto switch 0.
        let shifted = problem.with_weights(&[8.0, 1.0]);
        let post = ExhaustiveSearch::default().search(&shifted).unwrap();
        assert_ne!(
            pre.placement, post.placement,
            "weight inversion must move the placement"
        );

        let mut transport = ChannelTransport::new();
        let mut handle = spawn_cluster(
            &refs,
            problem.chains(),
            &pre.placement,
            &TofinoProfile::wedge_100b_32x(),
            exit_ports.clone(),
            &wiring,
            &deploy,
            &mut transport,
            &ClusterOptions::default(),
        )
        .unwrap();
        arm(&mut handle);

        let flows = flows();
        for f in 0..flows {
            let t = handle
                .inject(InjectedPacket::new(outbound(BASE_PORT + f), IN_PORT))
                .unwrap();
            assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
        }
        handle.process_digests().unwrap();

        // Established-flow stream with the migration in the middle: half
        // the packets are in the air (or already landed) when the driver
        // pauses ingress, the other half arrives on the new placement.
        let spec = FleetSpec {
            nfs: &refs,
            chains: problem.chains(),
            profile: &TofinoProfile::wedge_100b_32x(),
            exit_ports,
            wiring: &wiring,
            deploy: &deploy,
        };
        let stream = usize::from(flows) * 2;
        let started = Instant::now();
        for i in 0..stream / 2 {
            handle
                .inject_async(InjectedPacket::new(
                    outbound(BASE_PORT + (i as u16 % flows)),
                    IN_PORT,
                ))
                .unwrap();
        }
        let outcome = migrate(&mut handle, &spec, &pre.placement, &post.placement).unwrap();
        for i in stream / 2..stream {
            handle
                .inject_async(InjectedPacket::new(
                    outbound(BASE_PORT + (i as u16 % flows)),
                    IN_PORT,
                ))
                .unwrap();
        }
        let mut clean_stream = 0usize;
        for _ in 0..stream {
            let d = handle
                .recv_delivered(Duration::from_secs(60))
                .unwrap()
                .expect("stream delivery");
            let t = d.result.expect("streamed packet survives the migration");
            if t.disposition == (Disposition::Emitted { port: EXIT_PORT })
                && ip_at(&t.final_bytes, 26) == PUBLIC_IP
            {
                clean_stream += 1;
            }
        }
        let elapsed = started.elapsed().as_secs_f64();

        // Zero flow loss: every learned mapping still translates inbound.
        let mut surviving = 0usize;
        for f in 0..flows {
            let t = handle
                .inject(InjectedPacket::new(inbound(BASE_PORT + f), IN_PORT))
                .unwrap();
            if t.disposition == (Disposition::Emitted { port: EXIT_PORT })
                && ip_at(&t.final_bytes, 30) == CLIENT
            {
                surviving += 1;
            }
        }
        handle.shutdown().unwrap();

        MigrationPoint {
            flows_learned: usize::from(flows),
            flows_migrated: outcome.flows_migrated,
            restored_entries: outcome.restored_entries,
            parked_packets: outcome.parked_packets,
            quiesced_packets: outcome.quiesced_packets,
            migration_downtime_ns: outcome.duration_ns,
            stream_packets: stream,
            goodput_pps: stream as f64 / elapsed,
            flows_surviving: surviving,
            zero_flow_loss: surviving == usize::from(flows) && clean_stream == stream,
        }
    }
}

fn bench_sweep(_c: &mut Criterion) {
    banner(
        "BENCH_dataplane",
        "table-size sweep: reference interpreter vs compiled fast path",
    );
    let mut points = Vec::new();
    for kind in KINDS {
        for &entries in sizes_for(kind) {
            if quick() && entries > 10_000 {
                continue;
            }
            let (sw, pool) = sweep_testbed(kind, entries);
            let (reference, compiled, batch, rtc, index_kind) = measure_point(&sw, &pool);
            let allocs_per_packet = measure_allocs_per_packet(&sw, &pool);
            row(
                &format!("{kind:<8} {entries:>6} entries [{index_kind}]"),
                "—",
                &format!(
                    "ref {reference:>10.0} pps | compiled {compiled:>10.0} pps | batch {batch:>10.0} pps ({:.1}x) | rtc {rtc:>10.0} pps ({:.1}x batch)",
                    batch / reference,
                    rtc / batch
                ),
            );
            if let Some(a) = allocs_per_packet {
                // The pooled path must be allocation-free once warm — on
                // every sweep point, not just the headline one.
                assert!(
                    a == 0.0,
                    "{kind} {entries}: rtc path allocated {a} times per packet in steady state"
                );
            }
            if entries >= 10_000 {
                // Regression guard for the batch-slower-than-single
                // artifact: with interleaved rounds, trace-off batching
                // must not lose more than measurement noise to the
                // trace-on single path (see DESIGN.md).
                assert!(
                    batch >= 0.8 * compiled,
                    "{kind} {entries}: batch {batch:.0} pps fell below 80% of single {compiled:.0} pps"
                );
            }
            points.push(SweepPoint {
                kind: kind.to_string(),
                entries,
                index_kind,
                reference_pps: reference,
                compiled_pps: compiled,
                compiled_batch_pps: batch,
                rtc_pps: rtc,
                speedup_compiled: compiled / reference,
                speedup_batch: batch / reference,
                speedup_rtc_vs_batch: rtc / batch,
                allocs_per_packet,
            });
        }
    }
    let exact_10k = points
        .iter()
        .find(|p| p.kind == "exact" && p.entries == 10_000)
        .expect("sweep covers 10k exact");
    let ternary_10k = points
        .iter()
        .find(|p| p.kind == "ternary" && p.entries == 10_000)
        .expect("sweep covers 10k ternary");
    let (ternary_10k_speedup, meets_ternary) =
        (ternary_10k.speedup_batch, ternary_10k.speedup_batch >= 10.0);
    let flow_state = measure_flow_state(exact_10k.compiled_batch_pps);
    let flow_label = format!(
        "flow-state learn  {}k flows",
        flow_state.flows_learned / 1000
    );
    row(
        &flow_label,
        "—",
        &format!(
            "learn {:>10.0} pps | steady+aging {:>10.0} pps ({:.1}% of aging-off steady)",
            flow_state.learn_pps,
            flow_state.steady_state_aging_pps,
            flow_state.steady_state_ratio * 100.0
        ),
    );
    let migration = migration::measure();
    row(
        &format!("live migration    {:>4} flows", migration.flows_learned),
        "—",
        &format!(
            "downtime {:>8.2} ms | goodput {:>9.0} pps | {} entries moved | {} parked | zero-loss: {}",
            migration.migration_downtime_ns as f64 / 1e6,
            migration.goodput_pps,
            migration.flows_migrated,
            migration.parked_packets,
            migration.zero_flow_loss,
        ),
    );
    let report = SweepReport {
        description: "packets/sec through one ingress pipelet: tree-walking reference \
                      interpreter pinned to the linear-scan index (per-packet inject, \
                      full traces) vs compiled fast path on the auto-selected \
                      classification index (tuple-space / decision-tree for TCAM \
                      shapes; single inject, batched trace-off inject, and the pooled \
                      zero-allocation run-to-completion executor), measured in \
                      interleaved rounds"
            .into(),
        exact_10k_speedup: exact_10k.speedup_batch,
        meets_10x_at_10k_exact: exact_10k.speedup_batch >= 10.0,
        ternary_10k_speedup,
        meets_10x_at_10k_ternary: meets_ternary,
        rtc_workers: RTC_WORKERS,
        rtc_10k_exact_speedup_vs_batch: exact_10k.speedup_rtc_vs_batch,
        baseline_batch_pps_10k_exact: BASELINE_BATCH_PPS_10K_EXACT,
        rtc_10k_exact_speedup_vs_baseline: exact_10k.rtc_pps / BASELINE_BATCH_PPS_10K_EXACT,
        meets_3x_rtc_at_10k_exact: exact_10k.rtc_pps / BASELINE_BATCH_PPS_10K_EXACT >= 3.0,
        rtc_allocs_per_packet: exact_10k.allocs_per_packet,
        flow_state,
        meets_zero_flow_loss_migration: migration.zero_flow_loss,
        migration,
        points,
    };
    println!(
        "\n  10k-entry exact-match speedup (batched fast path vs scan reference): {:.1}x",
        report.exact_10k_speedup
    );
    println!(
        "  10k-entry ternary speedup (batched fast path vs scan reference): {:.1}x",
        report.ternary_10k_speedup
    );
    println!(
        "  10k-entry exact rtc ({} workers): {:.1}x same-run batch, {:.1}x pre-rework batch, allocs/pkt: {}",
        report.rtc_workers,
        report.rtc_10k_exact_speedup_vs_batch,
        report.rtc_10k_exact_speedup_vs_baseline,
        report
            .rtc_allocs_per_packet
            .map_or_else(|| "n/a".into(), |a| format!("{a}")),
    );
    write_json("BENCH_dataplane", &report);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dataplane, bench_sweep
}
criterion_main!(benches);
