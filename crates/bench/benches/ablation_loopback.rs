//! Ablation A5 — loopback-port provisioning.
//!
//! §4: with m of n Ethernet ports in loopback mode, the switch offers
//! (n−m)/n of its capacity externally and min(1, m/(n−m)) of that traffic
//! can recirculate once. §5 picks m = 16 of 32 (all traffic recirculates
//! once at 1.6 Tbps). This ablation sweeps m, prices the trade, and finds
//! the delivered-goodput optimum for workloads with different recirculation
//! demand.

use dejavu_asic::feedback::{solve_mix, TrafficClass};
use dejavu_asic::TofinoProfile;
use dejavu_bench::{banner, row, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    loopback_ports: usize,
    external_gbps: f64,
    single_recirc_fraction: f64,
    delivered_all_1recirc_gbps: f64,
    delivered_half_2recirc_gbps: f64,
}

fn main() {
    banner("Ablation A5", "loopback provisioning: m of 32 ports");
    let profile = TofinoProfile::wedge_100b_32x();
    let n = profile.total_ports();
    let mut points = Vec::new();

    println!(
        "  {:>4} {:>10} {:>10} {:>16} {:>18}",
        "m", "external", "1-recirc%", "goodput(all k=1)", "goodput(half k=2)"
    );
    for m in (0..=28).step_by(4) {
        let external = profile.external_capacity_gbps(m);
        let frac = profile.single_recirc_fraction(m);
        // Loopback capacity: m ports plus the two dedicated recirc ports.
        let loop_cap =
            m as f64 * profile.port_gbps + profile.dedicated_recirc_gbps * profile.pipelines as f64;

        // Workload A: all external traffic needs 1 recirculation.
        let a = solve_mix(
            &[TrafficClass {
                rate_gbps: external,
                recirculations: 1,
            }],
            loop_cap.max(1.0),
        );
        // Workload B: half needs 2 recirculations, half none.
        let b = solve_mix(
            &[
                TrafficClass {
                    rate_gbps: external / 2.0,
                    recirculations: 2,
                },
                TrafficClass {
                    rate_gbps: external / 2.0,
                    recirculations: 0,
                },
            ],
            loop_cap.max(1.0),
        );
        println!(
            "  {m:>4} {external:>8.0} G {:>9.0}% {:>14.0} G {:>16.0} G",
            frac * 100.0,
            a.total_gbps(),
            b.total_gbps()
        );
        points.push(Point {
            loopback_ports: m,
            external_gbps: external,
            single_recirc_fraction: frac,
            delivered_all_1recirc_gbps: a.total_gbps(),
            delivered_half_2recirc_gbps: b.total_gbps(),
        });
    }

    // The §5 design point.
    let m16 = points.iter().find(|p| p.loopback_ports == 16).unwrap();
    row(
        "m = 16 external capacity",
        "1.6 Tbps",
        &format!("{:.1} Tbps", m16.external_gbps / 1000.0),
    );
    row(
        "m = 16 single-recirc coverage",
        "100 %",
        &format!("{:.0} %", m16.single_recirc_fraction * 100.0),
    );

    // Crossover shape: goodput for the all-1-recirc workload peaks where
    // loopback capacity first covers external demand (m ≈ n/2 − dedicated).
    let best = points
        .iter()
        .max_by(|a, b| {
            a.delivered_all_1recirc_gbps
                .total_cmp(&b.delivered_all_1recirc_gbps)
        })
        .unwrap();
    println!(
        "\n  goodput optimum for all-1-recirc workload: m = {} ({:.0} Gbps delivered)",
        best.loopback_ports, best.delivered_all_1recirc_gbps
    );
    assert_eq!(m16.single_recirc_fraction, 1.0);
    assert!(
        (8..=16).contains(&best.loopback_ports),
        "optimum at m={}",
        best.loopback_ports
    );
    assert_eq!(n, 32);

    write_json("ablation_loopback", &points);
    println!("\n  SHAPE CHECK: the (n−m)/n external-capacity line and the min(1, m/(n−m)) recirculation coverage reproduce §4; §5's m=16 design point gives full 1-recirc coverage at 1.6 Tbps.");
}
