//! Fig. 8(a) — effective throughput vs number of recirculations.
//!
//! The paper injects 100 Gbps into one Ethernet port of a Tofino with the
//! paired port in loopback and recirculates each packet k times before it
//! leaves. Measured throughput "matches our calculations well" and
//! "degrades super-linearly with the number of recirculations".
//!
//! We regenerate the same series three ways: the analytic fixed point, the
//! deterministic fluid simulation, and a randomized packet-level simulation
//! of the loopback feedback queue.

use dejavu_asic::feedback::{effective_throughput_gbps, simulate_fluid, simulate_packet_level};
use dejavu_bench::{banner, row, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    recirculations: usize,
    analytic_gbps: f64,
    fluid_gbps: f64,
    packet_level_gbps: f64,
}

fn main() {
    banner(
        "Fig. 8(a)",
        "throughput vs #recirculations (100 Gbps injected)",
    );
    const T: f64 = 100.0;

    let mut series = Vec::new();
    println!(
        "  {:>6} {:>12} {:>12} {:>12}",
        "k", "analytic", "fluid", "pkt-level"
    );
    for k in 1..=5 {
        let analytic = effective_throughput_gbps(T, k);
        let fluid = simulate_fluid(T, k, 4000);
        let pkt = T * simulate_packet_level(k, 500, 800, 0x00F1_68A0);
        println!("  {k:>6} {analytic:>10.2} G {fluid:>10.2} G {pkt:>10.2} G");
        series.push(Point {
            recirculations: k,
            analytic_gbps: analytic,
            fluid_gbps: fluid,
            packet_level_gbps: pkt,
        });
    }

    // Shape assertions (what the paper's figure shows).
    row(
        "k = 1",
        "~100 Gbps",
        &format!("{:.1} Gbps", series[0].analytic_gbps),
    );
    row(
        "k = 2",
        "~38 Gbps",
        &format!("{:.1} Gbps", series[1].analytic_gbps),
    );
    row(
        "k = 3",
        "~16 Gbps",
        &format!("{:.1} Gbps", series[2].analytic_gbps),
    );
    assert!(series
        .windows(2)
        .all(|w| w[1].analytic_gbps < w[0].analytic_gbps));
    // Super-linear: each additional recirculation keeps < 1/2 of throughput
    // beyond k = 1.
    assert!(series[1].analytic_gbps / series[0].analytic_gbps < 0.5);
    assert!(series[2].analytic_gbps / series[1].analytic_gbps < 0.5);

    write_json("fig8a_throughput", &series);
    println!("\n  SHAPE CHECK: super-linear degradation reproduced; simulation matches the model, as the paper reports.");
}
