//! Ablation A2 — per-port vs per-packet recirculation granularity.
//!
//! §7 ("Implications for hardware/compiler designers"): "If recirculation
//! decision can be done at per-packet granularity … we would not only have
//! fine-grained control over the traffic that needs recirculation, but also
//! more flexible function placement and potentially fewer recirculations."
//!
//! We quantify that prediction: across random chains and placements, count
//! recirculations under today's per-port model and under the hypothetical
//! per-packet model, and convert the savings into effective throughput via
//! the §4 feedback model.

use dejavu_asic::feedback::effective_throughput_gbps;
use dejavu_asic::PipeletId;
use dejavu_bench::{banner, write_json};
use dejavu_core::placement::{traverse_with, Placement, RecircGranularity};
use dejavu_core::{ChainPolicy, ChainSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    samples: usize,
    per_port_mean_recircs: f64,
    per_packet_mean_recircs: f64,
    savings_pct: f64,
    per_port_mean_throughput_gbps: f64,
    per_packet_mean_throughput_gbps: f64,
}

fn main() {
    banner(
        "Ablation A2",
        "per-port vs per-packet recirculation granularity (§7 what-if)",
    );
    let mut rng = StdRng::seed_from_u64(2024);
    let pipelets = [
        PipeletId::ingress(0),
        PipeletId::egress(0),
        PipeletId::ingress(1),
        PipeletId::egress(1),
    ];

    let mut sum_port = 0u64;
    let mut sum_packet = 0u64;
    let mut thr_port = 0f64;
    let mut thr_packet = 0f64;
    let mut samples = 0usize;
    for _ in 0..500 {
        let n = rng.gen_range(2..=6);
        let nfs: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
        let chain = ChainPolicy {
            path_id: 1,
            name: "r".into(),
            nfs: nfs.clone(),
            weight: 1.0,
        };
        let _chains = ChainSet::new(vec![chain.clone()]).unwrap();
        let mut placement = Placement::default();
        for nf in &nfs {
            let p = pipelets[rng.gen_range(0usize..4)];
            placement.pipelets.entry(p).or_default().push(nf.clone());
        }
        let port =
            traverse_with(&chain, &placement, 0, 0, false, RecircGranularity::PerPort).unwrap();
        let packet = traverse_with(
            &chain,
            &placement,
            0,
            0,
            false,
            RecircGranularity::PerPacket,
        )
        .unwrap();
        assert!(
            packet.recirculations <= port.recirculations,
            "per-packet must never cost more"
        );
        sum_port += u64::from(port.recirculations);
        sum_packet += u64::from(packet.recirculations);
        thr_port += effective_throughput_gbps(100.0, port.recirculations as usize);
        thr_packet += effective_throughput_gbps(100.0, packet.recirculations as usize);
        samples += 1;
    }

    let s = Summary {
        samples,
        per_port_mean_recircs: sum_port as f64 / samples as f64,
        per_packet_mean_recircs: sum_packet as f64 / samples as f64,
        savings_pct: 100.0 * (1.0 - sum_packet as f64 / sum_port as f64),
        per_port_mean_throughput_gbps: thr_port / samples as f64,
        per_packet_mean_throughput_gbps: thr_packet / samples as f64,
    };

    println!("  random chains/placements sampled: {}", s.samples);
    println!(
        "  mean recirculations: per-port {:.2}, per-packet {:.2}  (−{:.0}%)",
        s.per_port_mean_recircs, s.per_packet_mean_recircs, s.savings_pct
    );
    println!(
        "  mean effective throughput (100G port, §4 model): per-port {:.1} G, per-packet {:.1} G",
        s.per_port_mean_throughput_gbps, s.per_packet_mean_throughput_gbps
    );

    assert!(s.per_packet_mean_recircs < s.per_port_mean_recircs);
    assert!(
        s.savings_pct > 10.0,
        "expected double-digit savings, got {:.1}%",
        s.savings_pct
    );

    write_json("ablation_granularity", &s);
    println!("\n  SHAPE CHECK: per-packet granularity cuts recirculations substantially — §7's hardware prediction quantified.");
}
