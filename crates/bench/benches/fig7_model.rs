//! §4 / Fig. 7 — the feedback-queue throughput model, worked numbers.
//!
//! The paper derives, for the two-port setup with port B in loopback mode
//! (capacity T each): the first-pass fixed point x = 0.62T, the
//! 2-recirculation exit throughput 0.38T, and the 3-recirculation exit
//! throughput 0.16T. This bench solves the general fixed point and checks
//! the deterministic fluid simulation and the randomized packet-level
//! simulation against it.

use dejavu_asic::feedback::{
    delivery_ratio, effective_throughput_gbps, simulate_fluid, simulate_packet_level, solve_mix,
    TrafficClass,
};
use dejavu_bench::{banner, pct_err, row, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    k: usize,
    delivery_ratio: f64,
    analytic_gbps: f64,
    fluid_gbps: f64,
    packet_level_fraction: f64,
}

fn main() {
    banner("Fig. 7 / §4", "feedback-queue model: worked constants");
    const T: f64 = 100.0;

    // The paper's three headline constants.
    let x = T * delivery_ratio(2); // first-pass throughput at the fixed point
    row(
        "x (first-pass throughput, k = 2)",
        "0.62 T",
        &format!("{:.3} T", x / T),
    );
    let t2 = effective_throughput_gbps(T, 2);
    row(
        "exit throughput, k = 2",
        "0.38 T",
        &format!("{:.3} T", t2 / T),
    );
    let t3 = effective_throughput_gbps(T, 3);
    row(
        "exit throughput, k = 3",
        "0.16 T",
        &format!("{:.3} T", t3 / T),
    );

    println!("\n  general fixed point, T = {T} Gbps:");
    println!(
        "  {:>3} {:>10} {:>12} {:>12} {:>14}",
        "k", "ρ", "analytic", "fluid sim", "pkt-level frac"
    );
    let mut records = Vec::new();
    for k in 0..=5 {
        let rho = delivery_ratio(k);
        let analytic = effective_throughput_gbps(T, k);
        let fluid = simulate_fluid(T, k, 4000);
        let pkt = simulate_packet_level(k, 400, 600, 0xD3AD);
        println!(
            "  {:>3} {:>10.4} {:>10.2} G {:>10.2} G {:>14.4}",
            k, rho, analytic, fluid, pkt
        );
        assert!(pct_err(fluid, analytic) < 2.0, "fluid diverges at k={k}");
        records.push(Record {
            k,
            delivery_ratio: rho,
            analytic_gbps: analytic,
            fluid_gbps: fluid,
            packet_level_fraction: pkt,
        });
    }

    // Mixed traffic sanity: §4's capacity split — 50% of ports in loopback
    // lets all external traffic recirculate once at full rate.
    let mix = solve_mix(
        &[TrafficClass {
            rate_gbps: 1600.0,
            recirculations: 1,
        }],
        1600.0,
    );
    println!(
        "\n  §5 configuration (16 loopback ports): 1.6 Tbps external, all 1-recirc → {:.0} Gbps out (lossless: {})",
        mix.total_gbps(),
        mix.delivery_ratio == 1.0
    );

    write_json("fig7_model", &records);
    println!("\n  SHAPE CHECK: x≈0.62T, k2≈0.38T, k3≈0.16T all reproduced analytically and by simulation.");
}
