//! Criterion micro-benchmark: generic-parser construction cost vs NF count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dejavu_core::merge::{generic_parser, merge_parsers};
use dejavu_nf::{edge_cloud_suite, null_nf};

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser_merge");
    for n in [2usize, 5, 10, 20] {
        let nfs: Vec<_> = (0..n).map(|i| null_nf(&format!("nf{i}"))).collect();
        let refs: Vec<_> = nfs.iter().collect();
        group.bench_with_input(BenchmarkId::new("generic_parser", n), &refs, |b, refs| {
            b.iter(|| generic_parser(refs).unwrap())
        });
    }
    // The real 5-NF suite (richer parsers: eth/ip/tcp/udp).
    let suite = edge_cloud_suite();
    let refs: Vec<_> = suite.iter().collect();
    group.bench_function("edge_cloud_suite", |b| {
        b.iter(|| generic_parser(&refs).unwrap())
    });
    // Raw DAG merge without encapsulation.
    let dags: Vec<(&str, &dejavu_p4ir::ParserDag)> = suite
        .iter()
        .map(|nf| (nf.name(), &nf.program().parser))
        .collect();
    group.bench_function("raw_dag_merge_5", |b| {
        b.iter(|| merge_parsers(&dags).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_merge
}
criterion_main!(benches);
