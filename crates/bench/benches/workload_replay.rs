//! Workload replay — a full traffic trace through the §5 prototype.
//!
//! Generates a multi-tenant Fig. 2 workload (weighted path mix, per-chain
//! source prefixes, Zipf-skewed flow popularity), replays thousands of
//! packets through the deployed 5-NF switch with a live control plane
//! learning LB sessions from punts, and reports per-path outcomes, the
//! latency distribution, and the recirculation histogram.

use dejavu_asic::switch::Disposition;
use dejavu_asic::InjectedPacket;
use dejavu_bench::{banner, row, write_json};
use dejavu_core::control_plane::{rewind_and_clear, ControlPlane, PuntResponse};
use dejavu_integration::{fig9_testbed, EXIT_PORT, IN_PORT};
use dejavu_nf::load_balancer::{five_tuple_of, session_entry_for, SESSION_TABLE};
use dejavu_traffic::{replay_sharded, FlowGen, WorkloadMix};
use serde::Serialize;
use std::collections::BTreeMap;

const VIP: u32 = 0xc633_6450;
const BACKEND_POOL: [u32; 4] = [0x0a63_0001, 0x0a63_0002, 0x0a63_0003, 0x0a63_0004];
const PACKETS: usize = 5_000;
const FLOWS: usize = 200;

#[derive(Serialize, Default)]
struct Report {
    packets: usize,
    flows: usize,
    emitted: usize,
    punted_then_learned: u64,
    dropped: usize,
    recirc_histogram: BTreeMap<usize, usize>,
    latency_p50_ns: f64,
    latency_p99_ns: f64,
    sessions_installed: u64,
    fast_path_pps_1_worker: f64,
    fast_path_pps_4_workers: f64,
}

fn main() {
    banner(
        "Workload replay",
        "Fig. 2 mix through the live §5 prototype",
    );
    let (mut switch, dep) = fig9_testbed();

    // Control plane: learn LB sessions, sticky per 5-tuple hash.
    let mut cp = ControlPlane::new();
    cp.register_handler(
        "lb",
        Box::new(move |bytes| match five_tuple_of(bytes) {
            Some(t) if t.dst_addr == VIP => {
                let backend = BACKEND_POOL[(t.session_hash() as usize) % BACKEND_POOL.len()];
                PuntResponse {
                    install: vec![(
                        "lb".into(),
                        SESSION_TABLE.into(),
                        session_entry_for(&t, backend),
                    )],
                    reinject: true,
                    reinject_bytes: rewind_and_clear(bytes),
                }
            }
            _ => PuntResponse::default(),
        }),
    );

    // Workload: the Fig. 2 weights, 200 flows, Zipf(1.1) popularity.
    let mix = WorkloadMix::from_weights(&[(1, 0.5), (2, 0.3), (3, 0.2)]);
    let flows = mix.flows(42, FLOWS);
    let mut gen = FlowGen::new(7, (0, 0), (0, 0));
    let schedule = gen.zipf_schedule(FLOWS, PACKETS, 1.1);

    let mut report = Report {
        packets: PACKETS,
        flows: FLOWS,
        ..Default::default()
    };
    let mut latencies = Vec::with_capacity(PACKETS);
    for &flow_idx in &schedule {
        let (_path, flow) = &flows[flow_idx];
        // All flows target the VIP so the LB path is exercised.
        let mut f = *flow;
        f.dst_ip = VIP;
        f.protocol = 6;
        let pkt = f.packet(16);
        let t = cp.inject_tracking_punts(&mut switch, pkt, IN_PORT).unwrap();
        match t.disposition {
            Disposition::Emitted { port } => {
                assert_eq!(port, EXIT_PORT);
                report.emitted += 1;
                *report.recirc_histogram.entry(t.recirculations).or_insert(0) += 1;
                latencies.push(t.latency_ns);
            }
            Disposition::ToCpu => { /* counted via control-plane stats */ }
            Disposition::Dropped => report.dropped += 1,
        }
        // Drain punts immediately (an inline control plane).
        let reinjected = cp.process_punts(&mut switch, &dep).unwrap();
        for t in reinjected {
            if let Disposition::Emitted { .. } = t.disposition {
                report.emitted += 1;
                *report.recirc_histogram.entry(t.recirculations).or_insert(0) += 1;
                latencies.push(t.latency_ns);
            }
        }
    }
    report.punted_then_learned = cp.stats.reinjections;
    report.sessions_installed = cp.stats.installs;

    latencies.sort_by(f64::total_cmp);
    report.latency_p50_ns = latencies[latencies.len() / 2];
    report.latency_p99_ns = latencies[latencies.len() * 99 / 100];

    row("packets replayed", "—", &PACKETS.to_string());
    row(
        "emitted end-to-end",
        "all service paths work",
        &report.emitted.to_string(),
    );
    row(
        "LB sessions learned via punts",
        "one per flow",
        &report.sessions_installed.to_string(),
    );
    row(
        "dropped",
        "0 (no deny rules hit)",
        &report.dropped.to_string(),
    );
    println!("  recirculation histogram: {:?}", report.recirc_histogram);
    println!(
        "  latency p50 {:.0} ns, p99 {:.0} ns",
        report.latency_p50_ns, report.latency_p99_ns
    );

    // Every packet eventually emitted; every path-1/2/3 flow to the VIP
    // traverses with exactly one recirculation under this placement.
    assert_eq!(report.emitted, PACKETS);
    assert_eq!(report.dropped, 0);
    assert_eq!(
        report.recirc_histogram.keys().copied().collect::<Vec<_>>(),
        vec![1]
    );
    // Sessions: one per distinct flow (path-1 flows punt once each).
    assert!(report.sessions_installed <= FLOWS as u64);
    assert!(report.punted_then_learned == report.sessions_installed);

    // ---- fast-path ablation: the same trace, batched on the warm switch.
    // All LB sessions are now installed, so the whole workload runs in the
    // data plane; the sharded replay driver measures pure packets/sec on
    // the compiled engine with traces off.
    const REPLAY_SCALE: usize = 8;
    let mut per_flow: BTreeMap<usize, Vec<InjectedPacket>> = BTreeMap::new();
    for &flow_idx in &schedule {
        let (_path, flow) = &flows[flow_idx];
        let mut f = *flow;
        f.dst_ip = VIP;
        f.protocol = 6;
        let pkt = f.packet(16);
        per_flow.entry(flow_idx).or_default().extend(
            std::iter::repeat_with(|| InjectedPacket::new(pkt.clone(), IN_PORT)).take(REPLAY_SCALE),
        );
    }
    let grouped: Vec<Vec<InjectedPacket>> = per_flow.into_values().collect();
    let single = replay_sharded(&switch, &grouped, 1);
    let sharded = replay_sharded(&switch, &grouped, 4);
    assert_eq!(single.stats.injected, PACKETS * REPLAY_SCALE);
    assert_eq!(single.stats.emitted, PACKETS * REPLAY_SCALE);
    assert_eq!(sharded.stats.emitted, PACKETS * REPLAY_SCALE);
    report.fast_path_pps_1_worker = single.packets_per_sec;
    report.fast_path_pps_4_workers = sharded.packets_per_sec;
    row(
        "fast-path replay (batched, 1 worker)",
        "—",
        &format!("{:.0} pps", report.fast_path_pps_1_worker),
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    row(
        "fast-path replay (batched, 4 workers)",
        "—",
        &format!(
            "{:.0} pps ({cores} host core{} available)",
            report.fast_path_pps_4_workers,
            if cores == 1 { "" } else { "s" }
        ),
    );

    write_json("workload_replay", &report);
    println!("\n  SHAPE CHECK: a realistic multi-tenant trace runs entirely in the data plane after first-packet session learning; every packet stays within the §5 one-recirculation budget.");
}
