//! Fig. 8(b) — recirculation latency, on-chip vs off-chip.
//!
//! The paper measures ≈75 ns for on-chip recirculation (≈11.5 % of the
//! ≈650 ns port-to-port latency) and ≈70 ns more (≈145 ns) for off-chip
//! recirculation through a 1 m direct-attach cable. We drive packets
//! through the simulated switch with 0 and 1 recirculations and difference
//! the timestamps, exactly as the paper computes the figure.

use dejavu_asic::{InjectedPacket, PipeletId, TimingModel, TofinoProfile};
use dejavu_bench::{banner, row, write_json};
use dejavu_core::placement::Placement;
use dejavu_core::{ChainPolicy, ChainSet};
use dejavu_integration::{deploy_markers, encapsulated_packet, EXIT_PORT, IN_PORT};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    port_to_port_ns: f64,
    on_chip_recirc_ns: f64,
    off_chip_recirc_ns: f64,
    on_chip_fraction_of_port_to_port: f64,
}

/// Measures latency of a chain deployment with the given recirculation
/// count by differencing against the no-recirculation baseline.
fn measured_recirc_latency() -> (f64, f64) {
    // Baseline: one NF on ingress 0, exit on pipe 0 → 0 recirculations.
    let chains = ChainSet::new(vec![ChainPolicy::new(1, "x", vec!["n0"], 1.0)]).unwrap();
    let base_placement = Placement::sequential(vec![(PipeletId::ingress(0), vec!["n0"])]);
    let (mut sw, _) = deploy_markers(&chains, &base_placement).unwrap();
    let t0 = sw
        .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    assert_eq!(t0.recirculations, 0);
    assert_eq!(
        t0.disposition,
        dejavu_asic::switch::Disposition::Emitted { port: EXIT_PORT }
    );

    // One recirculation: the NF on ingress 1 (reached via pipeline 1's
    // loopback port).
    let loop_placement = Placement::sequential(vec![(PipeletId::ingress(1), vec!["n0"])]);
    let (mut sw, _) = deploy_markers(&chains, &loop_placement).unwrap();
    let t1 = sw
        .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    assert_eq!(t1.recirculations, 1);

    // The recirculation loop adds one recirc hop plus one extra
    // ingress+TM+egress traversal; the paper's "recirculation latency" is
    // the hop itself (egress deparser → ingress parser), so subtract the
    // pipe traversal the extra loop performs.
    let timing = TimingModel::tofino();
    let stages = TofinoProfile::wedge_100b_32x().stages_per_pipelet;
    let loop_total = t1.latency_ns - t0.latency_ns;
    let hop = loop_total - (timing.pipelet_ns(stages) * 2.0 + timing.tm_ns);
    (t0.latency_ns, hop)
}

fn main() {
    banner("Fig. 8(b)", "recirculation latency: on-chip vs off-chip");
    let timing = TimingModel::tofino();

    let (port_to_port, on_chip) = measured_recirc_latency();
    let off_chip = timing.recirc_off_chip_ns;

    row(
        "port-to-port latency (idle)",
        "~650 ns",
        &format!("{port_to_port:.0} ns"),
    );
    row(
        "on-chip recirculation",
        "~75 ns",
        &format!("{on_chip:.0} ns"),
    );
    row(
        "off-chip recirculation (1 m DAC)",
        "~145 ns",
        &format!("{off_chip:.0} ns"),
    );
    row(
        "on-chip / port-to-port",
        "~11.5 %",
        &format!("{:.1} %", 100.0 * on_chip / port_to_port),
    );
    row(
        "off-chip − on-chip",
        "~70 ns",
        &format!("{:.0} ns", off_chip - on_chip),
    );
    row(
        "off-chip / on-chip",
        "~2x slower",
        &format!("{:.2}x", off_chip / on_chip),
    );

    assert!((on_chip - 75.0).abs() < 1.0);
    assert!((port_to_port - 650.0).abs() < 1.0);

    write_json(
        "fig8b_latency",
        &Record {
            port_to_port_ns: port_to_port,
            on_chip_recirc_ns: on_chip,
            off_chip_recirc_ns: off_chip,
            on_chip_fraction_of_port_to_port: on_chip / port_to_port,
        },
    );
    println!("\n  SHAPE CHECK: 75 ns on-chip, 145 ns off-chip, 650 ns port-to-port — measured on the simulated data path.");
}
