//! Ablation A1 — placement strategies on random multi-chain workloads.
//!
//! §3.3 sketches the optimization model ("minimize the weighted sum of the
//! number of recirculations for all service chains"; "in practice, there
//! could be multiple chains … which adds another layer of complexity").
//! This ablation quantifies the strategies the core library ships: the
//! naive alternating baseline, greedy, simulated annealing, and the exact
//! exhaustive optimum, across random instances.

use dejavu_bench::{banner, write_json};
use dejavu_core::placement::PlacementProblem;
use dejavu_core::{ChainPolicy, ChainSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

#[derive(Serialize, Default)]
struct Summary {
    instances: usize,
    naive_mean_cost: f64,
    greedy_mean_cost: f64,
    anneal_mean_cost: f64,
    exact_mean_cost: f64,
    greedy_optimal_rate: f64,
    anneal_optimal_rate: f64,
    naive_vs_exact_mean_ratio: f64,
    exact_mean_ms: f64,
    anneal_mean_ms: f64,
}

fn random_instance(seed: u64) -> PlacementProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_nfs = rng.gen_range(4..=7);
    let n_chains = rng.gen_range(1..=4);
    let nfs: Vec<String> = (0..n_nfs).map(|i| format!("N{i}")).collect();
    let mut chains = Vec::new();
    for c in 0..n_chains {
        let mut seq: Vec<String> = nfs.iter().filter(|_| rng.gen_bool(0.75)).cloned().collect();
        if seq.len() < 2 {
            seq = nfs[..2].to_vec();
        }
        chains.push(ChainPolicy {
            path_id: (c + 1) as u16,
            name: format!("c{c}"),
            nfs: seq,
            weight: rng.gen_range(0.1..1.0),
        });
    }
    let stages: BTreeMap<String, u32> = nfs
        .iter()
        .map(|n| (n.clone(), rng.gen_range(1..5)))
        .collect();
    PlacementProblem::new(ChainSet { chains }, stages)
}

fn main() {
    banner(
        "Ablation A1",
        "placement strategies over random multi-chain workloads",
    );
    const INSTANCES: u64 = 40;

    let mut s = Summary::default();
    let (mut greedy_opt, mut anneal_opt) = (0usize, 0usize);
    let mut solved = 0usize;
    for seed in 0..INSTANCES {
        let p = random_instance(seed);
        let t0 = Instant::now();
        let Ok(exact) = p.exhaustive(1 << 24) else {
            continue;
        };
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        let Ok(naive) = p.naive() else { continue };
        let Ok(greedy) = p.greedy() else { continue };
        let t0 = Instant::now();
        let Ok(anneal) = p.anneal(seed ^ 0xABCD, 2000) else {
            continue;
        };
        let anneal_ms = t0.elapsed().as_secs_f64() * 1e3;

        let (ce, cn, cg, ca) = (
            p.cost(&exact).unwrap(),
            p.cost(&naive).unwrap(),
            p.cost(&greedy).unwrap(),
            p.cost(&anneal).unwrap(),
        );
        solved += 1;
        s.exact_mean_cost += ce;
        s.naive_mean_cost += cn;
        s.greedy_mean_cost += cg;
        s.anneal_mean_cost += ca;
        s.exact_mean_ms += exact_ms;
        s.anneal_mean_ms += anneal_ms;
        if (cg - ce).abs() < 1e-9 {
            greedy_opt += 1;
        }
        if (ca - ce).abs() < 1e-9 {
            anneal_opt += 1;
        }
        s.naive_vs_exact_mean_ratio += if ce > 0.0 { cn / ce } else { 1.0 };
        assert!(ce <= cn + 1e-9 && ce <= cg + 1e-9 && ce <= ca + 1e-9);
    }
    let n = solved as f64;
    s.instances = solved;
    s.exact_mean_cost /= n;
    s.naive_mean_cost /= n;
    s.greedy_mean_cost /= n;
    s.anneal_mean_cost /= n;
    s.exact_mean_ms /= n;
    s.anneal_mean_ms /= n;
    s.naive_vs_exact_mean_ratio /= n;
    s.greedy_optimal_rate = greedy_opt as f64 / n;
    s.anneal_optimal_rate = anneal_opt as f64 / n;

    println!("  instances solved: {}", s.instances);
    println!("  mean weighted recirculation cost:");
    println!("    naive     {:.3}", s.naive_mean_cost);
    println!(
        "    greedy    {:.3}  (optimal on {:.0}% of instances)",
        s.greedy_mean_cost,
        100.0 * s.greedy_optimal_rate
    );
    println!(
        "    annealing {:.3}  (optimal on {:.0}% of instances)",
        s.anneal_mean_cost,
        100.0 * s.anneal_optimal_rate
    );
    println!("    exact     {:.3}", s.exact_mean_cost);
    println!(
        "  naive/exact mean ratio: {:.2}x",
        s.naive_vs_exact_mean_ratio
    );
    println!(
        "  mean solver time: exhaustive {:.1} ms, annealing {:.1} ms",
        s.exact_mean_ms, s.anneal_mean_ms
    );

    assert!(s.instances >= 30);
    assert!(s.exact_mean_cost <= s.greedy_mean_cost + 1e-9);
    assert!(s.greedy_mean_cost <= s.naive_mean_cost + 1e-9);

    write_json("ablation_placement", &s);
    println!("\n  SHAPE CHECK: naive alternating placement leaves a sizable recirculation gap; greedy recovers most of it; annealing ≈ exact.");
}
