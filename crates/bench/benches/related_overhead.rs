//! §6 — related-work comparison: code-level merging (Dejavu) vs data-plane
//! hypervisors (Hyper4 / HyperV).
//!
//! The paper: hypervisor approaches "require significantly more hardware
//! resources (3-7×) compared to the native programs", while code-level
//! merging is near-native. We compile the five production NFs natively,
//! price the Dejavu framework's additive overhead, and price the same NFs
//! under the Hyper4/HyperV emulation cost models.

use dejavu_asic::{PipeletId, ResourceVector, TofinoProfile};
use dejavu_bench::{banner, row, write_json};
use dejavu_compiler::demand::program_demand;
use dejavu_compiler::{EmulationModel, StageAllocator};
use dejavu_core::compose::{compose_pipelet, CompositionMode, PipeletPlan, PlannedNf};
use dejavu_core::merge::merge_programs;
use dejavu_nf::edge_cloud_suite;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    nf: String,
    native_sram: u32,
    native_tcam: u32,
    dejavu_overhead_ratio: f64,
    hyper4_ratio: f64,
    hyperv_ratio: f64,
}

fn aggregate(v: &ResourceVector) -> f64 {
    // Scalar proxy for table comparison: SRAM + TCAM + crossbar bytes +
    // table IDs (the classes §6's 3-7× claim concerns).
    f64::from(v.sram_blocks + v.tcam_blocks + v.crossbar_bytes + v.table_ids)
}

fn main() {
    banner(
        "§6 comparison",
        "Dejavu merging vs Hyper4/HyperV emulation (5 production NFs)",
    );
    let nfs = edge_cloud_suite();
    let nf_refs: Vec<_> = nfs.iter().collect();

    // Dejavu overhead: framework tables added per hosted NF, measured by
    // composing each NF alone onto a pipelet and comparing with native.
    let allocator = StageAllocator::new(TofinoProfile::wedge_100b_32x());
    let mut records = Vec::new();
    println!(
        "  {:<12} {:>12} {:>12} {:>12} {:>12}",
        "NF", "native", "dejavu", "hyperv", "hyper4"
    );
    for nf in &nf_refs {
        let native = program_demand(nf.program());
        // Dejavu: the NF composed with its framework wrapper.
        let merged = merge_programs("one", &[nf]).unwrap();
        let plan = PipeletPlan {
            pipelet: PipeletId::ingress(0),
            nfs: vec![PlannedNf::indexed(nf.name())],
            mode: CompositionMode::Sequential,
        };
        let program = compose_pipelet(&merged, &plan).unwrap();
        let alloc = allocator
            .clone()
            .with_lint_config(dejavu_core::lint::pipelet_lint_config(&program, &plan))
            .compile(&program)
            .unwrap();
        let dejavu_total = alloc.total_used();
        let hyper4 = EmulationModel::hyper4();
        let hyperv = EmulationModel::hyperv();
        let dejavu_ratio = aggregate(&dejavu_total) / aggregate(&native);
        let h4_ratio = hyper4.overhead_ratio(nf.program());
        let hv_ratio = hyperv.overhead_ratio(nf.program());
        println!(
            "  {:<12} {:>12.1} {:>11.1}x {:>11.1}x {:>11.1}x",
            nf.name(),
            aggregate(&native),
            dejavu_ratio,
            hv_ratio,
            h4_ratio
        );
        records.push(Record {
            nf: nf.name().to_string(),
            native_sram: native.sram_blocks,
            native_tcam: native.tcam_blocks,
            dejavu_overhead_ratio: dejavu_ratio,
            hyper4_ratio: h4_ratio,
            hyperv_ratio: hv_ratio,
        });
    }

    let avg =
        |f: &dyn Fn(&Record) -> f64| records.iter().map(f).sum::<f64>() / records.len() as f64;
    let dejavu_avg = avg(&|r: &Record| r.dejavu_overhead_ratio);
    let h4_avg = avg(&|r: &Record| r.hyper4_ratio);
    let hv_avg = avg(&|r: &Record| r.hyperv_ratio);

    println!();
    row(
        "Dejavu overhead vs native (avg)",
        "near-native",
        &format!("{dejavu_avg:.2}x"),
    );
    row(
        "HyperV-style emulation (avg)",
        "3-7x",
        &format!("{hv_avg:.2}x"),
    );
    row(
        "Hyper4-style emulation (avg)",
        "3-7x",
        &format!("{h4_avg:.2}x"),
    );

    // Shape assertions: Dejavu well below the hypervisors; hypervisors in
    // the published 3-7× band.
    assert!(dejavu_avg < hv_avg && dejavu_avg < h4_avg);
    assert!((3.0..=7.0).contains(&hv_avg), "hyperv avg {hv_avg}");
    assert!((3.0..=7.0).contains(&h4_avg), "hyper4 avg {h4_avg}");
    assert!(
        dejavu_avg < 2.5,
        "dejavu overhead should be near-native, got {dejavu_avg}"
    );

    write_json("related_overhead", &records);
    println!("\n  SHAPE CHECK: hypervisor emulation sits in the 3-7x band; Dejavu's merge stays near-native — §6's comparison reproduced.");
}
