//! Criterion micro-benchmark: placement optimizer scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dejavu_core::placement::PlacementProblem;
use dejavu_core::{ChainPolicy, ChainSet};
use std::collections::BTreeMap;

fn problem(n_nfs: usize) -> PlacementProblem {
    let nfs: Vec<String> = (0..n_nfs).map(|i| format!("N{i}")).collect();
    let chains = ChainSet::new(vec![ChainPolicy {
        path_id: 1,
        name: "c".into(),
        nfs: nfs.clone(),
        weight: 1.0,
    }])
    .unwrap();
    let stages: BTreeMap<String, u32> = nfs.iter().map(|n| (n.clone(), 2u32)).collect();
    PlacementProblem::new(chains, stages)
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    for n in [4usize, 6, 8] {
        let p = problem(n);
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &p, |b, p| {
            b.iter(|| p.exhaustive(1 << 24).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &p, |b, p| {
            b.iter(|| p.greedy().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("anneal_1k", n), &p, |b, p| {
            b.iter(|| p.anneal(7, 1000).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_placement
}
criterion_main!(benches);
