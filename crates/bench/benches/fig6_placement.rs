//! Fig. 6 — NF placement under the SFC policy A-B-C-D-E-F.
//!
//! The paper's example: the naive alternating placement (Fig. 6(a)) forces
//! three recirculations; exchanging C and EF (Fig. 6(b)) needs only one.
//! We regenerate both shapes, confirm the counts with the cost model *and*
//! with packets on the simulated switch, then let the optimizers find the
//! optimum, and price the difference in throughput using the §4 feedback
//! model.

use dejavu_asic::switch::Disposition;
use dejavu_asic::{InjectedPacket, PipeletId};
use dejavu_bench::{banner, row, write_json};
use dejavu_core::placement::{traverse, Placement, PlacementProblem};
use dejavu_core::{ChainPolicy, ChainSet};
use dejavu_integration::{deploy_markers, encapsulated_packet, EXIT_PORT, IN_PORT};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Record {
    placement: String,
    model_recirculations: u32,
    switch_recirculations: usize,
    effective_throughput_gbps: f64,
}

fn problem() -> PlacementProblem {
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "abcdef",
        vec!["A", "B", "C", "D", "E", "F"],
        1.0,
    )])
    .unwrap();
    let mut stages = BTreeMap::new();
    for nf in ["A", "B", "E", "F"] {
        stages.insert(nf.to_string(), 2u32);
    }
    for nf in ["C", "D"] {
        stages.insert(nf.to_string(), 6u32);
    }
    PlacementProblem::new(chains, stages)
}

fn measure(chains: &ChainSet, placement: &Placement) -> (u32, usize) {
    let model = traverse(&chains.chains[0], placement, 0, 0, false).unwrap();
    let (mut sw, _) = deploy_markers(chains, placement).unwrap();
    let t = sw
        .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    (model.recirculations, t.recirculations)
}

fn main() {
    banner("Fig. 6", "placement of chain A-B-C-D-E-F on 2 pipelines");
    let p = problem();

    let fig6a = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["A", "B"]),
        (PipeletId::egress(0), vec!["C"]),
        (PipeletId::ingress(1), vec!["D"]),
        (PipeletId::egress(1), vec!["E", "F"]),
    ]);
    let fig6b = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["A", "B"]),
        (PipeletId::egress(1), vec!["C"]),
        (PipeletId::ingress(1), vec!["D"]),
        (PipeletId::egress(0), vec!["E", "F"]),
    ]);

    let mut records = Vec::new();
    for (name, placement, paper) in [
        ("Fig 6(a) naive", &fig6a, 3u32),
        ("Fig 6(b) optimized", &fig6b, 1u32),
    ] {
        let (model, switch) = measure(&p.chains, placement);
        let throughput = dejavu_asic::feedback::effective_throughput_gbps(100.0, model as usize);
        row(
            &format!("{name} recirculations"),
            &paper.to_string(),
            &format!("model {model}, switch {switch}"),
        );
        assert_eq!(model, paper, "{name}");
        assert_eq!(switch as u32, paper, "{name} on switch");
        records.push(Record {
            placement: name.to_string(),
            model_recirculations: model,
            switch_recirculations: switch,
            effective_throughput_gbps: throughput,
        });
    }

    // The optimizers discover Fig 6(b)'s cost (or better) from scratch.
    let naive = p.naive().unwrap();
    let exact = p.exhaustive(1 << 22).unwrap();
    let greedy = p.greedy().unwrap();
    let annealed = p.anneal(11, 5000).unwrap();
    row(
        "naive baseline cost",
        "3 recirc",
        &format!("{:.1}", p.cost(&naive).unwrap()),
    );
    row(
        "exhaustive optimum cost",
        "1 recirc",
        &format!("{:.1}", p.cost(&exact).unwrap()),
    );
    row(
        "greedy cost",
        "—",
        &format!("{:.1}", p.cost(&greedy).unwrap()),
    );
    row(
        "simulated annealing cost",
        "—",
        &format!("{:.1}", p.cost(&annealed).unwrap()),
    );
    assert!(p.cost(&exact).unwrap() <= 1.0);

    // Price the difference: throughput per §4 with the needed recirculations.
    println!(
        "\n  throughput impact (per §4 model, 100G port): naive {:.1} Gbps vs optimized {:.1} Gbps",
        records[0].effective_throughput_gbps, records[1].effective_throughput_gbps,
    );

    write_json("fig6_placement", &records);
    println!("\n  SHAPE CHECK: 3 vs 1 recirculations reproduced in the model AND on the simulated switch; optimizers find the 1-recirculation placement.");
}
