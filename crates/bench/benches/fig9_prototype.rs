//! Fig. 9 / §5 — the prototype: 5 production NFs on a 2-pipeline Tofino.
//!
//! The paper's initial validation: the Fig. 2 service chains deployed on a
//! Wedge-100B 32X with the 16 Ethernet ports of pipeline 1 in loopback
//! mode — the switch then offers 1.6 Tbps externally and lets all traffic
//! recirculate once — and the Packet Test Framework verifying input/output
//! packets of multiple SFC paths.
//!
//! We regenerate all of it: the deployment, the capacity arithmetic, and a
//! PTF suite over every path (including failure paths).

use dejavu_asic::TofinoProfile;
use dejavu_bench::{banner, row, write_json};
use dejavu_core::placement::traverse;
use dejavu_integration::{chain_packet, fig9_testbed, EXIT_PORT, IN_PORT};
use dejavu_nf::load_balancer::{five_tuple_of, session_entry_for, SESSION_TABLE};
use dejavu_ptf::{run_suite, TestCase};
use serde::Serialize;

const VIP: u32 = 0xc633_6450;
const BACKEND: u32 = 0x0a63_0001;

#[derive(Serialize)]
struct Record {
    external_capacity_gbps: f64,
    single_recirc_fraction: f64,
    ptf_passed: usize,
    ptf_failed: usize,
    per_chain_recirculations: Vec<(u16, u32)>,
}

fn main() {
    banner(
        "Fig. 9 / §5",
        "prototype: 5-NF SFC on 2 pipelines / 4 pipelets",
    );

    // Capacity arithmetic of the §5 loopback configuration.
    let profile = TofinoProfile::wedge_100b_32x();
    let ext = profile.external_capacity_gbps(16);
    let frac = profile.single_recirc_fraction(16);
    row(
        "external capacity (16 ports loopback)",
        "1.6 Tbps",
        &format!("{:.1} Tbps", ext / 1000.0),
    );
    row(
        "traffic that can recirculate once",
        "all (100 %)",
        &format!("{:.0} %", frac * 100.0),
    );
    assert_eq!(ext, 1600.0);
    assert_eq!(frac, 1.0);

    // Deploy and pre-install the LB session for the test flow.
    let (mut switch, dep) = fig9_testbed();
    let pkt1 = chain_packet(1, VIP, 80);
    let tuple = five_tuple_of(&pkt1).unwrap();
    dep.install(
        &mut switch,
        "lb",
        SESSION_TABLE,
        session_entry_for(&tuple, BACKEND),
    )
    .unwrap();

    // Per-chain recirculation counts, model-side.
    let mut per_chain = Vec::new();
    for chain in &dep.chains.chains {
        let c = traverse(chain, &dep.placement, 0, 0, false).unwrap();
        row(
            &format!("chain {} ({}) recirculations", chain.path_id, chain.name),
            "≤1 (§5 provisioning)",
            &c.recirculations.to_string(),
        );
        assert!(c.recirculations <= 1);
        per_chain.push((chain.path_id, c.recirculations));
    }

    // PTF suite over every path, as §5 does.
    let decapped = |b: &[u8]| {
        let et = u16::from_be_bytes([b[12], b[13]]);
        if et == 0x0800 {
            Ok(())
        } else {
            Err(format!("ether_type {et:#06x}"))
        }
    };
    let suite = vec![
        TestCase::expect_port("path1 full chain", IN_PORT, pkt1, EXIT_PORT)
            .expect_recirculations(1)
            .expect_table_hit("lb__lb_session")
            .expect_table_hit("router__routes")
            .check_packet(decapped)
            .check_packet(move |b| {
                let dst = u32::from_be_bytes([b[30], b[31], b[32], b[33]]);
                if dst == BACKEND {
                    Ok(())
                } else {
                    Err(format!("dst {dst:#010x}"))
                }
            }),
        TestCase::expect_port(
            "path2 vgw chain",
            IN_PORT,
            chain_packet(2, VIP, 80),
            EXIT_PORT,
        )
        .expect_recirculations(1)
        .expect_table_hit("vgw__vni_map")
        .check_packet(decapped),
        TestCase::expect_port(
            "path3 direct chain",
            IN_PORT,
            chain_packet(3, VIP, 80),
            EXIT_PORT,
        )
        .expect_recirculations(1)
        .check_packet(decapped),
        TestCase::expect_drop("firewall deny (tcp/22)", IN_PORT, chain_packet(1, VIP, 22)),
        TestCase::expect_cpu(
            "unclassified punts",
            IN_PORT,
            dejavu_traffic::PacketBuilder::tcp()
                .src_ip(0xac10_0001)
                .dst_ip(VIP)
                .build(),
        ),
    ];
    let n_cases = suite.len();
    let report = run_suite(&mut switch, suite);
    println!("\n{report}");
    row(
        "PTF validation",
        "all paths verified",
        &format!("{}/{} passed", report.passed(), n_cases),
    );
    assert!(report.all_passed());

    write_json(
        "fig9_prototype",
        &Record {
            external_capacity_gbps: ext,
            single_recirc_fraction: frac,
            ptf_passed: report.passed(),
            ptf_failed: report.failed(),
            per_chain_recirculations: per_chain,
        },
    );
    println!("\n  SHAPE CHECK: 1.6 Tbps / one-recirculation provisioning reproduced; all SFC paths verified end-to-end, as §5 reports.");
}
