//! Table 1 — resource overhead of the Dejavu framework on the ASIC.
//!
//! The paper reports the framework's own tables (branching,
//! check_next_nf, check_sfcFlags) consuming 20.8 % of MAU stages, 4.2 % of
//! table IDs, 2 % of gateways, 0.4 % of crossbars, 1.5 % of VLIWs, 0.2 % of
//! SRAM, and 0 % TCAM — "due to the simple logic and bare-minimum table
//! sizes, we observe negligible overheads".
//!
//! We deploy the §5 prototype shape with *null* NFs (empty control blocks),
//! so every compiled table is a framework table, and report the same seven
//! columns as percentages of the busiest pipeline's totals.

use dejavu_asic::{Gress, PipeletId, ResourceVector, TofinoProfile};
use dejavu_bench::{banner, row, write_json};
use dejavu_compiler::{ResourceReport, StageAllocator};
use dejavu_core::compose::{compose_pipelet, CompositionMode, PipeletPlan, PlannedNf};
use dejavu_core::merge::merge_programs;
use dejavu_nf::null_nf;
use serde::Serialize;
use std::collections::BTreeSet;

#[derive(Serialize)]
struct Row {
    stages_pct: f64,
    table_ids_pct: f64,
    gateways_pct: f64,
    crossbars_pct: f64,
    vliws_pct: f64,
    sram_pct: f64,
    tcam_pct: f64,
}

fn main() {
    banner(
        "Table 1",
        "Dejavu framework resource overhead (null-NF prototype)",
    );
    let profile = TofinoProfile::wedge_100b_32x();
    let nfs: Vec<_> = ["classifier", "firewall", "vgw", "lb", "router"]
        .iter()
        .map(|n| null_nf(n))
        .collect();
    let nf_refs: Vec<_> = nfs.iter().collect();
    let merged = merge_programs("table1", &nf_refs).unwrap();
    let allocator = StageAllocator::new(profile.clone());

    // The §5 prototype shape: classifier+firewall on ingress 0, vgw+lb on
    // egress 1, router on ingress 1 — pipeline 1 is the busiest (3 NFs).
    let plans = [
        (PipeletId::ingress(0), vec!["classifier", "firewall"]),
        (PipeletId::egress(0), vec![]),
        (PipeletId::ingress(1), vec!["router"]),
        (PipeletId::egress(1), vec!["vgw", "lb"]),
    ];

    // Aggregate framework usage per pipeline.
    let mut per_pipeline_used = vec![ResourceVector::ZERO; profile.pipelines];
    let mut per_pipeline_stages: Vec<BTreeSet<(Gress, usize)>> =
        vec![BTreeSet::new(); profile.pipelines];
    for (pipelet, nf_names) in &plans {
        let plan = PipeletPlan {
            pipelet: *pipelet,
            nfs: nf_names.iter().map(|n| PlannedNf::indexed(*n)).collect(),
            mode: CompositionMode::Sequential,
        };
        let program = compose_pipelet(&merged, &plan).unwrap();
        let alloc = allocator
            .clone()
            .with_lint_config(dejavu_core::lint::pipelet_lint_config(&program, &plan))
            .compile(&program)
            .unwrap();
        for (table, demand) in &alloc.demand_of {
            if table.starts_with("dv_") {
                per_pipeline_used[pipelet.pipeline] += *demand;
                let first = alloc.stage_of[table];
                let last = alloc.last_stage_of[table];
                for s in first..=last {
                    per_pipeline_stages[pipelet.pipeline].insert((pipelet.gress, s));
                }
            }
        }
    }

    // Report the busiest pipeline (the paper reports the aggregate of its
    // prototype's single loaded program).
    let busiest = (0..profile.pipelines)
        .max_by_key(|&p| per_pipeline_stages[p].len())
        .unwrap();
    let report = ResourceReport::from_usage(
        per_pipeline_stages[busiest].len(),
        per_pipeline_used[busiest],
        &profile,
    );

    println!("\n  column        {:^14} {:^14}", "paper", "measured");
    row("Stages", "20.8 %", &format!("{:.1} %", report.stages_pct));
    row(
        "Table IDs",
        "4.2 %",
        &format!("{:.1} %", report.table_ids_pct),
    );
    row("Gateways", "2 %", &format!("{:.1} %", report.gateways_pct));
    row(
        "Crossbars",
        "0.4 %",
        &format!("{:.1} %", report.crossbars_pct),
    );
    row("VLIWs", "1.5 %", &format!("{:.1} %", report.vliws_pct));
    row("SRAM", "0.2 %", &format!("{:.1} %", report.sram_pct));
    row("TCAM", "0 %", &format!("{:.1} %", report.tcam_pct));

    // Shape assertions: stages are the dominant cost (tens of percent),
    // everything else is single-digit or below.
    assert!(
        report.stages_pct >= 10.0 && report.stages_pct <= 35.0,
        "stages {}",
        report.stages_pct
    );
    assert!(report.table_ids_pct < 10.0);
    assert!(report.sram_pct < 5.0);
    assert!(report.vliws_pct < 10.0);
    // Note: the framework's flag-translation entries are ternary, so unlike
    // the paper's encoding our model charges a small TCAM share; the
    // "negligible" conclusion is unchanged.
    assert!(report.tcam_pct < 10.0);

    write_json(
        "table1_resources",
        &Row {
            stages_pct: report.stages_pct,
            table_ids_pct: report.table_ids_pct,
            gateways_pct: report.gateways_pct,
            crossbars_pct: report.crossbars_pct,
            vliws_pct: report.vliws_pct,
            sram_pct: report.sram_pct,
            tcam_pct: report.tcam_pct,
        },
    );
    println!("\n  SHAPE CHECK: stages dominate (tens of %) because Dejavu tables chain on the service index; all memory/compute overheads are negligible — matching Table 1's conclusion.");
}
