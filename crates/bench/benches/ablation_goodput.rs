//! Ablation A6 — workload goodput under different placements.
//!
//! Joins the two halves of the paper: the placement model (§3.3) decides
//! how many recirculations each chain takes, and the feedback-queue model
//! (§4) prices those recirculations in delivered bandwidth. For the Fig. 2
//! workload on the §5 switch configuration (16 loopback ports → 1.6 Tbps
//! external, 1.8 Tbps loopback pool), we compare end-to-end goodput across
//! placement strategies.

use dejavu_asic::feedback::{solve_mix, TrafficClass};
use dejavu_asic::TofinoProfile;
use dejavu_bench::{banner, row, write_json};
use dejavu_core::placement::{traverse, Placement, PlacementProblem};
use dejavu_core::ChainSet;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Strategy {
    name: String,
    per_chain_recirculations: Vec<(u16, u32)>,
    goodput_gbps: f64,
    goodput_fraction: f64,
}

fn problem() -> PlacementProblem {
    let chains = ChainSet::edge_cloud_example();
    let stages: BTreeMap<String, u32> = [
        ("classifier", 2u32),
        ("firewall", 3),
        ("vgw", 2),
        ("lb", 3),
        ("router", 3),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_string(), s))
    .collect();
    PlacementProblem::new(chains, stages)
}

fn goodput(
    p: &PlacementProblem,
    placement: &Placement,
    external: f64,
    loopback: f64,
) -> (Vec<(u16, u32)>, f64) {
    let total_w: f64 = p.chains.total_weight();
    let mut classes = Vec::new();
    let mut per_chain = Vec::new();
    for chain in &p.chains.chains {
        let c = traverse(chain, placement, p.entry_pipeline, p.exit_pipeline, false).unwrap();
        per_chain.push((chain.path_id, c.recirculations));
        classes.push(TrafficClass {
            rate_gbps: external * chain.weight / total_w,
            recirculations: c.recirculations as usize,
        });
    }
    let mix = solve_mix(&classes, loopback);
    (per_chain, mix.total_gbps())
}

fn main() {
    banner(
        "Ablation A6",
        "Fig. 2 workload goodput vs placement strategy (§3.3 × §4)",
    );
    let p = problem();
    let profile = TofinoProfile::wedge_100b_32x();
    let external = profile.external_capacity_gbps(16); // 1.6 Tbps
    let loopback =
        16.0 * profile.port_gbps + profile.dedicated_recirc_gbps * profile.pipelines as f64; // 1.8 Tbps

    let strategies: Vec<(&str, Placement)> = vec![
        ("naive alternating", p.naive().unwrap()),
        ("greedy", p.greedy().unwrap()),
        ("simulated annealing", p.anneal(3, 4000).unwrap()),
        ("exhaustive optimum", p.exhaustive(1 << 22).unwrap()),
    ];

    let mut records = Vec::new();
    for (name, placement) in &strategies {
        let (per_chain, delivered) = goodput(&p, placement, external, loopback);
        let recircs: Vec<String> = per_chain
            .iter()
            .map(|(id, k)| format!("path{id}:{k}"))
            .collect();
        row(
            name,
            "—",
            &format!(
                "{:.0} Gbps of {external:.0} ({})",
                delivered,
                recircs.join(" ")
            ),
        );
        records.push(Strategy {
            name: name.to_string(),
            per_chain_recirculations: per_chain,
            goodput_gbps: delivered,
            goodput_fraction: delivered / external,
        });
    }

    let naive = records[0].goodput_gbps;
    let best = records
        .iter()
        .map(|r| r.goodput_gbps)
        .fold(0.0f64, f64::max);
    println!(
        "\n  optimized placement delivers {:.2}x the naive goodput ({:.0} vs {:.0} Gbps)",
        best / naive,
        best,
        naive
    );
    assert!(best >= naive);
    // With §5 provisioning (all chains ≤1 recirc under a good placement),
    // the optimum should deliver (nearly) the full external capacity.
    assert!(best >= 0.95 * external, "best {best} of {external}");

    write_json("ablation_goodput", &records);
    println!("\n  SHAPE CHECK: placement quality translates directly into workload goodput through the §4 recirculation tax — the paper's core systems argument, end to end.");
}
