//! Ablation A3 — multi-switch chaining (§7, "Towards clusters of switch
//! data planes").
//!
//! Chains too large for one ASIC spill across back-to-back switches; the
//! off-chip hop costs ≈2× an on-chip recirculation (Fig. 8(b)). We sweep
//! chain length and cluster size, report feasibility, hop counts, and the
//! end-to-end latency estimate.

use dejavu_asic::{InjectedPacket, TimingModel};
use dejavu_bench::{banner, write_json};
use dejavu_core::deploy::DeployOptions;
use dejavu_core::multiswitch::{chain_latency_ns, deploy_cluster, ClusterProblem, ClusterWiring};
use dejavu_core::placement::PlacementProblem;
use dejavu_core::{ChainPolicy, ChainSet};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Point {
    chain_length: usize,
    cluster_size: usize,
    feasible: bool,
    switches_used: usize,
    inter_switch_hops: u32,
    on_chip_recirculations: u32,
    latency_estimate_ns: f64,
}

fn problem(chain_len: usize) -> PlacementProblem {
    let nfs: Vec<String> = (0..chain_len).map(|i| format!("N{i}")).collect();
    let chains = ChainSet::new(vec![ChainPolicy {
        path_id: 1,
        name: "long".into(),
        nfs: nfs.clone(),
        weight: 1.0,
    }])
    .unwrap();
    let stages: BTreeMap<String, u32> = nfs.iter().map(|n| (n.clone(), 3u32)).collect();
    PlacementProblem::new(chains, stages)
}

fn main() {
    banner("Ablation A3", "multi-switch chaining: spill, hops, latency");
    let timing = TimingModel::tofino();
    let mut points = Vec::new();

    println!(
        "  {:>6} {:>8} {:>9} {:>6} {:>8} {:>8} {:>12}",
        "chain", "cluster", "feasible", "used", "hops", "recircs", "latency"
    );
    for chain_len in [4usize, 8, 12, 16, 24] {
        for cluster_size in [1usize, 2, 3, 4] {
            let cp = ClusterProblem::new(problem(chain_len), cluster_size);
            match cp.greedy_spill() {
                Ok(placement) => {
                    let cost = cp
                        .chain_cost(&cp.template.chains.chains[0], &placement)
                        .unwrap();
                    let used = placement
                        .switches
                        .iter()
                        .filter(|p| p.pipelets.values().any(|v| !v.is_empty()))
                        .count();
                    // Pipelet passes ≈ 2 per switch visited + 2 per loop.
                    let passes =
                        (2 * used) as u32 + 2 * cost.recirculations + 2 * cost.inter_switch_hops;
                    let latency = chain_latency_ns(&cost, passes, 12, &timing);
                    println!(
                        "  {chain_len:>6} {cluster_size:>8} {:>9} {used:>6} {:>8} {:>8} {:>10.0} ns",
                        "yes", cost.inter_switch_hops, cost.recirculations, latency
                    );
                    points.push(Point {
                        chain_length: chain_len,
                        cluster_size,
                        feasible: true,
                        switches_used: used,
                        inter_switch_hops: cost.inter_switch_hops,
                        on_chip_recirculations: cost.recirculations,
                        latency_estimate_ns: latency,
                    });
                }
                Err(_) => {
                    println!(
                        "  {chain_len:>6} {cluster_size:>8} {:>9} {:>6} {:>8} {:>8} {:>12}",
                        "no", "-", "-", "-", "-"
                    );
                    points.push(Point {
                        chain_length: chain_len,
                        cluster_size,
                        feasible: false,
                        switches_used: 0,
                        inter_switch_hops: 0,
                        on_chip_recirculations: 0,
                        latency_estimate_ns: 0.0,
                    });
                }
            }
        }
    }

    // Shape assertions: short chains fit one switch; the longest needs >1;
    // hops grow with chain length; latencies stay in the microsecond range
    // ("low enough to be practical").
    assert!(points
        .iter()
        .any(|p| p.chain_length == 4 && p.cluster_size == 1 && p.feasible));
    assert!(points
        .iter()
        .any(|p| p.chain_length == 24 && p.cluster_size == 1 && !p.feasible));
    assert!(points.iter().any(|p| p.chain_length == 24 && p.feasible));
    let feasible_max = points
        .iter()
        .filter(|p| p.feasible)
        .map(|p| p.latency_estimate_ns)
        .fold(0.0f64, f64::max);
    assert!(
        feasible_max < 20_000.0,
        "latency {feasible_max} ns should stay practical"
    );

    // Live validation: deploy the 12-NF / 2-switch configuration for real
    // and drive a packet across the wired cluster; the executed hop count
    // must match the cost model's.
    let chain_len = 12usize;
    let cp = ClusterProblem::new(problem(chain_len), 2);
    let placement = cp.greedy_spill().unwrap();
    let model_cost = cp
        .chain_cost(&cp.template.chains.chains[0], &placement)
        .unwrap();
    let nf_names: Vec<String> = (0..chain_len).map(|i| format!("N{i}")).collect();
    let nfs: Vec<_> = nf_names
        .iter()
        .enumerate()
        .map(|(i, n)| dejavu_integration::marker_nf(n, i as u32))
        .collect();
    let refs: Vec<_> = nfs.iter().collect();
    let mut net = deploy_cluster(
        &refs,
        &cp.template.chains,
        &placement,
        &dejavu_asic::TofinoProfile::wedge_100b_32x(),
        [(1u16, 2u16)].into_iter().collect(),
        &ClusterWiring::default(),
        &DeployOptions::default(),
    )
    .expect("live cluster deploys");
    let t = net
        .inject(InjectedPacket::new(
            dejavu_integration::encapsulated_packet(1, 0),
            0,
        ))
        .expect("live injection");
    println!(
        "\n  live 12-NF / 2-switch run: {:?}, wire hops {} (model {}), recirculations {}",
        t.disposition, t.inter_switch_hops, model_cost.inter_switch_hops, t.recirculations
    );
    assert!(matches!(
        t.disposition,
        dejavu_asic::switch::Disposition::Emitted { .. }
    ));
    assert_eq!(t.inter_switch_hops as u32, model_cost.inter_switch_hops);

    write_json("ablation_multiswitch", &points);
    println!("\n  SHAPE CHECK: long chains become feasible with more switches; off-chip hops add ~145 ns each and total latency stays in microseconds — §7's practicality argument.");
}
