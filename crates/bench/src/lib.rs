//! # dejavu-bench — experiment harness
//!
//! One bench target per table and figure of the paper's evaluation, plus
//! ablation studies and Criterion micro-benchmarks. Every generator prints
//! the paper's rows/series next to the reproduction's measurements and
//! writes a JSON record under `target/experiments/` so EXPERIMENTS.md is
//! regenerable.
//!
//! Run everything with `cargo bench --workspace`; run one experiment with
//! e.g. `cargo bench -p dejavu-bench --bench fig8a_throughput`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Prints a section header for an experiment.
pub fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints a two-column paper-vs-measured comparison row.
pub fn row(label: &str, paper: &str, measured: &str) {
    println!("  {label:<44} paper: {paper:<16} measured: {measured}");
}

/// Writes an experiment's JSON record under `target/experiments/<id>.json`.
pub fn write_json<T: Serialize>(id: &str, value: &T) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{id}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = fs::write(&path, s);
            println!("  [record: {}]", path.display());
        }
    }
}

/// Relative-error helper for summaries.
pub fn pct_err(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        return 0.0;
    }
    100.0 * (measured - reference).abs() / reference.abs()
}

#[cfg(test)]
mod tests {
    #[test]
    fn pct_err_basics() {
        assert_eq!(super::pct_err(38.2, 38.2), 0.0);
        assert!((super::pct_err(50.0, 40.0) - 25.0).abs() < 1e-12);
        assert_eq!(super::pct_err(1.0, 0.0), 0.0);
    }
}
