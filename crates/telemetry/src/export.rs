//! Exporters (JSON, Prometheus text) and a small JSON parser.
//!
//! The JSON exporter rides on the workspace `serde_json` shim; the parser
//! exists because the shim is write-only — CI validates an exported
//! snapshot by parsing it back, and external tools (scripts/check.sh)
//! need the round-trip to be self-contained.

use crate::snapshot::{MetricValue, MetricsSnapshot};
use serde::json::Value;

/// Serializes a snapshot to pretty-printed JSON.
pub fn to_json_string(snapshot: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(snapshot)
        .unwrap_or_else(|e| unreachable!("snapshot serialization is infallible: {e:?}"))
}

/// Serializes a snapshot to Prometheus text exposition format.
///
/// Names follow the convention used throughout the workspace — labels are
/// embedded in the metric name (`port_rx_packets{port="3"}`) — which is
/// already the Prometheus sample syntax, so emission is direct. Histograms
/// expand to cumulative `_bucket{le="…"}` series plus `_sum`/`_count`,
/// with `le` set to each log2 bucket's exclusive upper bound.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{name} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{name} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                let (base, labels) = split_labels(name);
                let mut cumulative = 0u64;
                for (i, &b) in h.buckets.iter().enumerate() {
                    cumulative += b;
                    if b == 0 && cumulative == 0 {
                        continue;
                    }
                    let le = 1u128 << (i + 1);
                    out.push_str(&format!(
                        "{base}_bucket{{{labels}le=\"{le}\"}} {cumulative}\n"
                    ));
                }
                out.push_str(&format!(
                    "{base}_bucket{{{labels}le=\"+Inf\"}} {count}\n",
                    count = h.count
                ));
                out.push_str(&format!(
                    "{base}_sum{labelled} {sum}\n",
                    labelled = original_labels(name),
                    sum = h.sum
                ));
                out.push_str(&format!(
                    "{base}_count{labelled} {count}\n",
                    labelled = original_labels(name),
                    count = h.count
                ));
            }
        }
    }
    out
}

/// Splits `name{a="b"}` into `("name", "a=\"b\",")` — the label part ready
/// to prepend inside a brace set. Plain names yield an empty label part.
fn split_labels(name: &str) -> (&str, String) {
    match name.find('{') {
        Some(i) => {
            let inner = name[i + 1..].trim_end_matches('}');
            let mut labels = inner.to_string();
            if !labels.is_empty() {
                labels.push(',');
            }
            (&name[..i], labels)
        }
        None => (name, String::new()),
    }
}

/// The `{…}` suffix of a labelled name, or empty for plain names.
fn original_labels(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[i..],
        None => "",
    }
}

/// Parses JSON text into the workspace shim's [`Value`]. Supports the full
/// JSON grammar (objects, arrays, strings with escapes, numbers, booleans,
/// null); numbers without fraction/exponent parse as `Int`/`UInt`, others
/// as `Float`. Errors carry a byte offset and description.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // The input came from &str and pos only ever advances
                    // by whole scalars, so this re-validation cannot fail.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::snapshot::MetricsSnapshot;

    #[test]
    fn parse_scalars_and_nesting() {
        let v = parse_json(r#"{"a": 1, "b": [-2, 3.5, "x\ny", true, null], "c": {}}"#).unwrap();
        let Value::Object(fields) = v else { panic!() };
        assert_eq!(fields[0], ("a".to_string(), Value::UInt(1)));
        let Value::Array(items) = &fields[1].1 else {
            panic!()
        };
        assert_eq!(items[0], Value::Int(-2));
        assert_eq!(items[1], Value::Float(3.5));
        assert_eq!(items[2], Value::Str("x\ny".to_string()));
        assert_eq!(items[3], Value::Bool(true));
        assert_eq!(items[4], Value::Null);
        assert_eq!(fields[2].1, Value::Object(vec![]));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn exporters_cover_all_kinds() {
        let mut r = MetricsRegistry::enabled();
        let c = r.counter("pkts_total{pipelet=\"ingress0\"}");
        let g = r.gauge("queue_depth");
        let h = r.histogram("latency_ns{port=\"1\"}");
        r.add(c, 7);
        r.set_gauge(g, -3);
        r.observe(h, 650);
        r.observe(h, 1300);
        let s = MetricsSnapshot::capture(&r);

        let json = to_json_string(&s);
        let parsed = parse_json(&json).unwrap();
        assert!(matches!(parsed, Value::Object(_)));

        let prom = to_prometheus(&s);
        assert!(prom.contains("pkts_total{pipelet=\"ingress0\"} 7"));
        assert!(prom.contains("queue_depth -3"));
        assert!(prom.contains("latency_ns_count{port=\"1\"} 2"));
        assert!(prom.contains("latency_ns_sum{port=\"1\"} 1950"));
        assert!(prom.contains("le=\"+Inf\"} 2"));
        // 650 lands in bucket 9 → le=1024 cumulative 1.
        assert!(prom.contains("latency_ns_bucket{port=\"1\",le=\"1024\"} 1"));
    }
}
