//! The metrics registry: handle-based counters, gauges, and histograms.
//!
//! The registry is built for one access pattern: a hot loop that increments
//! pre-registered metrics by dense handle, and a cold path (control plane,
//! exporters, tests) that walks everything by name. Registration happens at
//! configuration time (program load, switch construction) and hands back a
//! copyable id; per-packet updates are a bounds-checked slot access plus one
//! relaxed atomic add — no name hashing, no locking, no allocation.
//!
//! Updates go through atomics so shards can be scraped concurrently and so
//! interior mutability is available behind `&self` (the switch's lookup
//! paths are `&self`). Cross-thread *aggregation* is done by snapshot
//! merging, not by sharing: cloning a registry copies the current values,
//! giving each `traffic::replay` worker an independent shard whose
//! [`crate::MetricsSnapshot`] delta merges losslessly into the total.
//!
//! A disabled registry (the default for a freshly built switch) short-
//! circuits every update on a single `bool` load, keeping the fast path
//! within noise of a build without telemetry.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log2 buckets a [`Histogram`] keeps. Bucket `i` counts samples
/// in `[2^i, 2^(i+1))` (bucket 0 also takes 0), so 48 buckets cover every
/// latency up to ~3.26 days in nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// Handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Handle of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// A log2-bucketed histogram: per-bucket counts plus exact sum and count,
/// all relaxed atomics.
#[derive(Debug)]
pub struct Histogram {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The log2 bucket a value falls into.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    ((63 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    fn observe(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn cloned(&self) -> Histogram {
        let h = Histogram::default();
        for (dst, src) in h.buckets.iter().zip(&self.buckets) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        h.count
            .store(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        h.sum
            .store(self.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        h
    }
}

/// A registry of named metrics. See the module docs for the design; in
/// short: register once, update by handle, export by snapshot.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    pub(crate) counters: Vec<(String, AtomicU64)>,
    pub(crate) gauges: Vec<(String, AtomicI64)>,
    pub(crate) histograms: Vec<(String, Histogram)>,
}

impl Clone for MetricsRegistry {
    /// Deep-copies current values: the clone is an independent shard.
    fn clone(&self) -> Self {
        MetricsRegistry {
            enabled: self.enabled,
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), AtomicU64::new(v.load(Ordering::Relaxed))))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, v)| (n.clone(), AtomicI64::new(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.cloned()))
                .collect(),
        }
    }
}

impl MetricsRegistry {
    /// An empty, **disabled** registry. Registration works while disabled;
    /// updates are dropped until [`MetricsRegistry::set_enabled`] turns
    /// collection on.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// An empty, enabled registry.
    pub fn enabled() -> Self {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// Whether updates are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns collection on or off. Registered metrics and accumulated
    /// values are kept either way.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Registers (or finds) a counter by full name — e.g.
    /// `port_rx_packets{port="3"}`. Idempotent: re-registering a name
    /// returns the existing handle.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), AtomicU64::new(0)));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge by full name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), AtomicI64::new(0)));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram by full name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), Histogram::default()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by one (no-op while disabled).
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Adds to a counter (no-op while disabled).
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0].1.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sets a gauge (no-op while disabled).
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, value: i64) {
        if self.enabled {
            self.gauges[id.0].1.store(value, Ordering::Relaxed);
        }
    }

    /// Records a histogram sample (no-op while disabled).
    #[inline]
    pub fn observe(&self, id: HistogramId, value: u64) {
        if self.enabled {
            self.histograms[id.0].1.observe(value);
        }
    }

    /// Current value of a counter by handle.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1.load(Ordering::Relaxed)
    }

    /// Current value of a counter by name (`None` if never registered).
    pub fn counter_value_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.load(Ordering::Relaxed))
    }

    /// Number of registered metrics across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut r = MetricsRegistry::enabled();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value(a), 3);
        assert_eq!(r.counter_value_by_name("x"), Some(3));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn disabled_registry_drops_updates() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        let g = r.gauge("g");
        r.inc(c);
        r.observe(h, 100);
        r.set_gauge(g, 5);
        assert_eq!(r.counter_value(c), 0);
        r.set_enabled(true);
        r.inc(c);
        assert_eq!(r.counter_value(c), 1);
    }

    #[test]
    fn clone_is_an_independent_shard() {
        let mut r = MetricsRegistry::enabled();
        let c = r.counter("c");
        r.inc(c);
        let shard = r.clone();
        r.inc(c);
        assert_eq!(r.counter_value(c), 2);
        assert_eq!(shard.counter_value(c), 1);
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(650), 9);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }
}
