//! # dejavu-telemetry
//!
//! Low-overhead metrics for the dataplane: a handle-based
//! [`MetricsRegistry`] of counters, gauges, and log2-bucket histograms;
//! [`MetricsSnapshot`] values that merge and diff with a lossless algebra
//! (so sharded replay workers can be aggregated exactly); and JSON +
//! Prometheus-text exporters with a self-contained JSON parser for
//! round-trip validation.
//!
//! Design in one paragraph: metrics are registered once at configuration
//! time and return dense copyable handles; the per-packet hot path is a
//! `bool` check plus one relaxed atomic add, and a disabled registry (the
//! default) short-circuits on the `bool` alone. Aggregation across threads
//! is done by *snapshot algebra*, not shared state: `Clone` deep-copies a
//! registry into an independent shard, each worker computes
//! `end.diff(&start)`, and the driver `merge`s the deltas — counters and
//! histogram buckets are plain sums, so the result equals a
//! single-threaded run.
//!
//! ```
//! use dejavu_telemetry::{MetricsRegistry, MetricsSnapshot};
//!
//! let mut reg = MetricsRegistry::enabled();
//! let pkts = reg.counter("pipelet_packets{pipelet=\"ingress0\"}");
//! let lat = reg.histogram("packet_latency_ns");
//! reg.inc(pkts);
//! reg.observe(lat, 650);
//!
//! let snap = MetricsSnapshot::capture(&reg);
//! assert_eq!(snap.counter("pipelet_packets{pipelet=\"ingress0\"}"), 1);
//! let json = dejavu_telemetry::to_json_string(&snap);
//! let back = dejavu_telemetry::parse_json(&json).unwrap();
//! assert_eq!(dejavu_telemetry::snapshot_from_json(&back).unwrap(), snap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod snapshot;

pub use export::{parse_json, to_json_string, to_prometheus};
pub use registry::{
    bucket_of, CounterId, GaugeId, HistogramId, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use snapshot::{snapshot_from_json, HistogramSnapshot, MetricValue, MetricsSnapshot};
