//! Point-in-time metric snapshots: the unit of merging, diffing, and export.
//!
//! A [`MetricsSnapshot`] is a plain, ordered map from metric name to value —
//! no atomics, no handles — so it can be sent across threads, compared in
//! tests, subtracted to isolate one run's contribution, and summed to merge
//! per-shard results. The algebra is the reason replay sharding is lossless:
//! each worker computes `end − start` over its own shard and the driver
//! folds the deltas together; counters and histogram buckets are plain sums,
//! so the result equals a single-threaded run over the concatenated work.

use crate::registry::{MetricsRegistry, HISTOGRAM_BUCKETS};
use serde::json::Value;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-log2-bucket sample counts (bucket `i` = samples in
    /// `[2^i, 2^(i+1))`, bucket 0 also holds zeros).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the log2 buckets, using
    /// the geometric midpoint of the winning bucket. Good to a factor of
    /// √2 — enough for latency dashboards, not for billing.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = (1u128 << (i + 1)) as f64;
                return (lo * hi).max(lo * lo).sqrt().max(lo);
            }
        }
        self.buckets.len() as f64
    }
}

/// One metric's value in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Instantaneous gauge.
    Gauge(i64),
    /// Log2-bucketed histogram.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The counter value, or `None` for other kinds.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }
}

/// An ordered name → value map captured from a [`MetricsRegistry`] (plus,
/// for the switch, scraped table counters). See the module docs for the
/// merge/diff algebra.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Metrics by full name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Captures every registered metric of `registry`.
    pub fn capture(registry: &MetricsRegistry) -> Self {
        let mut metrics = BTreeMap::new();
        for (name, v) in &registry.counters {
            metrics.insert(
                name.clone(),
                MetricValue::Counter(v.load(Ordering::Relaxed)),
            );
        }
        for (name, v) in &registry.gauges {
            metrics.insert(name.clone(), MetricValue::Gauge(v.load(Ordering::Relaxed)));
        }
        for (name, h) in &registry.histograms {
            metrics.insert(
                name.clone(),
                MetricValue::Histogram(HistogramSnapshot {
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                }),
            );
        }
        MetricsSnapshot { metrics }
    }

    /// Inserts (or overwrites) a counter by name — used by scrapers that
    /// fold externally-counted state (e.g. table hit/miss cells) into a
    /// snapshot.
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.metrics
            .insert(name.into(), MetricValue::Counter(value));
    }

    /// Inserts (or overwrites) a gauge by name — the gauge counterpart of
    /// [`MetricsSnapshot::set_counter`], used by scrapers folding
    /// externally-held state (e.g. the per-table index kind) into a
    /// snapshot.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: i64) {
        self.metrics.insert(name.into(), MetricValue::Gauge(value));
    }

    /// Counter value by name (0 when absent — absent and never-incremented
    /// are indistinguishable by design, so deltas of sparse shards work).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram by name (`None` when absent or a different kind).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter whose name starts with `prefix` — convenient
    /// for label families like `recirc_depth{k="…"}`.
    pub fn counter_family_total(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .filter_map(|(_, v)| v.as_counter())
            .sum()
    }

    /// Folds `other` into `self`: counters and histogram buckets add;
    /// gauges take the maximum (a merge of instantaneous values has no
    /// single right answer — max is deterministic and order-independent).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.metrics {
            match self.metrics.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(value.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    match (e.get_mut(), value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                            if a.buckets.len() < b.buckets.len() {
                                a.buckets.resize(b.buckets.len(), 0);
                            }
                            for (x, y) in a.buckets.iter_mut().zip(&b.buckets) {
                                *x += y;
                            }
                            a.count += b.count;
                            a.sum += b.sum;
                        }
                        // Kind mismatch: keep the existing value. Names are
                        // kind-stable by construction, so this is unreachable
                        // in practice but must not panic on foreign data.
                        _ => {}
                    }
                }
            }
        }
    }

    /// `self − base`, element-wise: the contribution between two captures
    /// of the same source. Counters and histograms subtract (saturating, so
    /// a reset source yields zeros rather than wrap); gauges keep `self`'s
    /// instantaneous value.
    pub fn diff(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, value) in &self.metrics {
            let d = match (value, base.metrics.get(name)) {
                (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                    MetricValue::Counter(a.saturating_sub(*b))
                }
                (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                    MetricValue::Histogram(HistogramSnapshot {
                        buckets: a
                            .buckets
                            .iter()
                            .enumerate()
                            .map(|(i, &x)| x.saturating_sub(b.buckets.get(i).copied().unwrap_or(0)))
                            .collect(),
                        count: a.count.saturating_sub(b.count),
                        sum: a.sum.saturating_sub(b.sum),
                    })
                }
                (v, _) => v.clone(),
            };
            out.metrics.insert(name.clone(), d);
        }
        out
    }

    /// True when every counter is zero and every histogram empty.
    pub fn is_zero(&self) -> bool {
        self.metrics.values().all(|v| match v {
            MetricValue::Counter(c) => *c == 0,
            MetricValue::Gauge(_) => true,
            MetricValue::Histogram(h) => h.count == 0,
        })
    }
}

impl Serialize for MetricsSnapshot {
    fn to_json(&self) -> Value {
        let fields = self
            .metrics
            .iter()
            .map(|(name, value)| {
                let v = match value {
                    MetricValue::Counter(c) => Value::UInt(*c),
                    // Gauges wrap in an object: bare JSON numbers cannot
                    // tell a non-negative gauge from a counter back apart.
                    MetricValue::Gauge(g) => {
                        Value::Object(vec![("gauge".to_string(), Value::Int(*g))])
                    }
                    MetricValue::Histogram(h) => {
                        // Trailing zero buckets are elided to keep dumps
                        // readable; parsers must treat missing as zero.
                        let last = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
                        Value::Object(vec![
                            ("count".to_string(), Value::UInt(h.count)),
                            ("sum".to_string(), Value::UInt(h.sum)),
                            (
                                "buckets_log2".to_string(),
                                Value::Array(
                                    h.buckets[..last].iter().map(|&b| Value::UInt(b)).collect(),
                                ),
                            ),
                        ])
                    }
                };
                (name.clone(), v)
            })
            .collect();
        Value::Object(fields)
    }
}

/// Rebuilds a snapshot from the JSON [`Value`] shape produced by the
/// [`Serialize`] impl above (see [`crate::export::parse_json`] for the
/// text → `Value` step). Unknown shapes are rejected with a description.
pub fn snapshot_from_json(value: &Value) -> Result<MetricsSnapshot, String> {
    let Value::Object(fields) = value else {
        return Err("snapshot root must be a JSON object".to_string());
    };
    let mut out = MetricsSnapshot::default();
    for (name, v) in fields {
        let mv = match v {
            Value::UInt(c) => MetricValue::Counter(*c),
            Value::Int(i) if *i >= 0 => MetricValue::Counter(*i as u64),
            Value::Int(i) => MetricValue::Gauge(*i),
            Value::Object(h) if h.len() == 1 && h[0].0 == "gauge" => match &h[0].1 {
                Value::Int(i) => MetricValue::Gauge(*i),
                Value::UInt(u) if *u <= i64::MAX as u64 => MetricValue::Gauge(*u as i64),
                other => return Err(format!("metric {name}: bad gauge value {other:?}")),
            },
            Value::Object(h) => {
                let get = |k: &str| h.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                let as_u64 = |v: Option<&Value>| -> Result<u64, String> {
                    match v {
                        Some(Value::UInt(u)) => Ok(*u),
                        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
                        other => Err(format!("metric {name}: expected unsigned, got {other:?}")),
                    }
                };
                let count = as_u64(get("count"))?;
                let sum = as_u64(get("sum"))?;
                let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
                match get("buckets_log2") {
                    Some(Value::Array(items)) => {
                        for (i, item) in items.iter().enumerate() {
                            if i < buckets.len() {
                                buckets[i] = as_u64(Some(item))?;
                            }
                        }
                    }
                    other => {
                        return Err(format!(
                            "metric {name}: histogram without buckets_log2 ({other:?})"
                        ))
                    }
                }
                MetricValue::Histogram(HistogramSnapshot {
                    buckets,
                    count,
                    sum,
                })
            }
            other => return Err(format!("metric {name}: unsupported value {other:?}")),
        };
        out.metrics.insert(name.clone(), mv);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for (n, v) in pairs {
            s.set_counter(*n, *v);
        }
        s
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = snap(&[("x", 1), ("y", 2)]);
        let b = snap(&[("y", 3), ("z", 4)]);
        a.merge(&b);
        assert_eq!(a.counter("x"), 1);
        assert_eq!(a.counter("y"), 5);
        assert_eq!(a.counter("z"), 4);
    }

    #[test]
    fn diff_isolates_a_run() {
        let base = snap(&[("x", 10)]);
        let end = snap(&[("x", 17)]);
        assert_eq!(end.diff(&base).counter("x"), 7);
    }

    #[test]
    fn histogram_merge_and_stats() {
        let mut r = MetricsRegistry::enabled();
        let h = r.histogram("lat");
        for v in [100u64, 200, 400, 800] {
            r.observe(h, v);
        }
        let s1 = MetricsSnapshot::capture(&r);
        let mut merged = s1.clone();
        merged.merge(&s1);
        let hist = merged.histogram("lat").unwrap();
        assert_eq!(hist.count, 8);
        assert_eq!(hist.sum, 3000);
        assert!((hist.mean() - 375.0).abs() < 1e-9);
        assert!(hist.quantile(0.5) >= 128.0);
    }

    #[test]
    fn family_total() {
        let s = snap(&[("recirc_depth{k=\"0\"}", 3), ("recirc_depth{k=\"1\"}", 4)]);
        assert_eq!(s.counter_family_total("recirc_depth{"), 7);
    }

    #[test]
    fn json_round_trip() {
        let mut r = MetricsRegistry::enabled();
        let c = r.counter("pkts");
        let h = r.histogram("lat");
        r.add(c, 9);
        r.observe(h, 650);
        let s = MetricsSnapshot::capture(&r);
        let text = serde_json::to_string_pretty(&s).unwrap();
        let parsed = crate::export::parse_json(&text).unwrap();
        let back = snapshot_from_json(&parsed).unwrap();
        assert_eq!(back.counter("pkts"), 9);
        assert_eq!(back.histogram("lat").unwrap().sum, 650);
        assert_eq!(back.histogram("lat").unwrap().count, 1);
    }
}
