//! # dejavu-asic — a programmable switch ASIC simulator
//!
//! This crate stands in for the Barefoot Tofino (Wedge-100B 32X) testbed of
//! the Dejavu paper. It models the RMT / Portable Switch Architecture the
//! paper describes in §2 and Fig. 1:
//!
//! * multiple **pipelines**, each an ingress *pipelet* and an egress
//!   *pipelet* joined by a shared **traffic manager**,
//! * per-pipelet **MAU stages** with finite resources (table IDs, SRAM,
//!   TCAM, crossbars, gateways, VLIW slots),
//! * **Ethernet ports** hardwired to pipelines, a dedicated **recirculation
//!   port** per pipeline, and port **loopback mode**,
//! * the three packet paths of Fig. 1 — normal, **resubmission** (ingress →
//!   same ingress parser), and **recirculation** (egress → ingress parser),
//!   under Tofino's constraints (§3.3 a–d),
//! * a calibrated **timing model** (§4: ~650 ns port-to-port, ~75 ns on-chip
//!   recirculation, ~145 ns off-chip via a direct-attach cable), and
//! * the **feedback-queue bandwidth model** of §4 (both the analytic fixed
//!   point and a slotted discrete-time simulation).
//!
//! The [`interp`] module executes `dejavu-p4ir` programs over packets; the
//! [`switch`] module drives a packet through pipelets, the traffic manager,
//! resubmission and recirculation until it leaves the chip, producing a full
//! event trace that the packet test framework and the placement validator
//! consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod feedback;
pub mod index;
pub mod interp;
pub mod metrics;
pub mod packet;
pub mod pool;
pub mod resources;
pub mod rtc;
pub mod switch;
pub mod tables;
pub mod timing;
pub mod tofino;

/// The telemetry crate, re-exported so downstream crates reach the
/// registry/snapshot/exporter types through `dejavu_asic::telemetry`
/// without a separate dependency.
pub use dejavu_telemetry as telemetry;

/// The flow-state crate, re-exported so downstream crates reach the
/// snapshot/migration types through `dejavu_asic::state` without a
/// separate dependency.
pub use dejavu_state as state;

pub use compiled::{BufPass, CompiledPass, CompiledProgram, ExecScratch};
pub use index::{IndexKind, IndexPolicy, IndexStats, IndexTelemetry, TableShape};
pub use interp::{Interpreter, PipeletOutcome};
pub use metrics::SwitchMetrics;
pub use packet::{flow_hash, HeaderInstance, Packet, ParsedPacket};
pub use pool::{PacketHandle, PacketPool};
pub use resources::{ResourceVector, StageResources};
pub use rtc::{ExhaustionPolicy, RtcConfig, RtcExecutor, RtcReport, RtcSession};
pub use state::{MigrationReport, StateSnapshot};
pub use switch::{
    BatchStats, BufOutcome, ExecMode, Gress, InjectedPacket, PipeletId, PortId, Switch,
    SwitchConfig, SwitchOptions, TraceEvent, TraceLevel, Traversal,
};
pub use tables::{DigestRecord, Eviction, TableCounters, TableState};
pub use telemetry::{MetricsRegistry, MetricsSnapshot};
pub use timing::TimingModel;
pub use tofino::TofinoProfile;
