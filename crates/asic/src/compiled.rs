//! The compiled fast path: pre-lowered programs executed over dense state.
//!
//! The reference [`crate::interp::Interpreter`] resolves header, field,
//! action, table, and register *names* through string-keyed maps on every
//! packet. That is the right shape for an oracle, and exactly the wrong
//! shape for a hot loop. [`CompiledProgram::compile`] lowers a validated
//! [`Program`] once, at load time:
//!
//! * header types, actions, tables, and registers are interned to dense
//!   indices; field references become `(header id, field id, width)` or
//!   `(metadata slot, width)` tuples,
//! * the parser DAG is pre-resolved so the walk does no catalog lookups,
//! * control-block statements (including `Call`s, inlined) are flattened
//!   into a branch-resolved op array executed with a program counter —
//!   all jumps are forward, so execution always terminates,
//! * table applies address [`TableState`] slots by dense id and hit the
//!   per-table indexes built at install time.
//!
//! Semantics are bit-for-bit those of the reference interpreter, including
//! its *lazy* error behavior: a dangling table/action/register name or a
//! mis-invoked action compiles to a `CPrim::Fail`-style op that raises the
//! same `IrError` only if control flow actually reaches it. The property
//! suite in `tests/` runs both engines on arbitrary programs × packets and
//! requires identical packets, verdicts, counters, and register state.
//!
//! Call inlining note: acyclic control-call DAGs can in principle expand
//! exponentially (A calls B twice, B calls C twice, …). The interpreter's
//! own call-depth ceiling of 64 bounds the expansion; real programs in this
//! workspace are nowhere near it.

use crate::interp::{ones_complement_checksum, TableEvent};
use crate::tables::TableState;
use dejavu_p4ir::action::{run_hash, ActionDef, Expr, HashAlgorithm, PrimitiveOp};
use dejavu_p4ir::control::{BoolExpr, CmpOp, Stmt};
use dejavu_p4ir::parser::{Target, Transition};
use dejavu_p4ir::program::STANDARD_METADATA;
use dejavu_p4ir::table::RegisterDef;
use dejavu_p4ir::{deposit_bits, extract_bits, FieldRef, IrError, Program, Value};
use std::collections::{HashMap, HashSet};

/// Standard-metadata slots. The compiler lays out the seven platform fields
/// first, in [`STANDARD_METADATA`] order, so the switch can read them by
/// constant index. User metadata follows (a user field redeclaring a
/// standard name takes over the slot's width, mirroring
/// `Program::field_width`'s user-first resolution).
pub(crate) const M_INGRESS_PORT: usize = 0;
pub(crate) const M_EGRESS_SPEC: usize = 1;
pub(crate) const M_DROP: usize = 2;
pub(crate) const M_RESUBMIT: usize = 3;
#[allow(dead_code)] // reserved platform slot, unread by the switch model
pub(crate) const M_RECIRC: usize = 4;
pub(crate) const M_MIRROR: usize = 5;
pub(crate) const M_TO_CPU: usize = 6;

/// A resolved field location: a metadata slot or a header field, with the
/// declared width baked in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CSlot {
    Meta { slot: u16, bits: u16 },
    Hdr { hid: u16, fid: u16, bits: u16 },
}

impl CSlot {
    fn bits(&self) -> u16 {
        match self {
            CSlot::Meta { bits, .. } | CSlot::Hdr { bits, .. } => *bits,
        }
    }
}

/// A write destination that may be statically known to be dangling — the
/// error is raised only when the op executes (lazy, like the interpreter).
type CDst = Result<CSlot, IrError>;

/// Lowered expression. `Param` is an index into the running action's
/// argument bindings.
#[derive(Debug, Clone)]
enum CExpr {
    Const(Value),
    Read(CSlot),
    Param(usize),
    /// A reference the interpreter would fault on at evaluation time.
    Fail(IrError),
    Add(Box<CExpr>, Box<CExpr>),
    Sub(Box<CExpr>, Box<CExpr>),
    And(Box<CExpr>, Box<CExpr>),
    Or(Box<CExpr>, Box<CExpr>),
    Xor(Box<CExpr>, Box<CExpr>),
    Shl(Box<CExpr>, u32),
    Shr(Box<CExpr>, u32),
}

/// Lowered boolean expression.
#[derive(Debug, Clone)]
enum CBool {
    Cmp(CExpr, CmpOp, CExpr),
    And(Box<CBool>, Box<CBool>),
    Or(Box<CBool>, Box<CBool>),
    Not(Box<CBool>),
    /// `isValid(header)`; `None` means the type name is unknown, which the
    /// interpreter treats as never-valid.
    Valid(Option<u16>),
}

/// Lowered primitive op.
#[derive(Debug, Clone)]
enum CPrim {
    Set {
        dst: CDst,
        value: CExpr,
    },
    Hash {
        dst: CDst,
        algo: HashAlgorithm,
        inputs: Vec<CExpr>,
    },
    AddHeader {
        hid: u16,
        /// Insert before the first instance of this header id (append when
        /// `None` or when no instance is present).
        before: Option<u16>,
    },
    RemoveHeaderNth {
        /// `None` when the type name is unknown — a guaranteed no-op.
        hid: Option<u16>,
        occurrence: usize,
    },
    RegisterRead {
        dst: CDst,
        reg: usize,
        index: CExpr,
    },
    RegisterWrite {
        reg: usize,
        index: CExpr,
        value: CExpr,
    },
    ChecksumUpdate {
        hid: u16,
        ck_fid: u16,
    },
    Digest {
        /// Digest stream name (not interned: emission rate is learn-path,
        /// not packet-path, and the record carries the name anyway).
        name: String,
        inputs: Vec<CExpr>,
    },
    Drop,
    NoOp,
    /// Raises the interpreter's lazy error for this op.
    Fail(IrError),
}

/// A lowered action.
#[derive(Debug, Clone)]
struct CAction {
    name: String,
    /// Declared parameter widths (arguments are resized to these).
    params: Vec<u16>,
    ops: Vec<CPrim>,
}

/// A lowered table reference.
#[derive(Debug, Clone)]
struct CTable {
    name: String,
    /// Dense [`TableState`] slot id. Valid only against a state whose
    /// tables were preregistered from the same program in
    /// `Program::tables` iteration order (the switch does this at load).
    sid: usize,
    keys: Vec<CDst>,
    /// Per-definition-action global action id, indexed by the action's
    /// ordinal in the table definition's action list — the table the hot
    /// loop maps [`TableState::lookup_id_ord`] hits through without hashing
    /// the action name. Dangling names stay lazy errors, raised only when
    /// an installed entry actually selects them (interpreter semantics).
    entry_aids: Vec<Result<usize, IrError>>,
    default_aid: Result<usize, IrError>,
    default_args: Vec<Value>,
}

/// One op of the flattened entry control. All jump targets are forward.
#[derive(Debug, Clone)]
enum COp {
    Apply {
        tid: usize,
    },
    ApplySelect {
        tid: usize,
        /// `(action id, branch pc)` arms checked in order.
        arms: Vec<(usize, usize)>,
        default_pc: usize,
    },
    /// Falls through on true, jumps to `else_pc` on false.
    Branch {
        cond: CBool,
        else_pc: usize,
    },
    Jump {
        pc: usize,
    },
    /// A `Do` of a parameterless action.
    RunAction {
        aid: usize,
    },
    /// Raises a lazy interpreter error when reached.
    Fail(IrError),
}

/// A pre-resolved parse target.
#[derive(Debug, Clone, Copy)]
enum CTarget {
    Node(usize),
    Accept,
    Reject,
}

/// A pre-resolved parse transition.
#[derive(Debug, Clone)]
enum CTransition {
    Go(CTarget),
    Select {
        /// Absolute bit offset of the select field in the packet.
        bit_off: u64,
        bits: u16,
        cases: Vec<(Value, CTarget)>,
        default: CTarget,
    },
    /// The interpreter would fault resolving this node's select field.
    Bad,
}

/// A pre-resolved parse node.
#[derive(Debug, Clone)]
struct CNode {
    hid: u16,
    /// Absolute byte offset of the header in the packet.
    offset: usize,
    /// `offset + total_bytes` — the truncation bound.
    end: usize,
    transition: CTransition,
}

/// The pre-resolved parser: nodes whose header type is unknown (an
/// interpreter parse error) are `None`.
#[derive(Debug, Clone)]
struct CParser {
    start: Option<CTarget>,
    nodes: Vec<Option<CNode>>,
}

/// An interned header type.
#[derive(Debug, Clone)]
struct CHeader {
    bits: Vec<u16>,
    total_bytes: usize,
    /// Field projection: `None` extracts every field at parse time (needed
    /// when the program can write the header — deparse then re-serializes
    /// all of it). `Some(hot)` lists only the `(fid, relative bit offset,
    /// bits)` triples the program can actually read; the rest stay as
    /// zero placeholders and the header deparses verbatim from the input
    /// bytes (it is provably never dirtied).
    hot: Option<Vec<(u16, u64, u16)>>,
}

/// The parsed view of a packet on the fast path: a flat view over the input
/// buffer. Header instances are `(header id, arena base)` pairs whose field
/// values live contiguously in one reusable `Value` arena, and the payload
/// is a *range* into the caller's byte buffer instead of a copied `Vec`.
/// [`FastPacket::clear`] resets the view while keeping every allocation, so
/// a warmed-up packet pass performs zero heap allocations.
#[derive(Debug, Clone, Default)]
struct FastPacket {
    /// Header instances in wire order.
    insts: Vec<Inst>,
    /// Field-value arena; each instance's fields are contiguous from its
    /// base. Removing an instance leaves an arena hole until the next
    /// `clear` — instances are few and passes are short.
    fields: Vec<Value>,
    /// Payload byte range within the input buffer of the current pass.
    payload: std::ops::Range<usize>,
}

/// One header instance in the flat view: where its field values live in
/// the arena, where its bytes came from in the input buffer, and whether
/// any field has been written since parse (clean instances deparse as a
/// verbatim byte copy from `src_off`).
#[derive(Debug, Clone, Copy)]
struct Inst {
    hid: u16,
    base: u32,
    /// Byte offset of this header in the pass's input buffer. Meaningless
    /// when `dirty` (added headers have no source bytes).
    src_off: u32,
    dirty: bool,
}

impl FastPacket {
    /// Resets the view for a new pass, retaining capacity.
    fn clear(&mut self) {
        self.insts.clear();
        self.fields.clear();
        self.payload = 0..0;
    }

    fn find(&self, hid: u16) -> Option<usize> {
        self.insts.iter().position(|i| i.hid == hid)
    }

    fn get(&self, hid: u16, fid: u16) -> Option<Value> {
        self.find(hid)
            .map(|i| self.fields[self.insts[i].base as usize + fid as usize])
    }

    /// Mirrors `ParsedPacket::set`: resizes to the *stored* value's width
    /// and silently drops writes to absent headers.
    fn set(&mut self, hid: u16, fid: u16, v: Value) {
        if let Some(i) = self.find(hid) {
            let inst = &mut self.insts[i];
            inst.dirty = true;
            let slot = &mut self.fields[inst.base as usize + fid as usize];
            *slot = v.resize(slot.bits());
        }
    }
}

/// Everything one compiled pipelet pass produced. `bytes` is `None` when
/// the parser rejected the packet (the switch records a parse error and
/// drops, exactly as with the reference engine).
#[derive(Debug, Clone)]
pub struct CompiledPass {
    /// Deparsed output bytes, or `None` on a parse error.
    pub bytes: Option<Vec<u8>>,
    /// `drop_flag` as a boolean.
    pub drop: bool,
    /// `to_cpu_flag` as a boolean.
    pub to_cpu: bool,
    /// `resubmit_flag` as a boolean.
    pub resubmit: bool,
    /// `mirror_flag` as a boolean.
    pub mirror: bool,
    /// Raw `egress_spec` metadata value after the pass.
    pub egress_spec: u128,
    /// Number of tables applied, maintained at every trace level (the
    /// telemetry hook; semantically identical across engines).
    pub tables_applied: u32,
    /// Table applications in execution order (empty unless tracing).
    pub events: Vec<TableEvent>,
}

/// The signals of one zero-copy pipelet pass. Deparsed bytes land in the
/// caller's scratch output buffer ([`ExecScratch::out`]); `parsed == false` means
/// the parser rejected the packet (record a parse error and drop, exactly
/// as with [`CompiledPass::bytes`]` == None`).
#[derive(Debug, Clone, Copy)]
pub struct BufPass {
    /// False when the parser rejected the packet (the scratch output buffer
    /// is left empty).
    pub parsed: bool,
    /// `drop_flag` as a boolean.
    pub drop: bool,
    /// `to_cpu_flag` as a boolean.
    pub to_cpu: bool,
    /// `resubmit_flag` as a boolean.
    pub resubmit: bool,
    /// `mirror_flag` as a boolean.
    pub mirror: bool,
    /// Raw `egress_spec` metadata value after the pass.
    pub egress_spec: u128,
    /// Number of tables applied.
    pub tables_applied: u32,
}

/// Reusable per-pass execution state: the flat packet view, the metadata
/// vector, every key/argument/value staging buffer the hot loop needs, and
/// the deparse output buffer. One `ExecScratch` is owned per execution
/// context (switch, RTC worker) and recycled across packets — after warmup
/// no pass allocates.
#[derive(Debug, Clone, Default)]
pub struct ExecScratch {
    pkt: FastPacket,
    meta: Vec<Value>,
    keys: Vec<Value>,
    args: Vec<Value>,
    vals: Vec<Value>,
    events: Vec<TableEvent>,
    out: Vec<u8>,
    hdr_bytes: Vec<u8>,
}

impl ExecScratch {
    /// Fresh scratch (all buffers empty; they grow to steady-state capacity
    /// over the first few packets).
    pub fn new() -> Self {
        ExecScratch::default()
    }

    /// The deparsed bytes of the last [`CompiledProgram::run_pass_scratch`].
    pub fn out(&self) -> &[u8] {
        &self.out
    }

    /// Mutable access to the deparse output buffer (the switch ping-pongs
    /// it with the packet buffer between recirculation passes).
    pub fn out_mut(&mut self) -> &mut Vec<u8> {
        &mut self.out
    }

    /// The table events of the last traced pass.
    pub fn events(&self) -> &[TableEvent] {
        &self.events
    }

    /// Drains the table events of the last traced pass.
    pub fn take_events(&mut self) -> Vec<TableEvent> {
        std::mem::take(&mut self.events)
    }
}

/// A program lowered for the fast path. Built once per pipelet at
/// `Switch::load_program` time; executed per packet with no name lookups.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Zeroed metadata vector at the declared widths, memcpy'd into the
    /// scratch at the top of every pass instead of rebuilt value by value.
    meta_zero: Vec<Value>,
    headers: Vec<CHeader>,
    actions: Vec<CAction>,
    tables: Vec<CTable>,
    registers: Vec<RegisterDef>,
    parser: CParser,
    ops: Vec<COp>,
}

impl CompiledProgram {
    /// Lowers a program. Structural faults the reference interpreter only
    /// raises at run time (dangling names, mis-invoked actions, call-depth
    /// overflow) are preserved as lazily-failing ops, so compilation itself
    /// succeeds for anything the interpreter can attempt to execute.
    pub fn compile(program: &Program) -> Result<Self, IrError> {
        Compiler::new(program).lower()
    }

    /// Runs one pipelet pass over raw bytes. Metadata is seeded with
    /// `ingress_port` and `egress_spec` exactly as the switch seeds the
    /// reference interpreter's metadata map. Table applies count hits and
    /// misses in `tables`. With `collect_events` false no per-table trace
    /// is allocated.
    pub fn run_pass(
        &self,
        bytes: &[u8],
        ingress_port: u16,
        egress_spec: u16,
        tables: &mut TableState,
        collect_events: bool,
    ) -> Result<CompiledPass, IrError> {
        let mut scratch = ExecScratch::default();
        let pass = self.run_pass_scratch(
            bytes,
            ingress_port,
            egress_spec,
            tables,
            collect_events,
            &mut scratch,
        )?;
        Ok(CompiledPass {
            bytes: pass.parsed.then(|| std::mem::take(&mut scratch.out)),
            drop: pass.drop,
            to_cpu: pass.to_cpu,
            resubmit: pass.resubmit,
            mirror: pass.mirror,
            egress_spec: pass.egress_spec,
            tables_applied: pass.tables_applied,
            events: std::mem::take(&mut scratch.events),
        })
    }

    /// Runs one pipelet pass over `input` using caller-owned scratch state —
    /// the zero-allocation hot path. Identical semantics to
    /// [`CompiledProgram::run_pass`] (which is a thin wrapper over this):
    /// the deparsed bytes land in [`ExecScratch::out`], table events in
    /// [`ExecScratch::events`]. After the scratch buffers have grown to the
    /// program's steady-state sizes, a pass performs no heap allocation
    /// (digest emission, a learn-path event, is the one exception).
    pub fn run_pass_scratch(
        &self,
        input: &[u8],
        ingress_port: u16,
        egress_spec: u16,
        tables: &mut TableState,
        collect_events: bool,
        scratch: &mut ExecScratch,
    ) -> Result<BufPass, IrError> {
        scratch.events.clear();
        scratch.out.clear();
        if !self.parse_into(input, &mut scratch.pkt) {
            return Ok(BufPass {
                parsed: false,
                drop: false,
                to_cpu: false,
                resubmit: false,
                mirror: false,
                egress_spec: u128::from(egress_spec),
                tables_applied: 0,
            });
        }
        scratch.meta.clear();
        scratch.meta.extend_from_slice(&self.meta_zero);
        scratch.meta[M_INGRESS_PORT] = Value::new(u128::from(ingress_port), 16);
        scratch.meta[M_EGRESS_SPEC] = Value::new(u128::from(egress_spec), 16);
        let mut tables_applied = 0u32;

        let mut pc = 0usize;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                COp::Apply { tid } => {
                    self.apply(*tid, scratch, tables, collect_events)?;
                    tables_applied += 1;
                    pc += 1;
                }
                COp::ApplySelect {
                    tid,
                    arms,
                    default_pc,
                } => {
                    let ran = self.apply(*tid, scratch, tables, collect_events)?;
                    tables_applied += 1;
                    pc = arms
                        .iter()
                        .find(|(aid, _)| *aid == ran)
                        .map(|(_, p)| *p)
                        .unwrap_or(*default_pc);
                }
                COp::Branch { cond, else_pc } => {
                    pc = if self.eval_bool(cond, &scratch.pkt, &scratch.meta)? {
                        pc + 1
                    } else {
                        *else_pc
                    };
                }
                COp::Jump { pc: target } => pc = *target,
                COp::RunAction { aid } => {
                    let mut args = std::mem::take(&mut scratch.args);
                    args.clear();
                    let r = self.run_action(*aid, &mut args, scratch, tables);
                    scratch.args = args;
                    r?;
                    pc += 1;
                }
                COp::Fail(e) => return Err(e.clone()),
            }
        }

        self.deparse_into(&scratch.pkt, input, &mut scratch.out);
        Ok(BufPass {
            parsed: true,
            drop: scratch.meta[M_DROP].as_bool(),
            to_cpu: scratch.meta[M_TO_CPU].as_bool(),
            resubmit: scratch.meta[M_RESUBMIT].as_bool(),
            mirror: scratch.meta[M_MIRROR].as_bool(),
            egress_spec: scratch.meta[M_EGRESS_SPEC].raw(),
            tables_applied,
        })
    }

    /// Walks the pre-resolved parser into the reusable flat view. `false`
    /// on any parse error (reject, truncation, dangling node — all drop the
    /// packet).
    fn parse_into(&self, bytes: &[u8], pkt: &mut FastPacket) -> bool {
        pkt.clear();
        let Some(mut cur) = self.parser.start else {
            return false;
        };
        let mut consumed = 0usize;
        loop {
            match cur {
                CTarget::Accept => break,
                CTarget::Reject => return false,
                CTarget::Node(id) => {
                    let Some(node) = self.parser.nodes[id].as_ref() else {
                        return false;
                    };
                    if bytes.len() < node.end {
                        return false;
                    }
                    let ch = &self.headers[node.hid as usize];
                    let base = pkt.fields.len() as u32;
                    match &ch.hot {
                        // Writable header: materialize every field.
                        None => {
                            let mut bit_off = node.offset as u64 * 8;
                            for &b in &ch.bits {
                                pkt.fields.push(extract_bits(bytes, bit_off, b));
                                bit_off += u64::from(b);
                            }
                        }
                        // Read-only header: placeholders for cold fields,
                        // real extraction only for the ones the program
                        // can read. Deparse copies the bytes verbatim.
                        Some(hot) => {
                            pkt.fields.extend(ch.bits.iter().map(|&b| Value::new(0, b)));
                            let hdr_bit = node.offset as u64 * 8;
                            for &(fid, rel, b) in hot {
                                pkt.fields[base as usize + fid as usize] =
                                    extract_bits(bytes, hdr_bit + rel, b);
                            }
                        }
                    }
                    pkt.insts.push(Inst {
                        hid: node.hid,
                        base,
                        src_off: node.offset as u32,
                        dirty: false,
                    });
                    consumed = node.end;
                    cur = match &node.transition {
                        CTransition::Go(t) => *t,
                        CTransition::Select {
                            bit_off,
                            bits,
                            cases,
                            default,
                        } => {
                            let v = extract_bits(bytes, *bit_off, *bits);
                            cases
                                .iter()
                                .find(|(case, _)| *case == v)
                                .map(|(_, t)| *t)
                                .unwrap_or(*default)
                        }
                        CTransition::Bad => return false,
                    };
                }
            }
        }
        pkt.payload = consumed..bytes.len();
        true
    }

    /// Serializes one header instance into a reusable buffer.
    fn serialize_header_into(&self, hid: u16, fields: &[Value], buf: &mut Vec<u8>) {
        let ch = &self.headers[hid as usize];
        buf.clear();
        buf.resize(ch.total_bytes, 0);
        let mut bit_off = 0u64;
        for (i, &b) in ch.bits.iter().enumerate() {
            deposit_bits(buf, bit_off, fields[i].resize(b));
            bit_off += u64::from(b);
        }
    }

    /// Deparses the flat view into `out`: clean headers are copied verbatim
    /// from their input byte range (no field was written, so the wire bytes
    /// are already the serialization), dirty ones re-serialized from the
    /// field arena, payload copied straight from the input buffer's range.
    fn deparse_into(&self, pkt: &FastPacket, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        for inst in &pkt.insts {
            let ch = &self.headers[inst.hid as usize];
            if !inst.dirty {
                let src = inst.src_off as usize;
                out.extend_from_slice(&input[src..src + ch.total_bytes]);
                continue;
            }
            let start = out.len();
            out.resize(start + ch.total_bytes, 0);
            let dst = &mut out[start..];
            let mut bit_off = 0u64;
            for (i, &b) in ch.bits.iter().enumerate() {
                deposit_bits(dst, bit_off, pkt.fields[inst.base as usize + i].resize(b));
                bit_off += u64::from(b);
            }
        }
        out.extend_from_slice(&input[pkt.payload.clone()]);
    }

    /// Applies a table, returning the id of the action that ran. The key
    /// tuple and argument bindings are staged in the scratch buffers; the
    /// hit path maps the entry's install-time action ordinal through the
    /// prelowered per-table action-id table — no clones, no name hashing.
    fn apply(
        &self,
        tid: usize,
        scratch: &mut ExecScratch,
        tables: &mut TableState,
        collect: bool,
    ) -> Result<usize, IrError> {
        let t = &self.tables[tid];
        let mut keys = std::mem::take(&mut scratch.keys);
        let mut args = std::mem::take(&mut scratch.args);
        let res = self.apply_inner(t, &mut keys, &mut args, scratch, tables, collect);
        scratch.keys = keys;
        scratch.args = args;
        res
    }

    fn apply_inner(
        &self,
        t: &CTable,
        keys: &mut Vec<Value>,
        args: &mut Vec<Value>,
        scratch: &mut ExecScratch,
        tables: &mut TableState,
        collect: bool,
    ) -> Result<usize, IrError> {
        keys.clear();
        for k in &t.keys {
            let slot = k.as_ref().map_err(Clone::clone)?;
            keys.push(self.read(*slot, &scratch.pkt, &scratch.meta));
        }
        args.clear();
        let (aid, hit) = match tables.lookup_id_ord(t.sid, keys) {
            Some((ord, entry)) => {
                let aid = *t.entry_aids[ord].as_ref().map_err(Clone::clone)?;
                args.extend_from_slice(&entry.action_args);
                (aid, true)
            }
            None => {
                let aid = *t.default_aid.as_ref().map_err(Clone::clone)?;
                args.extend_from_slice(&t.default_args);
                (aid, false)
            }
        };
        self.run_action(aid, args, scratch, tables)?;
        if collect {
            scratch.events.push(TableEvent {
                table: t.name.clone(),
                hit,
                action: self.actions[aid].name.clone(),
            });
        }
        Ok(aid)
    }

    /// Runs an action with `args` already staged in a caller-owned buffer
    /// (bound in place to the declared parameter widths — `Value` is
    /// `Copy`, so binding is just an in-place resize).
    fn run_action(
        &self,
        aid: usize,
        args: &mut [Value],
        scratch: &mut ExecScratch,
        tables: &mut TableState,
    ) -> Result<(), IrError> {
        let act = &self.actions[aid];
        if args.len() != act.params.len() {
            return Err(IrError::Invalid(format!(
                "action {}: expected {} args, got {}",
                act.name,
                act.params.len(),
                args.len()
            )));
        }
        for (v, &bits) in args.iter_mut().zip(&act.params) {
            *v = v.resize(bits);
        }
        let ExecScratch {
            pkt,
            meta,
            vals,
            hdr_bytes,
            ..
        } = scratch;
        for op in &act.ops {
            match op {
                CPrim::Set { dst, value } => {
                    let v = self.eval(value, pkt, meta, args)?;
                    let slot = dst.as_ref().map_err(Clone::clone)?;
                    self.write(*slot, v, pkt, meta);
                }
                CPrim::Hash { dst, algo, inputs } => {
                    vals.clear();
                    for e in inputs {
                        let v = self.eval(e, pkt, meta, args)?;
                        vals.push(v);
                    }
                    let raw = run_hash(*algo, vals);
                    let slot = dst.as_ref().map_err(Clone::clone)?;
                    self.write(*slot, Value::new(raw, slot.bits()), pkt, meta);
                }
                CPrim::AddHeader { hid, before } => {
                    let ch = &self.headers[*hid as usize];
                    let base = pkt.fields.len() as u32;
                    pkt.fields.extend(ch.bits.iter().map(|&b| Value::new(0, b)));
                    let pos = before.and_then(|b| pkt.find(b)).unwrap_or(pkt.insts.len());
                    // Added headers have no source bytes: always serialized
                    // from the arena.
                    pkt.insts.insert(
                        pos,
                        Inst {
                            hid: *hid,
                            base,
                            src_off: 0,
                            dirty: true,
                        },
                    );
                }
                CPrim::RemoveHeaderNth { hid, occurrence } => {
                    if let Some(hid) = hid {
                        let idx = pkt
                            .insts
                            .iter()
                            .enumerate()
                            .filter(|(_, inst)| inst.hid == *hid)
                            .map(|(i, _)| i)
                            .nth(*occurrence);
                        if let Some(idx) = idx {
                            // The arena hole is reclaimed by the next
                            // `clear`; only the instance entry goes.
                            pkt.insts.remove(idx);
                        }
                    }
                }
                CPrim::RegisterRead { dst, reg, index } => {
                    let def = &self.registers[*reg];
                    let idx = self.eval(index, pkt, meta, args)?.raw() as u32;
                    let val = tables.register_read(def, idx);
                    let slot = dst.as_ref().map_err(Clone::clone)?;
                    self.write(*slot, Value::new(val, def.width_bits), pkt, meta);
                }
                CPrim::RegisterWrite { reg, index, value } => {
                    let def = &self.registers[*reg];
                    let idx = self.eval(index, pkt, meta, args)?.raw() as u32;
                    let val = self.eval(value, pkt, meta, args)?.raw();
                    tables.register_write(def, idx, val);
                }
                CPrim::ChecksumUpdate { hid, ck_fid } => {
                    if let Some(i) = pkt.find(*hid) {
                        pkt.insts[i].dirty = true;
                        let base = pkt.insts[i].base as usize;
                        let n = self.headers[*hid as usize].bits.len();
                        pkt.fields[base + *ck_fid as usize] = Value::new(0, 16);
                        self.serialize_header_into(*hid, &pkt.fields[base..base + n], hdr_bytes);
                        let sum = ones_complement_checksum(hdr_bytes);
                        pkt.fields[base + *ck_fid as usize] = Value::new(u128::from(sum), 16);
                    }
                }
                CPrim::Digest { name, inputs } => {
                    vals.clear();
                    for e in inputs {
                        let v = self.eval(e, pkt, meta, args)?;
                        vals.push(v);
                    }
                    // The one allocating op on the hot loop — digests are
                    // learn-path events, not steady-state packet work.
                    tables.emit_digest(name, vals.clone());
                }
                CPrim::Drop => {
                    meta[M_DROP] = Value::new(1, 1);
                }
                CPrim::NoOp => {}
                CPrim::Fail(e) => return Err(e.clone()),
            }
        }
        Ok(())
    }

    /// Reads a slot: metadata resized to the declared width, header fields
    /// at their stored width (zero at declared width when the header is
    /// absent) — the interpreter's exact read semantics.
    fn read(&self, s: CSlot, pkt: &FastPacket, meta: &[Value]) -> Value {
        match s {
            CSlot::Meta { slot, bits } => meta[slot as usize].resize(bits),
            CSlot::Hdr { hid, fid, bits } => pkt.get(hid, fid).unwrap_or(Value::new(0, bits)),
        }
    }

    /// Writes a slot after resizing to the declared width (header stores
    /// then resize to the stored width, mirroring `ParsedPacket::set`).
    fn write(&self, s: CSlot, v: Value, pkt: &mut FastPacket, meta: &mut [Value]) {
        match s {
            CSlot::Meta { slot, bits } => meta[slot as usize] = v.resize(bits),
            CSlot::Hdr { hid, fid, bits } => pkt.set(hid, fid, v.resize(bits)),
        }
    }

    fn eval(
        &self,
        e: &CExpr,
        pkt: &FastPacket,
        meta: &[Value],
        bound: &[Value],
    ) -> Result<Value, IrError> {
        Ok(match e {
            CExpr::Const(v) => *v,
            CExpr::Read(s) => self.read(*s, pkt, meta),
            CExpr::Param(i) => bound[*i],
            CExpr::Fail(err) => return Err(err.clone()),
            CExpr::Add(a, b) => {
                let (a, b) = (
                    self.eval(a, pkt, meta, bound)?,
                    self.eval(b, pkt, meta, bound)?,
                );
                a.wrapping_add(b)
            }
            CExpr::Sub(a, b) => {
                let (a, b) = (
                    self.eval(a, pkt, meta, bound)?,
                    self.eval(b, pkt, meta, bound)?,
                );
                a.wrapping_sub(b)
            }
            CExpr::And(a, b) => {
                let (a, b) = (
                    self.eval(a, pkt, meta, bound)?,
                    self.eval(b, pkt, meta, bound)?,
                );
                a.and(b)
            }
            CExpr::Or(a, b) => {
                let (a, b) = (
                    self.eval(a, pkt, meta, bound)?,
                    self.eval(b, pkt, meta, bound)?,
                );
                a.or(b)
            }
            CExpr::Xor(a, b) => {
                let (a, b) = (
                    self.eval(a, pkt, meta, bound)?,
                    self.eval(b, pkt, meta, bound)?,
                );
                a.xor(b)
            }
            CExpr::Shl(a, amount) => self.eval(a, pkt, meta, bound)?.shl(*amount),
            CExpr::Shr(a, amount) => self.eval(a, pkt, meta, bound)?.shr(*amount),
        })
    }

    fn eval_bool(&self, c: &CBool, pkt: &FastPacket, meta: &[Value]) -> Result<bool, IrError> {
        Ok(match c {
            CBool::Cmp(a, op, b) => {
                let (a, b) = (self.eval(a, pkt, meta, &[])?, self.eval(b, pkt, meta, &[])?);
                match op {
                    CmpOp::Eq => a.raw() == b.raw(),
                    CmpOp::Ne => a.raw() != b.raw(),
                    CmpOp::Lt => a.raw() < b.raw(),
                    CmpOp::Le => a.raw() <= b.raw(),
                    CmpOp::Gt => a.raw() > b.raw(),
                    CmpOp::Ge => a.raw() >= b.raw(),
                }
            }
            CBool::And(a, b) => self.eval_bool(a, pkt, meta)? && self.eval_bool(b, pkt, meta)?,
            CBool::Or(a, b) => self.eval_bool(a, pkt, meta)? || self.eval_bool(b, pkt, meta)?,
            CBool::Not(a) => !self.eval_bool(a, pkt, meta)?,
            CBool::Valid(hid) => hid.is_some_and(|h| pkt.find(h).is_some()),
        })
    }
}

/// Compile-time lowering context.
struct Compiler<'p> {
    prog: &'p Program,
    meta_ids: HashMap<String, u16>,
    meta_widths: Vec<u16>,
    headers: Vec<CHeader>,
    header_ids: HashMap<String, u16>,
    /// Per-header field name → id.
    field_ids: Vec<HashMap<String, u16>>,
    actions: Vec<CAction>,
    action_ids: HashMap<String, usize>,
    tables: Vec<CTable>,
    table_ids: HashMap<String, usize>,
    registers: Vec<RegisterDef>,
    register_ids: HashMap<String, usize>,
    ops: Vec<COp>,
}

impl<'p> Compiler<'p> {
    fn new(prog: &'p Program) -> Self {
        // Metadata layout: standard fields first, then user fields. A user
        // field shadowing a standard name takes over the slot width; only
        // the first user declaration of a name counts (Program::field_width
        // resolves to the first match).
        let mut meta_ids = HashMap::new();
        let mut meta_widths = Vec::new();
        for (name, bits) in STANDARD_METADATA {
            meta_ids.insert((*name).to_string(), meta_widths.len() as u16);
            meta_widths.push(*bits);
        }
        let mut seen_user = HashSet::new();
        for fd in &prog.meta_fields {
            if !seen_user.insert(fd.name.as_str()) {
                continue;
            }
            if let Some(&slot) = meta_ids.get(&fd.name) {
                meta_widths[slot as usize] = fd.bits;
            } else {
                meta_ids.insert(fd.name.clone(), meta_widths.len() as u16);
                meta_widths.push(fd.bits);
            }
        }

        // Header types interned in BTreeMap (name) order.
        let mut headers = Vec::new();
        let mut header_ids = HashMap::new();
        let mut field_ids = Vec::new();
        for (name, ht) in &prog.header_types {
            header_ids.insert(name.clone(), headers.len() as u16);
            field_ids.push(
                ht.fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (f.name.clone(), i as u16))
                    .collect(),
            );
            headers.push(CHeader {
                bits: ht.fields.iter().map(|f| f.bits).collect(),
                total_bytes: ht.total_bytes() as usize,
                hot: None,
            });
        }

        let action_ids: HashMap<String, usize> = prog
            .actions
            .keys()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let table_ids: HashMap<String, usize> = prog
            .tables
            .keys()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let mut registers = Vec::new();
        let mut register_ids = HashMap::new();
        for (name, def) in &prog.registers {
            register_ids.insert(name.clone(), registers.len());
            registers.push(def.clone());
        }

        Compiler {
            prog,
            meta_ids,
            meta_widths,
            headers,
            header_ids,
            field_ids,
            actions: Vec::new(),
            action_ids,
            tables: Vec::new(),
            table_ids,
            registers,
            register_ids,
            ops: Vec::new(),
        }
    }

    fn lower(mut self) -> Result<CompiledProgram, IrError> {
        // Actions, in the same BTreeMap order as `action_ids`.
        for act in self.prog.actions.values() {
            let lowered = self.lower_action(act);
            self.actions.push(lowered);
        }
        // Tables, in BTreeMap order — `sid` must line up with the switch's
        // preregistration order.
        for (i, def) in self.prog.tables.values().enumerate() {
            let default_aid = self
                .action_ids
                .get(&def.default_action)
                .copied()
                .ok_or_else(|| IrError::Undefined {
                    kind: "action",
                    name: def.default_action.clone(),
                });
            let entry_aids = def
                .actions
                .iter()
                .map(|name| {
                    self.action_ids
                        .get(name)
                        .copied()
                        .ok_or_else(|| IrError::Undefined {
                            kind: "action",
                            name: name.clone(),
                        })
                })
                .collect();
            let table = CTable {
                name: def.name.clone(),
                sid: i,
                keys: def.keys.iter().map(|k| self.slot_of(&k.field)).collect(),
                entry_aids,
                default_aid,
                default_args: def.default_action_args.clone(),
            };
            self.tables.push(table);
        }

        // Flatten the entry control (Calls inlined).
        match self.prog.entry_control() {
            Some(entry) => {
                let body = entry.body.clone();
                self.flatten(&body, 0);
            }
            None => self.ops.push(COp::Fail(IrError::Undefined {
                kind: "entry control",
                name: self.prog.entry.clone(),
            })),
        }

        let parser = self.lower_parser();
        self.project_fields();
        Ok(CompiledProgram {
            meta_zero: self.meta_widths.iter().map(|&b| Value::new(0, b)).collect(),
            headers: self.headers,
            actions: self.actions,
            tables: self.tables,
            registers: self.registers,
            parser,
            ops: self.ops,
        })
    }

    fn lower_parser(&self) -> CParser {
        let lower_target = |t: Target| match t {
            Target::Node(i) => CTarget::Node(i),
            Target::Accept => CTarget::Accept,
            Target::Reject => CTarget::Reject,
        };
        let nodes = self
            .prog
            .parser
            .nodes
            .iter()
            .map(|node| {
                let hid = *self.header_ids.get(&node.header_type)?;
                let ht = &self.prog.header_types[&node.header_type];
                let transition = match &node.transition {
                    Transition::Unconditional(t) => CTransition::Go(lower_target(*t)),
                    Transition::Select {
                        field,
                        cases,
                        default,
                    } => match (ht.field_bit_offset(field), ht.field(field)) {
                        (Some(bit_off), Some(fd)) => CTransition::Select {
                            bit_off: u64::from(node.offset) * 8 + u64::from(bit_off),
                            bits: fd.bits,
                            cases: cases.iter().map(|(v, t)| (*v, lower_target(*t))).collect(),
                            default: lower_target(*default),
                        },
                        _ => CTransition::Bad,
                    },
                };
                Some(CNode {
                    hid,
                    offset: node.offset as usize,
                    end: node.offset as usize + ht.total_bytes() as usize,
                    transition,
                })
            })
            .collect();
        CParser {
            start: self.prog.parser.start.map(lower_target),
            nodes,
        }
    }

    /// Computes the per-header field projection the parser uses: which
    /// fields the lowered program can ever *read* (table keys, expression
    /// operands, branch conditions), and which headers it can ever *write*
    /// (set/hash/register-read destinations, checksum rewrites, added
    /// instances). Writable headers keep full extraction (`hot == None`) so
    /// a dirty deparse has every field; read-only headers extract just
    /// their hot fields and deparse verbatim from the wire bytes.
    ///
    /// Every lowered action is walked, reachable or not — over-extraction
    /// is merely slower, never wrong, and keeps the analysis independent of
    /// control flow.
    fn project_fields(&mut self) {
        fn expr(e: &CExpr, reads: &mut HashSet<(u16, u16)>) {
            match e {
                CExpr::Read(CSlot::Hdr { hid, fid, .. }) => {
                    reads.insert((*hid, *fid));
                }
                CExpr::Const(_) | CExpr::Read(_) | CExpr::Param(_) | CExpr::Fail(_) => {}
                CExpr::Add(a, b)
                | CExpr::Sub(a, b)
                | CExpr::And(a, b)
                | CExpr::Or(a, b)
                | CExpr::Xor(a, b) => {
                    expr(a, reads);
                    expr(b, reads);
                }
                CExpr::Shl(a, _) | CExpr::Shr(a, _) => expr(a, reads),
            }
        }
        fn cond(c: &CBool, reads: &mut HashSet<(u16, u16)>) {
            match c {
                CBool::Cmp(a, _, b) => {
                    expr(a, reads);
                    expr(b, reads);
                }
                CBool::And(a, b) | CBool::Or(a, b) => {
                    cond(a, reads);
                    cond(b, reads);
                }
                CBool::Not(a) => cond(a, reads),
                CBool::Valid(_) => {}
            }
        }
        fn write(dst: &CDst, written: &mut HashSet<u16>) {
            if let Ok(CSlot::Hdr { hid, .. }) = dst {
                written.insert(*hid);
            }
        }

        let mut reads: HashSet<(u16, u16)> = HashSet::new();
        let mut written: HashSet<u16> = HashSet::new();
        for act in &self.actions {
            for op in &act.ops {
                match op {
                    CPrim::Set { dst, value } => {
                        write(dst, &mut written);
                        expr(value, &mut reads);
                    }
                    CPrim::Hash { dst, inputs, .. } => {
                        write(dst, &mut written);
                        for e in inputs {
                            expr(e, &mut reads);
                        }
                    }
                    CPrim::AddHeader { hid, .. } => {
                        written.insert(*hid);
                    }
                    CPrim::RegisterRead { dst, index, .. } => {
                        write(dst, &mut written);
                        expr(index, &mut reads);
                    }
                    CPrim::RegisterWrite { index, value, .. } => {
                        expr(index, &mut reads);
                        expr(value, &mut reads);
                    }
                    CPrim::ChecksumUpdate { hid, .. } => {
                        written.insert(*hid);
                    }
                    CPrim::Digest { inputs, .. } => {
                        for e in inputs {
                            expr(e, &mut reads);
                        }
                    }
                    CPrim::RemoveHeaderNth { .. } | CPrim::Drop | CPrim::NoOp | CPrim::Fail(_) => {}
                }
            }
        }
        for t in &self.tables {
            for k in &t.keys {
                if let Ok(CSlot::Hdr { hid, fid, .. }) = k {
                    reads.insert((*hid, *fid));
                }
            }
        }
        for op in &self.ops {
            if let COp::Branch { cond: c, .. } = op {
                cond(c, &mut reads);
            }
        }

        for (h, ch) in self.headers.iter_mut().enumerate() {
            let hid = h as u16;
            if written.contains(&hid) {
                continue; // hot stays None: full extraction
            }
            let mut rel = 0u64;
            let mut hot = Vec::new();
            for (fid, &b) in ch.bits.iter().enumerate() {
                if reads.contains(&(hid, fid as u16)) {
                    hot.push((fid as u16, rel, b));
                }
                rel += u64::from(b);
            }
            ch.hot = Some(hot);
        }
    }

    /// Resolves a field reference, or the `Undefined` error the interpreter
    /// raises when it is dangling.
    fn slot_of(&self, fr: &FieldRef) -> CDst {
        let undefined = || IrError::Undefined {
            kind: "field",
            name: fr.to_string(),
        };
        if fr.is_meta() {
            let &slot = self.meta_ids.get(&fr.field).ok_or_else(undefined)?;
            return Ok(CSlot::Meta {
                slot,
                bits: self.meta_widths[slot as usize],
            });
        }
        let &hid = self.header_ids.get(&fr.header).ok_or_else(undefined)?;
        let &fid = self.field_ids[hid as usize]
            .get(&fr.field)
            .ok_or_else(undefined)?;
        Ok(CSlot::Hdr {
            hid,
            fid,
            bits: self.headers[hid as usize].bits[fid as usize],
        })
    }

    fn lower_expr(&self, e: &Expr, act: Option<&ActionDef>) -> CExpr {
        let bin = |a: &Expr, b: &Expr| {
            (
                Box::new(self.lower_expr(a, act)),
                Box::new(self.lower_expr(b, act)),
            )
        };
        match e {
            Expr::Const(v) => CExpr::Const(*v),
            Expr::Field(fr) => match self.slot_of(fr) {
                Ok(s) => CExpr::Read(s),
                Err(e) => CExpr::Fail(e),
            },
            Expr::Param(p) => match act.and_then(|a| a.params.iter().position(|(n, _)| n == p)) {
                Some(i) => CExpr::Param(i),
                None => CExpr::Fail(IrError::Undefined {
                    kind: "action parameter",
                    name: p.clone(),
                }),
            },
            Expr::Add(a, b) => {
                let (a, b) = bin(a, b);
                CExpr::Add(a, b)
            }
            Expr::Sub(a, b) => {
                let (a, b) = bin(a, b);
                CExpr::Sub(a, b)
            }
            Expr::And(a, b) => {
                let (a, b) = bin(a, b);
                CExpr::And(a, b)
            }
            Expr::Or(a, b) => {
                let (a, b) = bin(a, b);
                CExpr::Or(a, b)
            }
            Expr::Xor(a, b) => {
                let (a, b) = bin(a, b);
                CExpr::Xor(a, b)
            }
            Expr::Shl(a, n) => CExpr::Shl(Box::new(self.lower_expr(a, act)), *n),
            Expr::Shr(a, n) => CExpr::Shr(Box::new(self.lower_expr(a, act)), *n),
        }
    }

    fn lower_bool(&self, c: &BoolExpr) -> CBool {
        match c {
            BoolExpr::Cmp(a, op, b) => {
                CBool::Cmp(self.lower_expr(a, None), *op, self.lower_expr(b, None))
            }
            BoolExpr::And(a, b) => {
                CBool::And(Box::new(self.lower_bool(a)), Box::new(self.lower_bool(b)))
            }
            BoolExpr::Or(a, b) => {
                CBool::Or(Box::new(self.lower_bool(a)), Box::new(self.lower_bool(b)))
            }
            BoolExpr::Not(a) => CBool::Not(Box::new(self.lower_bool(a))),
            BoolExpr::Valid(h) => CBool::Valid(self.header_ids.get(h).copied()),
        }
    }

    fn lower_action(&self, act: &ActionDef) -> CAction {
        let ops = act.ops.iter().map(|op| self.lower_prim(op, act)).collect();
        CAction {
            name: act.name.clone(),
            params: act.params.iter().map(|(_, bits)| *bits).collect(),
            ops,
        }
    }

    fn lower_prim(&self, op: &PrimitiveOp, act: &ActionDef) -> CPrim {
        let a = Some(act);
        match op {
            PrimitiveOp::Set { dst, value } => CPrim::Set {
                dst: self.slot_of(dst),
                value: self.lower_expr(value, a),
            },
            PrimitiveOp::Hash { dst, algo, inputs } => CPrim::Hash {
                dst: self.slot_of(dst),
                algo: *algo,
                inputs: inputs.iter().map(|e| self.lower_expr(e, a)).collect(),
            },
            PrimitiveOp::AddHeader { header, before } => match self.header_ids.get(header) {
                Some(&hid) => CPrim::AddHeader {
                    hid,
                    before: before
                        .as_ref()
                        .and_then(|b| self.header_ids.get(b))
                        .copied(),
                },
                None => CPrim::Fail(IrError::Undefined {
                    kind: "header type",
                    name: header.clone(),
                }),
            },
            PrimitiveOp::RemoveHeader { header } => CPrim::RemoveHeaderNth {
                hid: self.header_ids.get(header).copied(),
                occurrence: 0,
            },
            PrimitiveOp::RemoveHeaderNth { header, occurrence } => CPrim::RemoveHeaderNth {
                hid: self.header_ids.get(header).copied(),
                occurrence: *occurrence,
            },
            PrimitiveOp::RegisterRead {
                dst,
                register,
                index,
            } => match self.register_ids.get(register) {
                Some(&reg) => CPrim::RegisterRead {
                    dst: self.slot_of(dst),
                    reg,
                    index: self.lower_expr(index, a),
                },
                None => CPrim::Fail(IrError::Undefined {
                    kind: "register",
                    name: register.clone(),
                }),
            },
            PrimitiveOp::RegisterWrite {
                register,
                index,
                value,
            } => match self.register_ids.get(register) {
                Some(&reg) => CPrim::RegisterWrite {
                    reg,
                    index: self.lower_expr(index, a),
                    value: self.lower_expr(value, a),
                },
                None => CPrim::Fail(IrError::Undefined {
                    kind: "register",
                    name: register.clone(),
                }),
            },
            PrimitiveOp::Ipv4ChecksumUpdate { header } => {
                let Some(&hid) = self.header_ids.get(header) else {
                    return CPrim::Fail(IrError::Undefined {
                        kind: "header type",
                        name: header.clone(),
                    });
                };
                // The interpreter raises this before even checking whether
                // the instance is present, so it is a lazy *op* error, not
                // conditional on packet contents.
                match self.field_ids[hid as usize].get("hdr_checksum") {
                    Some(&ck_fid) => CPrim::ChecksumUpdate { hid, ck_fid },
                    None => CPrim::Fail(IrError::Invalid(format!(
                        "header {header} has no hdr_checksum field"
                    ))),
                }
            }
            PrimitiveOp::Digest { name, fields } => CPrim::Digest {
                name: name.clone(),
                inputs: fields.iter().map(|e| self.lower_expr(e, a)).collect(),
            },
            PrimitiveOp::Drop => CPrim::Drop,
            PrimitiveOp::NoOp => CPrim::NoOp,
        }
    }

    /// Flattens statements into `self.ops`. `depth` counts inlined `Call`
    /// nesting exactly as the interpreter's `exec_stmts` recursion depth.
    fn flatten(&mut self, stmts: &[Stmt], depth: usize) {
        for stmt in stmts {
            match stmt {
                Stmt::Apply(t) => match self.table_ids.get(t) {
                    Some(&tid) => self.ops.push(COp::Apply { tid }),
                    None => self.ops.push(COp::Fail(IrError::Undefined {
                        kind: "table",
                        name: t.clone(),
                    })),
                },
                Stmt::ApplySelect {
                    table,
                    arms,
                    default,
                } => {
                    let Some(&tid) = self.table_ids.get(table) else {
                        self.ops.push(COp::Fail(IrError::Undefined {
                            kind: "table",
                            name: table.clone(),
                        }));
                        continue;
                    };
                    let sel_pc = self.ops.len();
                    self.ops.push(COp::ApplySelect {
                        tid,
                        arms: Vec::new(),
                        default_pc: 0,
                    });
                    let mut lowered_arms = Vec::new();
                    let mut exit_jumps = Vec::new();
                    for (name, body) in arms {
                        // An arm naming an unknown action can never match
                        // the action that ran; its body is dead code.
                        let Some(&aid) = self.action_ids.get(name) else {
                            continue;
                        };
                        lowered_arms.push((aid, self.ops.len()));
                        self.flatten(body, depth);
                        exit_jumps.push(self.ops.len());
                        self.ops.push(COp::Jump { pc: 0 });
                    }
                    let default_pc = self.ops.len();
                    self.flatten(default, depth);
                    let join = self.ops.len();
                    for j in exit_jumps {
                        self.ops[j] = COp::Jump { pc: join };
                    }
                    self.ops[sel_pc] = COp::ApplySelect {
                        tid,
                        arms: lowered_arms,
                        default_pc,
                    };
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let cond = self.lower_bool(cond);
                    let branch_pc = self.ops.len();
                    self.ops.push(COp::Branch { cond, else_pc: 0 });
                    self.flatten(then_branch, depth);
                    let then_exit = self.ops.len();
                    self.ops.push(COp::Jump { pc: 0 });
                    let else_pc = self.ops.len();
                    self.flatten(else_branch, depth);
                    let join = self.ops.len();
                    if let COp::Branch { else_pc: slot, .. } = &mut self.ops[branch_pc] {
                        *slot = else_pc;
                    }
                    self.ops[then_exit] = COp::Jump { pc: join };
                }
                Stmt::Do(action) => match self.prog.actions.get(action) {
                    None => self.ops.push(COp::Fail(IrError::Undefined {
                        kind: "action",
                        name: action.clone(),
                    })),
                    Some(act) if !act.params.is_empty() => {
                        self.ops.push(COp::Fail(IrError::Invalid(format!(
                            "direct invocation of action {action} requires arguments"
                        ))));
                    }
                    Some(_) => self.ops.push(COp::RunAction {
                        aid: self.action_ids[action],
                    }),
                },
                Stmt::Call(c) => match self.prog.controls.get(c) {
                    None => self.ops.push(COp::Fail(IrError::Undefined {
                        kind: "control block",
                        name: c.clone(),
                    })),
                    Some(_) if depth + 1 > 64 => {
                        self.ops.push(COp::Fail(IrError::Invalid(
                            "control call depth exceeded".into(),
                        )));
                    }
                    Some(cb) => {
                        let body = cb.body.clone();
                        self.flatten(&body, depth + 1);
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::fref;
    use dejavu_p4ir::table::{KeyMatch, TableEntry};
    use dejavu_p4ir::well_known;

    fn l2_program() -> Program {
        ProgramBuilder::new("l2")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("fwd")
                    .param("port", 16)
                    .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                    .build(),
            )
            .action(ActionBuilder::new("flood").drop_packet().build())
            .table(
                TableBuilder::new("dmac")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .action("fwd")
                    .default_action("flood")
                    .size(16)
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("dmac").build())
            .entry("ingress")
            .build()
            .unwrap()
    }

    fn state_for(p: &Program) -> TableState {
        let mut st = TableState::new();
        for def in p.tables.values() {
            st.preregister(def);
        }
        st
    }

    #[test]
    fn compiled_pass_matches_table_semantics() {
        let p = l2_program();
        let cp = CompiledProgram::compile(&p).unwrap();
        let mut st = state_for(&p);
        let mut pkt = vec![0u8; 20];
        pkt[0..6].copy_from_slice(&[0, 0, 0, 0, 0, 0x2a]);

        // Miss → flood (drop).
        let pass = cp.run_pass(&pkt, 3, 0xffff, &mut st, true).unwrap();
        assert!(pass.drop);
        assert_eq!(pass.events.len(), 1);
        assert!(!pass.events[0].hit);
        assert_eq!(pass.events[0].action, "flood");

        // Install and hit.
        let def = p.tables.get("dmac").unwrap();
        st.install(
            def,
            TableEntry {
                matches: vec![KeyMatch::Exact(Value::new(0x2a, 48))],
                action: "fwd".into(),
                action_args: vec![Value::new(7, 16)],
                priority: 0,
            },
        )
        .unwrap();
        let pass = cp.run_pass(&pkt, 3, 0xffff, &mut st, true).unwrap();
        assert!(!pass.drop);
        assert_eq!(pass.egress_spec, 7);
        assert!(pass.events[0].hit);
        assert_eq!(pass.bytes.unwrap(), pkt);
    }

    #[test]
    fn parse_error_returns_none_bytes() {
        let p = l2_program();
        let cp = CompiledProgram::compile(&p).unwrap();
        let mut st = state_for(&p);
        let pass = cp.run_pass(&[0u8; 5], 0, 0xffff, &mut st, true).unwrap();
        assert!(pass.bytes.is_none());
        assert!(pass.events.is_empty());
    }

    #[test]
    fn trace_off_allocates_no_events() {
        let p = l2_program();
        let cp = CompiledProgram::compile(&p).unwrap();
        let mut st = state_for(&p);
        let pass = cp.run_pass(&[0u8; 14], 0, 0xffff, &mut st, false).unwrap();
        assert!(pass.events.is_empty());
        // Counters still advance.
        assert_eq!(st.counters("dmac").misses, 1);
    }
}
