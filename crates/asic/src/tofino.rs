//! The simulated switch profile.
//!
//! [`TofinoProfile`] captures the architectural parameters of the paper's
//! testbed — a Wedge-100B 32X with one Tofino chip: 32 × 100 Gbps Ethernet
//! ports, 2 physical pipelines (4 pipelets), 16 hardwired Ethernet ports per
//! pipeline, and a dedicated 100 Gbps recirculation port per pipeline (§4,
//! §5). Per-stage resource capacities follow the publicly documented Tofino
//! ballpark (12 MAU stages per pipelet; 16 logical tables, 80 SRAM blocks,
//! 24 TCAM blocks per stage, …).

use crate::resources::ResourceVector;

/// Static description of a simulated switch ASIC.
#[derive(Debug, Clone, PartialEq)]
pub struct TofinoProfile {
    /// Number of physical pipelines (each = ingress pipelet + egress
    /// pipelet).
    pub pipelines: usize,
    /// MAU stages per pipelet.
    pub stages_per_pipelet: usize,
    /// Resource capacity of one MAU stage.
    pub stage_capacity: ResourceVector,
    /// Ethernet ports hardwired to each pipeline.
    pub ports_per_pipeline: usize,
    /// Line rate of one Ethernet port, in Gbps.
    pub port_gbps: f64,
    /// Dedicated recirculation bandwidth per pipeline, in Gbps (§4: "each
    /// pipeline provides 100Gbps recirculation bandwidth for free via a
    /// dedicated recirculation port").
    pub dedicated_recirc_gbps: f64,
    /// Maximum parser window in bytes (how deep the parser can look).
    pub parser_window_bytes: u32,
}

impl TofinoProfile {
    /// The paper's testbed: Wedge-100B 32X, 2 pipelines, 32×100G.
    pub fn wedge_100b_32x() -> Self {
        TofinoProfile {
            pipelines: 2,
            stages_per_pipelet: 12,
            stage_capacity: ResourceVector {
                table_ids: 16,
                sram_blocks: 80,
                tcam_blocks: 24,
                crossbar_bytes: 128,
                gateways: 16,
                vliw_slots: 32,
                hash_bits: 416,
            },
            ports_per_pipeline: 16,
            port_gbps: 100.0,
            dedicated_recirc_gbps: 100.0,
            parser_window_bytes: 256,
        }
    }

    /// A 4-pipeline variant (Tofino 64Q-class), used by placement ablations.
    pub fn four_pipeline() -> Self {
        TofinoProfile {
            pipelines: 4,
            ..Self::wedge_100b_32x()
        }
    }

    /// A deliberately tiny profile for unit tests (2 pipelines, 4 stages).
    pub fn tiny() -> Self {
        TofinoProfile {
            pipelines: 2,
            stages_per_pipelet: 4,
            stage_capacity: ResourceVector {
                table_ids: 4,
                sram_blocks: 8,
                tcam_blocks: 4,
                crossbar_bytes: 32,
                gateways: 4,
                vliw_slots: 8,
                hash_bits: 64,
            },
            ports_per_pipeline: 4,
            port_gbps: 100.0,
            dedicated_recirc_gbps: 100.0,
            parser_window_bytes: 128,
        }
    }

    /// Total Ethernet ports.
    pub fn total_ports(&self) -> usize {
        self.pipelines * self.ports_per_pipeline
    }

    /// Total pipelets (2 per pipeline).
    pub fn total_pipelets(&self) -> usize {
        self.pipelines * 2
    }

    /// Aggregate switching capacity in Gbps over all Ethernet ports.
    pub fn total_capacity_gbps(&self) -> f64 {
        self.total_ports() as f64 * self.port_gbps
    }

    /// Which pipeline a port is hardwired to, or `None` if out of range.
    pub fn pipeline_of_port(&self, port: usize) -> Option<usize> {
        if port < self.total_ports() {
            Some(port / self.ports_per_pipeline)
        } else {
            None
        }
    }

    /// Total per-pipelet resource capacity (stage capacity × stages).
    pub fn pipelet_capacity(&self) -> ResourceVector {
        self.stage_capacity.scaled(self.stages_per_pipelet as u32)
    }

    /// Total resource capacity of one pipeline (ingress + egress pipelet).
    pub fn pipeline_capacity(&self) -> ResourceVector {
        self.pipelet_capacity().scaled(2)
    }

    /// External capacity remaining when `loopback_ports` of the switch's
    /// Ethernet ports are placed in loopback mode (§4: "If m out of n
    /// Ethernet ports are in loopback mode, we can offer (n−m)/n of the ASIC
    /// capacity for external traffic").
    pub fn external_capacity_gbps(&self, loopback_ports: usize) -> f64 {
        let n = self.total_ports();
        assert!(loopback_ports <= n, "more loopback ports than ports");
        (n - loopback_ports) as f64 * self.port_gbps
    }

    /// Fraction of external traffic that can recirculate once given `m`
    /// loopback ports: `min(1, m/(n−m))` (§4).
    pub fn single_recirc_fraction(&self, loopback_ports: usize) -> f64 {
        let n = self.total_ports();
        assert!(loopback_ports <= n);
        if loopback_ports == n {
            return 1.0;
        }
        let m = loopback_ports as f64;
        let ext = (n - loopback_ports) as f64;
        (m / ext).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wedge_profile_shape() {
        let p = TofinoProfile::wedge_100b_32x();
        assert_eq!(p.total_ports(), 32);
        assert_eq!(p.total_pipelets(), 4);
        assert_eq!(p.total_capacity_gbps(), 3200.0);
        assert_eq!(p.pipeline_of_port(0), Some(0));
        assert_eq!(p.pipeline_of_port(15), Some(0));
        assert_eq!(p.pipeline_of_port(16), Some(1));
        assert_eq!(p.pipeline_of_port(31), Some(1));
        assert_eq!(p.pipeline_of_port(32), None);
    }

    #[test]
    fn pipelet_capacity_scales() {
        let p = TofinoProfile::wedge_100b_32x();
        assert_eq!(p.pipelet_capacity().table_ids, 16 * 12);
        assert_eq!(p.pipeline_capacity().sram_blocks, 80 * 12 * 2);
    }

    #[test]
    fn fig9_loopback_configuration() {
        // §5: 16 of 32 ports in loopback → 1.6 Tbps external capacity, and
        // all external traffic can recirculate once.
        let p = TofinoProfile::wedge_100b_32x();
        assert_eq!(p.external_capacity_gbps(16), 1600.0);
        assert_eq!(p.single_recirc_fraction(16), 1.0);
    }

    #[test]
    fn partial_loopback_fraction() {
        let p = TofinoProfile::wedge_100b_32x();
        // 8 loopback, 24 external → min(1, 8/24) = 1/3 can recirculate once.
        assert!((p.single_recirc_fraction(8) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.external_capacity_gbps(8), 2400.0);
    }

    #[test]
    fn all_loopback_edge() {
        let p = TofinoProfile::tiny();
        assert_eq!(p.external_capacity_gbps(p.total_ports()), 0.0);
        assert_eq!(p.single_recirc_fraction(p.total_ports()), 1.0);
    }
}
