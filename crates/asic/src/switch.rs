//! The switch executor: pipelines, traffic manager, packet paths.
//!
//! [`Switch`] wires the pieces together into the architecture of the paper's
//! Fig. 1. A packet injected on an Ethernet port traverses:
//!
//! ```text
//! MAC → ingress pipelet ─┬→ (resubmit) → same ingress pipelet
//!                        └→ traffic manager → egress pipelet ─┬→ MAC → out
//!                                     (loopback/recirc port) ─┴→ ingress pipelet
//! ```
//!
//! Tofino's recirculation constraints (§3.3 a–d) are enforced structurally:
//!
//! * (a) resubmission happens only after the ingress pipe completes;
//!   recirculation only after the egress pipe completes;
//! * (b) the recirculation decision is made in ingress, by setting the
//!   packet's egress port to a port in loopback mode;
//! * (c) recirculation bandwidth is per-port — a loopback port accepts no
//!   external traffic;
//! * (d) a recirculated packet re-enters the ingress pipe *of the pipeline
//!   owning the loopback port* — never another pipeline directly.
//!
//! Every traversal returns a [`Traversal`]: the full event trace (pipelets
//! entered, tables hit, resubmissions, recirculations), the final bytes, the
//! accumulated latency from the calibrated [`TimingModel`], and the packet's
//! disposition. The packet test framework and Dejavu's placement validator
//! are both built on these traces.

use crate::compiled::{CompiledProgram, ExecScratch};
use crate::index::{IndexKind, IndexPolicy};
use crate::interp::Interpreter;
use crate::metrics::SwitchMetrics;
use crate::packet::ParsedPacket;
use crate::tables::{DigestRecord, Eviction, TableState};
use crate::timing::TimingModel;
use crate::tofino::TofinoProfile;
use dejavu_p4ir::table::TableEntry;
use dejavu_p4ir::{IrError, Program, Value};
use dejavu_state::{MigrationReport, RegisterSnapshot, StateSnapshot, TableSnapshot};
use dejavu_telemetry::MetricsSnapshot;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// A physical port number.
pub type PortId = u16;

/// Sentinel for an unset egress port (paper Fig. 3 outPort before routing).
pub const PORT_UNSET: PortId = 0xffff;
/// Base id of the per-pipeline dedicated recirculation ports.
pub const RECIRC_PORT_BASE: PortId = 0x0f00;
/// The CPU (punt) port.
pub const CPU_PORT: PortId = 0x0fff;

/// Default bound of each pipeline's learn (digest) queue. Real learn
/// filters are small on-chip FIFOs; a full queue drops new digests and
/// counts them (`digests_dropped{pipeline=…}`).
pub const DEFAULT_DIGEST_CAPACITY: usize = 4096;

/// Ingress or egress half of a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gress {
    /// Ingress pipelet.
    Ingress,
    /// Egress pipelet.
    Egress,
}

/// Identifies one pipelet: a pipeline index plus ingress/egress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeletId {
    /// Pipeline index (0-based).
    pub pipeline: usize,
    /// Which half.
    pub gress: Gress,
}

impl PipeletId {
    /// Ingress pipelet of pipeline `p`.
    pub fn ingress(p: usize) -> Self {
        PipeletId {
            pipeline: p,
            gress: Gress::Ingress,
        }
    }

    /// Egress pipelet of pipeline `p`.
    pub fn egress(p: usize) -> Self {
        PipeletId {
            pipeline: p,
            gress: Gress::Egress,
        }
    }
}

impl std::fmt::Display for PipeletId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.gress {
            Gress::Ingress => write!(f, "ingress{}", self.pipeline),
            Gress::Egress => write!(f, "egress{}", self.pipeline),
        }
    }
}

/// One observable event during a traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Packet entered a pipelet's parser.
    EnterPipelet(PipeletId),
    /// A table was applied.
    Table {
        /// Pipelet where it ran.
        pipelet: PipeletId,
        /// Table name.
        table: String,
        /// Whether an installed entry matched.
        hit: bool,
        /// Action that ran.
        action: String,
    },
    /// Packet was resubmitted to the same ingress pipelet.
    Resubmit {
        /// Pipeline whose ingress re-runs.
        pipeline: usize,
    },
    /// Packet crossed the traffic manager.
    TmTransit {
        /// Source pipeline.
        from: usize,
        /// Destination pipeline.
        to: usize,
    },
    /// Packet was recirculated through a loopback/recirculation port.
    Recirculate {
        /// The port it looped through.
        port: PortId,
    },
    /// Packet left the switch on a port.
    Emit {
        /// Output port.
        port: PortId,
    },
    /// Packet was dropped.
    Drop {
        /// Pipelet responsible.
        pipelet: PipeletId,
    },
    /// Packet was punted to the CPU.
    ToCpu {
        /// Pipelet responsible.
        pipelet: PipeletId,
    },
    /// The parser rejected the packet (or it was truncated).
    ParseError {
        /// Pipelet whose parser rejected it.
        pipelet: PipeletId,
    },
    /// A copy of the packet was mirrored to the mirror port.
    Mirror {
        /// The mirror destination port.
        port: PortId,
    },
    /// The packet was forwarded to a port whose link is down.
    LinkDown {
        /// The down port.
        port: PortId,
    },
}

/// Final fate of an injected packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Emitted on an Ethernet port.
    Emitted {
        /// Output port.
        port: PortId,
    },
    /// Dropped inside the chip.
    Dropped,
    /// Punted to the control plane.
    ToCpu,
}

/// Result of driving one packet to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Traversal {
    /// Ordered event trace.
    pub events: Vec<TraceEvent>,
    /// Final fate.
    pub disposition: Disposition,
    /// Wire bytes at the end (as emitted / punted / at drop point).
    pub final_bytes: Vec<u8>,
    /// Accumulated latency in nanoseconds.
    pub latency_ns: f64,
    /// Number of recirculations taken.
    pub recirculations: usize,
    /// Number of resubmissions taken.
    pub resubmissions: usize,
    /// Mirrored copies emitted along the way: `(mirror port, bytes)`.
    pub mirrored: Vec<(PortId, Vec<u8>)>,
}

impl Traversal {
    /// Pipelets entered, in order.
    pub fn pipelets_visited(&self) -> Vec<PipeletId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::EnterPipelet(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    /// Tables hit (entry matched), in order.
    pub fn tables_hit(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Table {
                    table, hit: true, ..
                } => Some(table.as_str()),
                _ => None,
            })
            .collect()
    }

    /// All tables applied, in order.
    pub fn tables_applied(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Table { table, .. } => Some(table.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Renders the traversal as a human-readable hop-by-hop trace — the
    /// troubleshooting view §7 calls for ("troubleshooting … can have
    /// significant impacts on the wider adoption of programmable network
    /// devices").
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.events {
            let line = match e {
                TraceEvent::EnterPipelet(p) => format!("-> {p}"),
                TraceEvent::Table {
                    table, hit, action, ..
                } => format!(
                    "     {table}: {} -> {action}",
                    if *hit { "hit " } else { "miss" }
                ),
                TraceEvent::Resubmit { pipeline } => {
                    format!("<< resubmit (ingress {pipeline})")
                }
                TraceEvent::TmTransit { from, to } => {
                    format!("=> traffic manager: pipeline {from} -> {to}")
                }
                TraceEvent::Recirculate { port } => format!("<< recirculate via port {port}"),
                TraceEvent::Emit { port } => format!("== emitted on port {port}"),
                TraceEvent::Drop { pipelet } => format!("xx dropped in {pipelet}"),
                TraceEvent::ToCpu { pipelet } => format!("^^ punted to CPU from {pipelet}"),
                TraceEvent::ParseError { pipelet } => {
                    format!("xx parser rejected in {pipelet}")
                }
                TraceEvent::Mirror { port } => format!("++ mirrored to port {port}"),
                TraceEvent::LinkDown { port } => format!("xx link down on port {port}"),
            };
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(
            out,
            "{} recirculations, {} resubmissions, {:.0} ns",
            self.recirculations, self.resubmissions, self.latency_ns
        );
        out
    }
}

/// Static switch configuration: which program runs on which pipelet, and
/// which ports are in loopback mode.
#[derive(Debug, Clone, Default)]
pub struct SwitchConfig {
    /// Programs per pipelet.
    pub programs: BTreeMap<PipeletId, Program>,
    /// Ethernet ports in loopback mode.
    pub loopback_ports: BTreeSet<PortId>,
}

/// Which execution engine drives pipelet passes.
///
/// Both engines implement identical packet semantics (enforced by the
/// differential property suite); they differ only in cost. See
/// [`crate::compiled`] for the lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Tree-walking reference interpreter with string-keyed lookups and
    /// linear table scans. The semantic oracle.
    Reference,
    /// Pre-lowered op-array engine with dense indices and indexed table
    /// lookup. The default.
    #[default]
    Compiled,
}

/// How much per-packet trace state a traversal records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No [`TraceEvent`]s are recorded (table hit/miss counters still
    /// advance). The hot-path setting: no per-table `String` allocation.
    Off,
    /// Full event traces, as the packet test framework expects. The default.
    #[default]
    Full,
}

/// A packet to inject: wire bytes plus the arrival port. The single
/// injection type shared by [`Switch::inject`], [`Switch::inject_batch`],
/// and the traffic replay drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedPacket {
    /// Wire bytes.
    pub bytes: Vec<u8>,
    /// Arrival port.
    pub port: PortId,
}

impl InjectedPacket {
    /// Bytes arriving on a port.
    pub fn new(bytes: Vec<u8>, port: PortId) -> Self {
        InjectedPacket { bytes, port }
    }
}

/// Construction-time switch configuration, collected from what used to be
/// scattered post-construction setters. Build one with the fluent methods
/// and pass it to [`Switch::with_options`]; the individual setters remain
/// for reconfiguration after construction.
///
/// ```
/// use dejavu_asic::{ExecMode, Switch, SwitchOptions, TofinoProfile, TraceLevel};
///
/// let sw = Switch::with_options(
///     TofinoProfile::wedge_100b_32x(),
///     SwitchOptions::new()
///         .exec_mode(ExecMode::Compiled)
///         .trace_level(TraceLevel::Off)
///         .telemetry(true),
/// );
/// assert!(sw.telemetry_enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SwitchOptions {
    exec_mode: ExecMode,
    trace_level: TraceLevel,
    timing: Option<TimingModel>,
    mirror_port: Option<PortId>,
    telemetry: bool,
    digest_capacity: Option<usize>,
}

impl SwitchOptions {
    /// Defaults: compiled engine, full tracing, calibrated Tofino timing,
    /// no mirror session, telemetry off.
    pub fn new() -> Self {
        SwitchOptions::default()
    }

    /// Selects the execution engine.
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Selects how much trace state traversals record.
    pub fn trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// Replaces the calibrated timing model.
    pub fn timing(mut self, timing: TimingModel) -> Self {
        self.timing = Some(timing);
        self
    }

    /// Configures the mirror destination port.
    pub fn mirror_port(mut self, port: PortId) -> Self {
        self.mirror_port = Some(port);
        self
    }

    /// Turns metric collection on from the start.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Bounds each pipeline's learn (digest) queue.
    pub fn digest_capacity(mut self, capacity: usize) -> Self {
        self.digest_capacity = Some(capacity);
        self
    }
}

/// Aggregate outcome of a [`Switch::inject_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchStats {
    /// Packets handed to the switch.
    pub injected: usize,
    /// Packets emitted on an Ethernet port.
    pub emitted: usize,
    /// Packets dropped inside the chip.
    pub dropped: usize,
    /// Packets punted to the CPU port.
    pub to_cpu: usize,
    /// Packets rejected with an error (bad port, forwarding loop, ...).
    pub errors: usize,
    /// Total recirculations across the batch.
    pub recirculations: usize,
    /// Total resubmissions across the batch.
    pub resubmissions: usize,
    /// Summed model latency over all non-error packets, in nanoseconds.
    pub latency_ns_total: f64,
}

impl BatchStats {
    /// Folds another batch's counters into this one (used by the sharded
    /// replay driver to merge per-worker results).
    pub fn merge(&mut self, other: &BatchStats) {
        self.injected += other.injected;
        self.emitted += other.emitted;
        self.dropped += other.dropped;
        self.to_cpu += other.to_cpu;
        self.errors += other.errors;
        self.recirculations += other.recirculations;
        self.resubmissions += other.resubmissions;
        self.latency_ns_total += other.latency_ns_total;
    }
}

/// Signals a pipelet pass hands back to the traffic-manager loop, engine
/// independent: both the reference interpreter and the compiled fast path
/// reduce to this.
struct PassSignals {
    /// Deparsed bytes, or `None` when the parser rejected the packet.
    bytes: Option<Vec<u8>>,
    drop: bool,
    to_cpu: bool,
    resubmit: bool,
    mirror: bool,
    egress_spec: PortId,
    tables_applied: u32,
}

/// The simulated switch.
#[derive(Debug, Clone)]
pub struct Switch {
    profile: TofinoProfile,
    timing: TimingModel,
    programs: BTreeMap<PipeletId, Program>,
    compiled: BTreeMap<PipeletId, Arc<CompiledProgram>>,
    tables: BTreeMap<PipeletId, TableState>,
    loopback_ports: BTreeSet<PortId>,
    down_ports: BTreeSet<PortId>,
    mirror_port: Option<PortId>,
    max_loops: usize,
    exec_mode: ExecMode,
    trace_level: TraceLevel,
    metrics: SwitchMetrics,
    /// Logical time in ticks; advanced only by [`Switch::advance_time`].
    now: u64,
    /// Bound of each pipeline's learn queue.
    digest_capacity: usize,
    /// Per-pipeline learn queues, fed by the pipelets' `digest(...)`
    /// primitives and drained by the control plane.
    digest_queues: BTreeMap<usize, VecDeque<DigestRecord>>,
    /// Digests lost to a full queue, per pipeline.
    digest_drops: BTreeMap<usize, u64>,
    /// Reusable per-pass execution state for the zero-allocation
    /// run-to-completion path ([`Switch::inject_buf`]).
    scratch: ExecScratch,
    /// Mirror copies produced by [`Switch::inject_buf`] traversals, drained
    /// by [`Switch::drain_mirrored`]. Mirroring is semantics, not trace, so
    /// the buffer path still collects the (rare, allocating) copies.
    mirror_out: Vec<(PortId, Vec<u8>)>,
}

/// Outcome of one [`Switch::inject_buf`] run-to-completion traversal: the
/// disposition plus the loop and timing counters — everything `inject`
/// reports except the allocating trace/byte state (the final bytes are in
/// the caller's buffer, mirror copies in [`Switch::drain_mirrored`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufOutcome {
    /// Final fate of the packet.
    pub disposition: Disposition,
    /// Number of recirculations taken.
    pub recirculations: usize,
    /// Number of resubmissions taken.
    pub resubmissions: usize,
    /// Accumulated latency in nanoseconds.
    pub latency_ns: f64,
}

impl Switch {
    /// Creates an empty switch with the given profile and default timing.
    /// Telemetry starts disabled (see [`Switch::set_telemetry`]).
    pub fn new(profile: TofinoProfile) -> Self {
        let metrics = SwitchMetrics::new(&profile);
        Switch {
            profile,
            timing: TimingModel::tofino(),
            programs: BTreeMap::new(),
            compiled: BTreeMap::new(),
            tables: BTreeMap::new(),
            loopback_ports: BTreeSet::new(),
            down_ports: BTreeSet::new(),
            mirror_port: None,
            max_loops: 128,
            exec_mode: ExecMode::default(),
            trace_level: TraceLevel::default(),
            metrics,
            now: 0,
            digest_capacity: DEFAULT_DIGEST_CAPACITY,
            digest_queues: BTreeMap::new(),
            digest_drops: BTreeMap::new(),
            scratch: ExecScratch::new(),
            mirror_out: Vec::new(),
        }
    }

    /// Creates a switch configured by a [`SwitchOptions`] builder.
    pub fn with_options(profile: TofinoProfile, opts: SwitchOptions) -> Self {
        let mut sw = Switch::new(profile);
        sw.exec_mode = opts.exec_mode;
        sw.trace_level = opts.trace_level;
        if let Some(timing) = opts.timing {
            sw.timing = timing;
        }
        sw.mirror_port = opts.mirror_port;
        sw.metrics.set_enabled(opts.telemetry);
        if let Some(cap) = opts.digest_capacity {
            sw.digest_capacity = cap;
        }
        sw
    }

    /// Turns metric collection on or off. Accumulated values are kept; when
    /// off, every hook short-circuits on one `bool` load.
    pub fn set_telemetry(&mut self, enabled: bool) {
        self.metrics.set_enabled(enabled);
    }

    /// Whether metric collection is on.
    pub fn telemetry_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }

    /// The switch's metric handles and backing registry.
    pub fn metrics(&self) -> &SwitchMetrics {
        &self.metrics
    }

    /// Captures a full metrics snapshot: every registry series plus the
    /// per-table hit/miss counters folded in from [`TableState`] (as
    /// `table_hits{pipelet="…",table="…"}` / `table_misses{…}`), so one
    /// export carries the whole observable state of the switch.
    ///
    /// The table-counter fold only happens while telemetry is enabled:
    /// [`TableState`] counters accumulate regardless of the flag, and
    /// surfacing them through a disabled registry would make an "empty"
    /// snapshot non-zero.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        if !self.metrics.is_enabled() {
            return MetricsSnapshot::capture(self.metrics.registry());
        }
        self.metrics
            .set_table_entries(self.tables.values().map(TableState::total_entries).sum());
        let mut snap = MetricsSnapshot::capture(self.metrics.registry());
        for (pipelet, state) in &self.tables {
            for (table, c) in state.all_counters() {
                snap.set_counter(
                    format!("table_hits{{pipelet=\"{pipelet}\",table=\"{table}\"}}"),
                    c.hits,
                );
                snap.set_counter(
                    format!("table_misses{{pipelet=\"{pipelet}\",table=\"{table}\"}}"),
                    c.misses,
                );
                let evictions = state.evictions(&table);
                if evictions > 0 {
                    snap.set_counter(
                        format!("table_evictions{{pipelet=\"{pipelet}\",table=\"{table}\"}}"),
                        evictions,
                    );
                }
            }
            for (table, it) in state.index_telemetry() {
                snap.set_gauge(
                    format!("table_index_kind{{pipelet=\"{pipelet}\",table=\"{table}\"}}"),
                    it.kind.ordinal(),
                );
                snap.set_counter(
                    format!("table_index_probes{{pipelet=\"{pipelet}\",table=\"{table}\"}}"),
                    it.probes,
                );
                if it.rebuilds > 0 {
                    snap.set_counter(
                        format!("table_index_rebuilds{{pipelet=\"{pipelet}\",table=\"{table}\"}}"),
                        it.rebuilds,
                    );
                }
                for (b, &v) in it.probe_hist.iter().enumerate() {
                    if v > 0 {
                        snap.set_counter(
                            format!(
                                "table_index_probe_depth{{pipelet=\"{pipelet}\",table=\"{table}\",bucket=\"{b}\"}}"
                            ),
                            v,
                        );
                    }
                }
                for (b, &v) in it.depth_hist.iter().enumerate() {
                    if v > 0 {
                        snap.set_counter(
                            format!(
                                "table_index_tree_depth{{pipelet=\"{pipelet}\",table=\"{table}\",bucket=\"{b}\"}}"
                            ),
                            v,
                        );
                    }
                }
            }
        }
        snap
    }

    /// Selects the execution engine for subsequent traversals.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The execution engine currently in use.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Selects how much trace state subsequent traversals record.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace_level = level;
    }

    /// The current trace level.
    pub fn trace_level(&self) -> TraceLevel {
        self.trace_level
    }

    /// Marks a port's link down or up. Packets forwarded to a down port are
    /// dropped (with a `LinkDown` trace event), and injecting external
    /// traffic on it fails — the failure model behind §7's "failure
    /// handling" discussion.
    pub fn set_port_down(&mut self, port: PortId, down: bool) {
        if down {
            self.down_ports.insert(port);
        } else {
            self.down_ports.remove(&port);
        }
    }

    /// True when the port's link is down.
    pub fn is_port_down(&self, port: PortId) -> bool {
        self.down_ports.contains(&port)
    }

    /// Clears all entries of a table on a pipelet (used when routing is
    /// re-synthesized after a failure or re-placement).
    pub fn clear_table(&mut self, pipelet: PipeletId, table: &str) {
        if let Some(state) = self.tables.get_mut(&pipelet) {
            state.clear(table);
        }
    }

    /// Configures the mirror destination port. Packets whose pipelet
    /// processing sets `mirror_flag` have a copy emitted there (the
    /// simulator's single mirror session).
    pub fn set_mirror_port(&mut self, port: Option<PortId>) {
        self.mirror_port = port;
    }

    /// The switch profile.
    pub fn profile(&self) -> &TofinoProfile {
        &self.profile
    }

    /// The timing model in use.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Replaces the timing model.
    pub fn set_timing(&mut self, timing: TimingModel) {
        self.timing = timing;
    }

    /// Loads a program onto a pipelet, resetting that pipelet's table state.
    /// The program is validated and its parser depth checked against the
    /// profile's parser window.
    pub fn load_program(&mut self, pipelet: PipeletId, program: Program) -> Result<(), IrError> {
        if pipelet.pipeline >= self.profile.pipelines {
            return Err(IrError::Invalid(format!(
                "pipeline {} out of range (switch has {})",
                pipelet.pipeline, self.profile.pipelines
            )));
        }
        program.validate()?;
        let depth = program.parser.max_depth_bytes(&program.header_map());
        if depth > self.profile.parser_window_bytes {
            return Err(IrError::Invalid(format!(
                "parser needs {depth} bytes, window is {}",
                self.profile.parser_window_bytes
            )));
        }
        let compiled = CompiledProgram::compile(&program)?;
        // Pre-register every table in `program.tables` (BTreeMap) order so
        // the dense slot ids baked into the compiled program line up with
        // the state's slots.
        let mut state = TableState::new();
        for def in program.tables.values() {
            state.preregister(def);
        }
        // A freshly loaded program joins the switch's logical timeline, so
        // aging continues seamlessly across upgrades once state is migrated.
        state.set_clock(self.now);
        self.tables.insert(pipelet, state);
        self.compiled.insert(pipelet, Arc::new(compiled));
        self.programs.insert(pipelet, program);
        Ok(())
    }

    /// Applies a whole configuration (programs + loopback set).
    pub fn apply_config(&mut self, config: SwitchConfig) -> Result<(), IrError> {
        for (pipelet, program) in config.programs {
            self.load_program(pipelet, program)?;
        }
        for port in config.loopback_ports {
            self.set_loopback(port, true)?;
        }
        Ok(())
    }

    /// Puts an Ethernet port in or out of loopback mode.
    pub fn set_loopback(&mut self, port: PortId, enabled: bool) -> Result<(), IrError> {
        if self.profile.pipeline_of_port(usize::from(port)).is_none() {
            return Err(IrError::Invalid(format!("port {port} out of range")));
        }
        if enabled {
            self.loopback_ports.insert(port);
        } else {
            self.loopback_ports.remove(&port);
        }
        Ok(())
    }

    /// True if the port is in loopback mode.
    pub fn is_loopback(&self, port: PortId) -> bool {
        self.loopback_ports.contains(&port)
    }

    /// The dedicated recirculation port of a pipeline.
    pub fn recirc_port(&self, pipeline: usize) -> PortId {
        RECIRC_PORT_BASE + pipeline as PortId
    }

    /// Installs a table entry into a pipelet's table.
    pub fn install_entry(
        &mut self,
        pipelet: PipeletId,
        table: &str,
        entry: TableEntry,
    ) -> Result<(), IrError> {
        let program = self
            .programs
            .get(&pipelet)
            .ok_or_else(|| IrError::Invalid(format!("no program loaded on {pipelet}")))?;
        let def = program.tables.get(table).ok_or(IrError::Undefined {
            kind: "table",
            name: table.to_string(),
        })?;
        let def = def.clone();
        self.tables
            .get_mut(&pipelet)
            .expect("table state exists for every loaded program")
            .install(&def, entry)
    }

    /// Removes a previously installed entry from a pipelet's table.
    /// Returns `Ok(true)` when an identical entry existed and was removed.
    pub fn remove_entry(
        &mut self,
        pipelet: PipeletId,
        table: &str,
        entry: &TableEntry,
    ) -> Result<bool, IrError> {
        self.tables
            .get_mut(&pipelet)
            .ok_or_else(|| IrError::Invalid(format!("no program loaded on {pipelet}")))?
            .remove_entry(table, entry)
    }

    /// Sets the classification-index policy of a pipelet's table (pin a
    /// kind with [`IndexPolicy::Force`], or return to automatic selection).
    pub fn set_table_index(
        &mut self,
        pipelet: PipeletId,
        table: &str,
        policy: IndexPolicy,
    ) -> Result<(), IrError> {
        self.tables
            .get_mut(&pipelet)
            .ok_or_else(|| IrError::Invalid(format!("no program loaded on {pipelet}")))?
            .set_index_policy(table, policy)
    }

    /// The index kind currently serving a pipelet's table.
    pub fn table_index_kind(&self, pipelet: PipeletId, table: &str) -> Option<IndexKind> {
        self.tables.get(&pipelet)?.index_kind(table)
    }

    /// Read access to a pipelet's table state (counters, entry counts).
    pub fn tables(&self, pipelet: PipeletId) -> Option<&TableState> {
        self.tables.get(&pipelet)
    }

    /// Control-plane read of a register cell on a pipelet (`None` when the
    /// register was never touched or does not exist).
    pub fn register_peek(&self, pipelet: PipeletId, register: &str, index: u32) -> Option<u128> {
        self.tables.get(&pipelet)?.register_peek(register, index)
    }

    /// Control-plane write of a register cell (used e.g. to reset token
    /// buckets each epoch). Errors when no program is loaded or the
    /// register is unknown.
    pub fn register_store(
        &mut self,
        pipelet: PipeletId,
        register: &str,
        index: u32,
        value: u128,
    ) -> Result<(), IrError> {
        let def = self
            .programs
            .get(&pipelet)
            .and_then(|p| p.registers.get(register))
            .cloned()
            .ok_or(IrError::Undefined {
                kind: "register",
                name: register.to_string(),
            })?;
        self.tables
            .get_mut(&pipelet)
            .expect("state exists for loaded program")
            .register_write(&def, index, value);
        Ok(())
    }

    /// Program loaded on a pipelet.
    pub fn program(&self, pipelet: PipeletId) -> Option<&Program> {
        self.programs.get(&pipelet)
    }

    /// Pipelets with a program loaded, in deterministic order.
    pub fn loaded_pipelets(&self) -> Vec<PipeletId> {
        self.programs.keys().copied().collect()
    }

    // ------------------------------------------------- flow-state runtime

    /// Current logical time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances logical time by `ticks` and sweeps every pipelet's tables
    /// for entries idle past their table's timeout. Returns the evicted
    /// entries, attributed to their pipelet, in registration order — the
    /// control plane's view of flow expiry.
    pub fn advance_time(&mut self, ticks: u64) -> Vec<(PipeletId, Eviction)> {
        self.now = self.now.saturating_add(ticks);
        let mut evicted = Vec::new();
        for (pipelet, state) in &mut self.tables {
            for ev in state.advance_clock(ticks) {
                evicted.push((*pipelet, ev));
            }
        }
        evicted
    }

    /// Configures (or clears) the idle timeout of a table on a pipelet.
    /// Entries not hit for `timeout` ticks are evicted by the next
    /// [`Switch::advance_time`]; a full aging-enabled table evicts its
    /// least-recently-hit entry to admit a new one.
    pub fn set_idle_timeout(
        &mut self,
        pipelet: PipeletId,
        table: &str,
        timeout: Option<u64>,
    ) -> Result<(), IrError> {
        self.tables
            .get_mut(&pipelet)
            .ok_or_else(|| IrError::Invalid(format!("no program loaded on {pipelet}")))?
            .set_idle_timeout(table, timeout)
    }

    /// Moves digests emitted during packet processing from the pipelet's
    /// table state into the owning pipeline's bounded learn queue. Called
    /// after every pipelet pass.
    fn collect_digests(&mut self, pipelet: PipeletId) {
        let Some(state) = self.tables.get_mut(&pipelet) else {
            return;
        };
        let records = state.take_digests();
        if records.is_empty() {
            return;
        }
        let queue = self.digest_queues.entry(pipelet.pipeline).or_default();
        for record in records {
            if queue.len() >= self.digest_capacity {
                *self.digest_drops.entry(pipelet.pipeline).or_default() += 1;
                self.metrics.on_digest_dropped(pipelet.pipeline);
            } else {
                queue.push_back(record);
                self.metrics.on_digest(pipelet.pipeline);
            }
        }
    }

    /// Drains every pipeline's learn queue, oldest first within each
    /// pipeline, attributed to the emitting pipeline. The control plane's
    /// learning loop calls this.
    pub fn drain_digests(&mut self) -> Vec<(usize, DigestRecord)> {
        let mut out = Vec::new();
        for (pipeline, queue) in &mut self.digest_queues {
            out.extend(queue.drain(..).map(|r| (*pipeline, r)));
        }
        out
    }

    /// Digests currently queued on a pipeline.
    pub fn digest_backlog(&self, pipeline: usize) -> usize {
        self.digest_queues.get(&pipeline).map_or(0, VecDeque::len)
    }

    /// Digests lost to a full learn queue on a pipeline.
    pub fn digests_dropped(&self, pipeline: usize) -> u64 {
        self.digest_drops.get(&pipeline).copied().unwrap_or(0)
    }

    /// Captures a versioned snapshot of a pipelet's mutable state: every
    /// installed table entry, each table's aging configuration, all
    /// register cells, and the logical clock. `None` when no program is
    /// loaded there.
    pub fn snapshot_state(&self, pipelet: PipeletId) -> Option<StateSnapshot> {
        let program = self.programs.get(&pipelet)?;
        let state = self.tables.get(&pipelet)?;
        let mut snap = StateSnapshot::empty(&program.name);
        snap.clock = state.now();
        for name in state.table_names() {
            snap.tables.push(TableSnapshot {
                idle_timeout: state.idle_timeout(&name),
                entries: state.entries(&name).to_vec(),
                name,
            });
        }
        for (name, cells) in state.register_arrays() {
            snap.registers.push(RegisterSnapshot {
                name: name.clone(),
                cells: cells.clone(),
            });
        }
        Some(snap)
    }

    /// Remaps a [`StateSnapshot`] onto the program currently loaded on
    /// `pipelet`, keyed by merged table/register name. Entries whose table
    /// vanished, whose action is no longer defined, or whose key shape
    /// changed are reported as dropped rather than silently lost; restored
    /// entries get a fresh idle stamp so a migration never triggers a mass
    /// eviction. Register cells are masked to the new declared widths.
    pub fn restore_state(
        &mut self,
        pipelet: PipeletId,
        snap: &StateSnapshot,
    ) -> Result<MigrationReport, IrError> {
        let program = self
            .programs
            .get(&pipelet)
            .ok_or_else(|| IrError::Invalid(format!("no program loaded on {pipelet}")))?;
        let state = self
            .tables
            .get_mut(&pipelet)
            .expect("state exists for loaded program");
        let mut report = MigrationReport::default();
        for t in &snap.tables {
            let Some(def) = program.tables.get(&t.name) else {
                for e in &t.entries {
                    report.drop_entry(&t.name, e.clone(), "table not in new program");
                }
                continue;
            };
            report.remapped_tables += 1;
            state
                .set_idle_timeout(&t.name, t.idle_timeout)
                .expect("table definition was just found");
            for e in &t.entries {
                if !def.actions.contains(&e.action) {
                    report.drop_entry(&t.name, e.clone(), "action no longer defined");
                    continue;
                }
                if e.matches.len() != def.keys.len() {
                    report.drop_entry(&t.name, e.clone(), "key shape changed");
                    continue;
                }
                if state.contains_entry(&t.name, e) {
                    report.restored_entries += 1;
                    continue;
                }
                match state.install(def, e.clone()) {
                    Ok(()) => report.restored_entries += 1,
                    Err(err) => report.drop_entry(&t.name, e.clone(), err.to_string()),
                }
            }
        }
        for r in &snap.registers {
            match program.registers.get(&r.name) {
                Some(def) => {
                    state.restore_register(def, &r.cells);
                    report.restored_registers += 1;
                }
                None => report.dropped_registers.push(r.name.clone()),
            }
        }
        self.metrics.on_migration(report.restored_entries);
        Ok(report)
    }

    /// Which pipeline handles traffic arriving on `port` (Ethernet or
    /// dedicated recirculation port).
    fn pipeline_of(&self, port: PortId) -> Option<usize> {
        if (RECIRC_PORT_BASE..RECIRC_PORT_BASE + self.profile.pipelines as PortId).contains(&port) {
            return Some(usize::from(port - RECIRC_PORT_BASE));
        }
        self.profile.pipeline_of_port(usize::from(port))
    }

    /// Injects a packet on an external Ethernet port and drives it to
    /// completion. Loopback ports take no external traffic (§4) — injecting
    /// on one is an error. Takes an [`InjectedPacket`] (see
    /// `dejavu_core::ingress` for how the injection entry points relate).
    pub fn inject(&mut self, packet: impl Into<InjectedPacket>) -> Result<Traversal, IrError> {
        let InjectedPacket { bytes, port } = packet.into();
        let checked = (|| {
            if self.is_loopback(port) {
                return Err(IrError::Invalid(format!(
                    "port {port} is in loopback mode and takes no external traffic"
                )));
            }
            if self.is_port_down(port) {
                return Err(IrError::Invalid(format!("port {port} link is down")));
            }
            self.pipeline_of(port)
                .ok_or_else(|| IrError::Invalid(format!("port {port} out of range")))
        })();
        let result = match checked {
            Ok(pipeline) => self.run_to_completion(bytes, port, pipeline),
            Err(e) => Err(e),
        };
        if result.is_err() {
            self.metrics.on_reject();
        }
        result
    }

    /// Injects a batch of packets and returns aggregate statistics only.
    ///
    /// This is the replay-driver fast path: trace recording is forced to
    /// [`TraceLevel::Off`] for the duration of the batch (and restored
    /// afterwards), so no per-packet `Vec`/`String` traversal state is
    /// allocated. Per-packet errors (bad port, forwarding loop) are tallied
    /// in [`BatchStats::errors`] instead of aborting the batch.
    pub fn inject_batch(&mut self, packets: &[InjectedPacket]) -> BatchStats {
        let saved = self.trace_level;
        self.trace_level = TraceLevel::Off;
        let mut stats = BatchStats::default();
        for pkt in packets {
            stats.injected += 1;
            match self.inject(pkt.clone()) {
                Ok(t) => {
                    match t.disposition {
                        Disposition::Emitted { .. } => stats.emitted += 1,
                        Disposition::Dropped => stats.dropped += 1,
                        Disposition::ToCpu => stats.to_cpu += 1,
                    }
                    stats.recirculations += t.recirculations;
                    stats.resubmissions += t.resubmissions;
                    stats.latency_ns_total += t.latency_ns;
                }
                Err(_) => stats.errors += 1,
            }
        }
        self.trace_level = saved;
        stats
    }

    /// Injects a packet **in place** and drives it to completion on the
    /// compiled engine — the zero-allocation run-to-completion path.
    ///
    /// The caller's buffer carries the wire bytes in and the final bytes
    /// out (at emit/punt/drop, exactly the bytes `inject` would report as
    /// `final_bytes`); recirculation and resubmission re-enter the pipeline
    /// with the same buffer instead of round-tripping through fresh
    /// allocations. Port validation, metric hooks, digest collection, and
    /// dispositions are identical to [`Switch::inject`] at
    /// [`TraceLevel::Off`]; mirror copies (semantics, not trace) are queued
    /// for [`Switch::drain_mirrored`]. After the internal scratch buffers
    /// warm up, a traversal performs zero heap allocations (digest
    /// emission and mirroring — both learn/tap events, not steady-state
    /// forwarding — are the exceptions).
    ///
    /// Always executes the compiled engine, regardless of
    /// [`Switch::set_exec_mode`] — the reference interpreter has no
    /// zero-copy mode.
    pub fn inject_buf(&mut self, buf: &mut Vec<u8>, port: PortId) -> Result<BufOutcome, IrError> {
        let checked = (|| {
            if self.is_loopback(port) {
                return Err(IrError::Invalid(format!(
                    "port {port} is in loopback mode and takes no external traffic"
                )));
            }
            if self.is_port_down(port) {
                return Err(IrError::Invalid(format!("port {port} link is down")));
            }
            self.pipeline_of(port)
                .ok_or_else(|| IrError::Invalid(format!("port {port} out of range")))
        })();
        let result = match checked {
            Ok(pipeline) => self.run_buf_to_completion(buf, port, pipeline),
            Err(e) => Err(e),
        };
        if result.is_err() {
            self.metrics.on_reject();
        }
        result
    }

    /// Drains the mirror copies produced by [`Switch::inject_buf`]
    /// traversals since the last drain: `(mirror port, bytes)` in
    /// production order.
    pub fn drain_mirrored(&mut self) -> Vec<(PortId, Vec<u8>)> {
        std::mem::take(&mut self.mirror_out)
    }

    /// One compiled pipelet pass over the caller's buffer. On a successful
    /// parse the deparsed bytes are swapped into `buf`; a pipelet with no
    /// program passes the bytes through untouched.
    fn buf_pass(
        &mut self,
        pipelet: PipeletId,
        buf: &mut Vec<u8>,
        ingress_port: PortId,
        egress_seed: PortId,
    ) -> Result<crate::compiled::BufPass, IrError> {
        if !self.programs.contains_key(&pipelet) {
            return Ok(crate::compiled::BufPass {
                parsed: true,
                drop: false,
                to_cpu: false,
                resubmit: false,
                mirror: false,
                egress_spec: u128::from(egress_seed),
                tables_applied: 0,
            });
        }
        let cp = Arc::clone(
            self.compiled
                .get(&pipelet)
                .expect("compiled program exists for every loaded program"),
        );
        let tables = self
            .tables
            .get_mut(&pipelet)
            .expect("state exists for loaded program");
        let pass = cp.run_pass_scratch(
            buf,
            ingress_port,
            egress_seed,
            tables,
            false,
            &mut self.scratch,
        )?;
        if pass.parsed {
            std::mem::swap(buf, self.scratch.out_mut());
        }
        Ok(pass)
    }

    /// The buffer-based twin of [`Switch::run_to_completion`]: same control
    /// flow, same metric hooks, no per-packet allocation.
    fn run_buf_to_completion(
        &mut self,
        buf: &mut Vec<u8>,
        mut ingress_port: PortId,
        mut pipeline: usize,
    ) -> Result<BufOutcome, IrError> {
        let mut latency = self.timing.mac_rx_ns;
        let mut recirculations = 0usize;
        let mut resubmissions = 0usize;
        let stages = self.profile.stages_per_pipelet;
        self.metrics.on_rx(ingress_port);

        for _ in 0..self.max_loops {
            // ---- ingress pipelet ----
            let ing = PipeletId::ingress(pipeline);
            latency += self.timing.pipelet_ns(stages);
            let sig = self.buf_pass(ing, buf, ingress_port, PORT_UNSET)?;
            self.collect_digests(ing);
            self.metrics.on_pass(ing, sig.tables_applied);
            if !sig.parsed {
                self.metrics.on_parse_error(ing);
                return Ok(self.finish_buf(
                    Disposition::Dropped,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            }
            self.maybe_mirror_buf(sig.mirror, buf);

            if sig.drop {
                self.metrics.on_drop(ing);
                return Ok(self.finish_buf(
                    Disposition::Dropped,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            }
            if sig.to_cpu {
                return Ok(self.finish_buf(
                    Disposition::ToCpu,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            }
            if sig.resubmit {
                self.metrics.on_resubmit(pipeline);
                latency += self.timing.resubmit_ns;
                resubmissions += 1;
                continue; // same pipeline, same ingress port
            }

            let egress_spec = sig.egress_spec as PortId;
            if egress_spec == CPU_PORT {
                return Ok(self.finish_buf(
                    Disposition::ToCpu,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            }
            if egress_spec == PORT_UNSET {
                // No forwarding decision was made: hardware drops.
                self.metrics.on_drop(ing);
                return Ok(self.finish_buf(
                    Disposition::Dropped,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            }
            let Some(dest_pipeline) = self.pipeline_of(egress_spec) else {
                self.metrics.on_drop(ing);
                return Ok(self.finish_buf(
                    Disposition::Dropped,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            };
            if self.is_port_down(egress_spec) {
                self.metrics.on_drop(ing);
                return Ok(self.finish_buf(
                    Disposition::Dropped,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            }

            // ---- traffic manager ----
            latency += self.timing.tm_ns;

            // ---- egress pipelet ----
            let eg = PipeletId::egress(dest_pipeline);
            latency += self.timing.pipelet_ns(stages);
            // The egress pipelet's own writes to `egress_spec` are ignored —
            // the port decision was made in ingress.
            let esig = self.buf_pass(eg, buf, ingress_port, egress_spec)?;
            self.collect_digests(eg);
            self.metrics.on_pass(eg, esig.tables_applied);
            if !esig.parsed {
                self.metrics.on_parse_error(eg);
                return Ok(self.finish_buf(
                    Disposition::Dropped,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            }
            self.maybe_mirror_buf(esig.mirror, buf);

            if esig.drop {
                self.metrics.on_drop(eg);
                return Ok(self.finish_buf(
                    Disposition::Dropped,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            }
            if esig.to_cpu {
                return Ok(self.finish_buf(
                    Disposition::ToCpu,
                    latency,
                    recirculations,
                    resubmissions,
                ));
            }

            // ---- port: out, or loop back ----
            let is_dedicated_recirc = egress_spec >= RECIRC_PORT_BASE
                && egress_spec < RECIRC_PORT_BASE + self.profile.pipelines as PortId;
            if self.is_loopback(egress_spec) || is_dedicated_recirc {
                self.metrics.on_recirculate(dest_pipeline);
                latency += self.timing.recirc_on_chip_ns;
                recirculations += 1;
                // Constraint (d): re-enter the ingress pipe of the pipeline
                // owning the loopback port — with the same buffer.
                pipeline = dest_pipeline;
                ingress_port = egress_spec;
                continue;
            }

            latency += self.timing.mac_tx_ns;
            return Ok(self.finish_buf(
                Disposition::Emitted { port: egress_spec },
                latency,
                recirculations,
                resubmissions,
            ));
        }
        Err(IrError::Invalid(format!(
            "packet did not leave the switch after {} pipeline loops (forwarding loop?)",
            self.max_loops
        )))
    }

    /// Queues a mirror copy of the buffer when the pass set `mirror_flag`
    /// and a mirror port is configured (the copy is the one allocation on
    /// this path — mirroring is a tap, not steady-state forwarding).
    fn maybe_mirror_buf(&mut self, mirror: bool, buf: &[u8]) {
        if mirror {
            if let Some(port) = self.mirror_port {
                self.metrics.on_mirror();
                self.mirror_out.push((port, buf.to_vec()));
            }
        }
    }

    /// Fires the terminal metric hooks and packs a [`BufOutcome`] — the
    /// buffer path's twin of [`Switch::finish`].
    fn finish_buf(
        &self,
        disposition: Disposition,
        latency_ns: f64,
        recirculations: usize,
        resubmissions: usize,
    ) -> BufOutcome {
        match &disposition {
            Disposition::Emitted { port } => self.metrics.on_emit(*port),
            Disposition::Dropped => self.metrics.on_dropped(),
            Disposition::ToCpu => self.metrics.on_to_cpu(),
        }
        self.metrics.on_complete(latency_ns, recirculations);
        BufOutcome {
            disposition,
            recirculations,
            resubmissions,
            latency_ns,
        }
    }

    fn run_to_completion(
        &mut self,
        mut bytes: Vec<u8>,
        mut ingress_port: PortId,
        mut pipeline: usize,
    ) -> Result<Traversal, IrError> {
        let trace = self.trace_level == TraceLevel::Full;
        let mut events = Vec::new();
        let mut latency = self.timing.mac_rx_ns;
        let mut recirculations = 0usize;
        let mut resubmissions = 0usize;
        let mut mirrored: Vec<(PortId, Vec<u8>)> = Vec::new();
        let stages = self.profile.stages_per_pipelet;
        self.metrics.on_rx(ingress_port);

        for _ in 0..self.max_loops {
            // ---- ingress pipelet ----
            let ing = PipeletId::ingress(pipeline);
            if trace {
                events.push(TraceEvent::EnterPipelet(ing));
            }
            latency += self.timing.pipelet_ns(stages);

            let sig = self.run_pass(ing, &bytes, ingress_port, PORT_UNSET, &mut events)?;
            self.collect_digests(ing);
            self.metrics.on_pass(ing, sig.tables_applied);
            let Some(new_bytes) = sig.bytes else {
                self.metrics.on_parse_error(ing);
                return Ok(self.finish(
                    events,
                    Disposition::Dropped,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            };
            bytes = new_bytes;
            self.maybe_mirror(sig.mirror, &bytes, &mut events, &mut mirrored);

            if sig.drop {
                if trace {
                    events.push(TraceEvent::Drop { pipelet: ing });
                }
                self.metrics.on_drop(ing);
                return Ok(self.finish(
                    events,
                    Disposition::Dropped,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            }
            if sig.to_cpu {
                if trace {
                    events.push(TraceEvent::ToCpu { pipelet: ing });
                }
                return Ok(self.finish(
                    events,
                    Disposition::ToCpu,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            }
            if sig.resubmit {
                if trace {
                    events.push(TraceEvent::Resubmit { pipeline });
                }
                self.metrics.on_resubmit(pipeline);
                latency += self.timing.resubmit_ns;
                resubmissions += 1;
                continue; // same pipeline, same ingress port
            }

            let egress_spec = sig.egress_spec;
            if egress_spec == CPU_PORT {
                if trace {
                    events.push(TraceEvent::ToCpu { pipelet: ing });
                }
                return Ok(self.finish(
                    events,
                    Disposition::ToCpu,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            }
            if egress_spec == PORT_UNSET {
                // No forwarding decision was made: hardware drops.
                if trace {
                    events.push(TraceEvent::Drop { pipelet: ing });
                }
                self.metrics.on_drop(ing);
                return Ok(self.finish(
                    events,
                    Disposition::Dropped,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            }
            let Some(dest_pipeline) = self.pipeline_of(egress_spec) else {
                if trace {
                    events.push(TraceEvent::Drop { pipelet: ing });
                }
                self.metrics.on_drop(ing);
                return Ok(self.finish(
                    events,
                    Disposition::Dropped,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            };
            if self.is_port_down(egress_spec) {
                if trace {
                    events.push(TraceEvent::LinkDown { port: egress_spec });
                    events.push(TraceEvent::Drop { pipelet: ing });
                }
                self.metrics.on_drop(ing);
                return Ok(self.finish(
                    events,
                    Disposition::Dropped,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            }

            // ---- traffic manager ----
            if trace {
                events.push(TraceEvent::TmTransit {
                    from: pipeline,
                    to: dest_pipeline,
                });
            }
            latency += self.timing.tm_ns;

            // ---- egress pipelet ----
            let eg = PipeletId::egress(dest_pipeline);
            if trace {
                events.push(TraceEvent::EnterPipelet(eg));
            }
            latency += self.timing.pipelet_ns(stages);

            // Note: the egress pipelet's own writes to `egress_spec` are
            // ignored — the port decision was made in ingress.
            let esig = self.run_pass(eg, &bytes, ingress_port, egress_spec, &mut events)?;
            self.collect_digests(eg);
            self.metrics.on_pass(eg, esig.tables_applied);
            let Some(new_bytes) = esig.bytes else {
                self.metrics.on_parse_error(eg);
                return Ok(self.finish(
                    events,
                    Disposition::Dropped,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            };
            bytes = new_bytes;
            self.maybe_mirror(esig.mirror, &bytes, &mut events, &mut mirrored);

            if esig.drop {
                if trace {
                    events.push(TraceEvent::Drop { pipelet: eg });
                }
                self.metrics.on_drop(eg);
                return Ok(self.finish(
                    events,
                    Disposition::Dropped,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            }
            if esig.to_cpu {
                if trace {
                    events.push(TraceEvent::ToCpu { pipelet: eg });
                }
                return Ok(self.finish(
                    events,
                    Disposition::ToCpu,
                    bytes,
                    latency,
                    recirculations,
                    resubmissions,
                    mirrored,
                ));
            }

            // ---- port: out, or loop back ----
            let is_dedicated_recirc = egress_spec >= RECIRC_PORT_BASE
                && egress_spec < RECIRC_PORT_BASE + self.profile.pipelines as PortId;
            if self.is_loopback(egress_spec) || is_dedicated_recirc {
                if trace {
                    events.push(TraceEvent::Recirculate { port: egress_spec });
                }
                self.metrics.on_recirculate(dest_pipeline);
                latency += self.timing.recirc_on_chip_ns;
                recirculations += 1;
                // Constraint (d): the packet re-enters the ingress pipe of
                // the pipeline that owns the loopback port.
                pipeline = dest_pipeline;
                ingress_port = egress_spec;
                continue;
            }

            if trace {
                events.push(TraceEvent::Emit { port: egress_spec });
            }
            latency += self.timing.mac_tx_ns;
            return Ok(self.finish(
                events,
                Disposition::Emitted { port: egress_spec },
                bytes,
                latency,
                recirculations,
                resubmissions,
                mirrored,
            ));
        }
        Err(IrError::Invalid(format!(
            "packet did not leave the switch after {} pipeline loops (forwarding loop?)",
            self.max_loops
        )))
    }

    /// Emits a mirror copy when the pipelet set `mirror_flag` and a mirror
    /// port is configured. Mirror copies are semantics, not trace — they are
    /// collected at every [`TraceLevel`]; only the `Mirror` event is gated.
    fn maybe_mirror(
        &self,
        mirror: bool,
        bytes: &[u8],
        events: &mut Vec<TraceEvent>,
        mirrored: &mut Vec<(PortId, Vec<u8>)>,
    ) {
        if mirror {
            if let Some(port) = self.mirror_port {
                if self.trace_level == TraceLevel::Full {
                    events.push(TraceEvent::Mirror { port });
                }
                self.metrics.on_mirror();
                mirrored.push((port, bytes.to_vec()));
            }
        }
    }

    /// Runs one pipelet pass (parser + control + deparser) on whichever
    /// engine [`ExecMode`] selects, reducing both to the same
    /// [`PassSignals`]. A pipelet with no program passes bytes through
    /// untouched; a parser reject yields `bytes: None` (recorded as a
    /// `ParseError` event when tracing).
    fn run_pass(
        &mut self,
        pipelet: PipeletId,
        bytes: &[u8],
        ingress_port: PortId,
        egress_seed: PortId,
        events: &mut Vec<TraceEvent>,
    ) -> Result<PassSignals, IrError> {
        let trace = self.trace_level == TraceLevel::Full;
        if !self.programs.contains_key(&pipelet) {
            return Ok(PassSignals {
                bytes: Some(bytes.to_vec()),
                drop: false,
                to_cpu: false,
                resubmit: false,
                mirror: false,
                egress_spec: egress_seed,
                tables_applied: 0,
            });
        }
        match self.exec_mode {
            ExecMode::Compiled => {
                let cp = self
                    .compiled
                    .get(&pipelet)
                    .expect("compiled program exists for every loaded program");
                let tables = self
                    .tables
                    .get_mut(&pipelet)
                    .expect("state exists for loaded program");
                let pass = cp.run_pass(bytes, ingress_port, egress_seed, tables, trace)?;
                if trace {
                    if pass.bytes.is_none() {
                        events.push(TraceEvent::ParseError { pipelet });
                    }
                    for ev in pass.events {
                        events.push(TraceEvent::Table {
                            pipelet,
                            table: ev.table,
                            hit: ev.hit,
                            action: ev.action,
                        });
                    }
                }
                Ok(PassSignals {
                    bytes: pass.bytes,
                    drop: pass.drop,
                    to_cpu: pass.to_cpu,
                    resubmit: pass.resubmit,
                    mirror: pass.mirror,
                    egress_spec: pass.egress_spec as PortId,
                    tables_applied: pass.tables_applied,
                })
            }
            ExecMode::Reference => {
                let program = self.programs.get(&pipelet).expect("checked above");
                let mut meta = BTreeMap::new();
                meta.insert(
                    "ingress_port".to_string(),
                    Value::new(u128::from(ingress_port), 16),
                );
                meta.insert(
                    "egress_spec".to_string(),
                    Value::new(u128::from(egress_seed), 16),
                );
                let interp = Interpreter::new(program);
                let mut pp = match ParsedPacket::parse(bytes, &program.parser, interp.headers()) {
                    Ok(pp) => pp,
                    Err(_) => {
                        if trace {
                            events.push(TraceEvent::ParseError { pipelet });
                        }
                        return Ok(PassSignals {
                            bytes: None,
                            drop: false,
                            to_cpu: false,
                            resubmit: false,
                            mirror: false,
                            egress_spec: egress_seed,
                            tables_applied: 0,
                        });
                    }
                };
                let tables = self
                    .tables
                    .get_mut(&pipelet)
                    .expect("state exists for loaded program");
                let outcome = interp.execute(&mut pp, &mut meta, tables)?;
                if trace {
                    for ev in outcome.events {
                        events.push(TraceEvent::Table {
                            pipelet,
                            table: ev.table,
                            hit: ev.hit,
                            action: ev.action,
                        });
                    }
                }
                let flag = |name: &str| meta.get(name).is_some_and(|v| v.as_bool());
                Ok(PassSignals {
                    bytes: Some(pp.deparse(interp.headers())?),
                    drop: flag("drop_flag"),
                    to_cpu: flag("to_cpu_flag"),
                    resubmit: flag("resubmit_flag"),
                    mirror: flag("mirror_flag"),
                    egress_spec: meta
                        .get("egress_spec")
                        .map(|v| v.raw() as PortId)
                        .unwrap_or(PORT_UNSET),
                    tables_applied: outcome.tables_applied,
                })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        events: Vec<TraceEvent>,
        disposition: Disposition,
        final_bytes: Vec<u8>,
        latency_ns: f64,
        recirculations: usize,
        resubmissions: usize,
        mirrored: Vec<(PortId, Vec<u8>)>,
    ) -> Traversal {
        match &disposition {
            Disposition::Emitted { port } => self.metrics.on_emit(*port),
            Disposition::Dropped => self.metrics.on_dropped(),
            Disposition::ToCpu => self.metrics.on_to_cpu(),
        }
        self.metrics.on_complete(latency_ns, recirculations);
        Traversal {
            events,
            disposition,
            final_bytes,
            latency_ns,
            recirculations,
            resubmissions,
            mirrored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::table::{KeyMatch, TableEntry};
    use dejavu_p4ir::well_known;
    use dejavu_p4ir::{fref, Expr, FieldRef};

    /// Ingress program: L2 forward by dst MAC (exact), default drop.
    fn l2_program() -> Program {
        ProgramBuilder::new("l2")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("fwd")
                    .param("port", 16)
                    .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                    .build(),
            )
            .action(ActionBuilder::new("deny").drop_packet().build())
            .table(
                TableBuilder::new("l2")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .action("fwd")
                    .default_action("deny")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("l2").build())
            .entry("ingress")
            .build()
            .unwrap()
    }

    fn eth_packet(dst: u64) -> Vec<u8> {
        let mut p = vec![0u8; 14];
        p[..6].copy_from_slice(&dst.to_be_bytes()[2..]);
        p
    }

    fn fwd_entry(dst: u64, port: PortId) -> TableEntry {
        TableEntry {
            matches: vec![KeyMatch::Exact(Value::new(u128::from(dst), 48))],
            action: "fwd".into(),
            action_args: vec![Value::new(u128::from(port), 16)],
            priority: 0,
        }
    }

    fn basic_switch() -> Switch {
        let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
        sw.load_program(PipeletId::ingress(0), l2_program())
            .unwrap();
        sw.load_program(PipeletId::ingress(1), l2_program())
            .unwrap();
        sw
    }

    #[test]
    fn forward_across_traffic_manager() {
        let mut sw = basic_switch();
        sw.install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, 20))
            .unwrap();
        let t = sw
            .inject(InjectedPacket::new(eth_packet(0xaabb), 0))
            .unwrap();
        assert_eq!(t.disposition, Disposition::Emitted { port: 20 });
        // ingress pipeline 0 → TM → egress pipeline 1 (port 20)
        assert_eq!(
            t.pipelets_visited(),
            vec![PipeletId::ingress(0), PipeletId::egress(1)]
        );
        assert_eq!(t.recirculations, 0);
        // Latency matches the calibrated port-to-port figure.
        assert!((t.latency_ns - 650.0).abs() < 1e-9);
    }

    #[test]
    fn default_drop() {
        let mut sw = basic_switch();
        let t = sw
            .inject(InjectedPacket::new(eth_packet(0xdead), 0))
            .unwrap();
        assert_eq!(t.disposition, Disposition::Dropped);
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Drop { .. })));
    }

    #[test]
    fn loopback_port_recirculates_into_owning_pipeline() {
        let mut sw = basic_switch();
        // Send to port 16 (pipeline 1) which is in loopback; pipeline 1's
        // ingress then forwards to port 1 (pipeline 0).
        sw.set_loopback(16, true).unwrap();
        sw.install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, 16))
            .unwrap();
        sw.install_entry(PipeletId::ingress(1), "l2", fwd_entry(0xaabb, 1))
            .unwrap();
        let t = sw
            .inject(InjectedPacket::new(eth_packet(0xaabb), 0))
            .unwrap();
        assert_eq!(t.disposition, Disposition::Emitted { port: 1 });
        assert_eq!(t.recirculations, 1);
        assert_eq!(
            t.pipelets_visited(),
            vec![
                PipeletId::ingress(0),
                PipeletId::egress(1),  // to loopback port 16
                PipeletId::ingress(1), // constraint (d): re-enters pipeline 1
                PipeletId::egress(0),  // out port 1
            ]
        );
        // One recirculation adds recirc_on_chip + ingress+TM+egress again.
        let tm = TimingModel::tofino();
        assert!((t.latency_ns - tm.path_with_recircs_ns(12, 1)).abs() < 1e-9);
    }

    #[test]
    fn dedicated_recirc_port_works() {
        let mut sw = basic_switch();
        let rp = sw.recirc_port(0);
        sw.install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, rp))
            .unwrap();
        // After recirculating into pipeline 0's ingress again, the same table
        // matches again — rewrite the entry to avoid an infinite loop by
        // using a different switch: install on pipeline 0 only once; second
        // pass uses the same entry → loop. Instead forward to out port on
        // the second pipeline's table.
        // (Dedicated port belongs to pipeline 0, so ingress 0 runs twice; we
        // make the second lookup exit by using dst 0xaabb → rp the first
        // time only. To keep the test deterministic we swap the entry after
        // injecting is not possible, so check loop detection instead.)
        let err = sw
            .inject(InjectedPacket::new(eth_packet(0xaabb), 0))
            .unwrap_err();
        assert!(matches!(err, IrError::Invalid(_)));
    }

    #[test]
    fn injecting_on_loopback_port_is_rejected() {
        let mut sw = basic_switch();
        sw.set_loopback(3, true).unwrap();
        assert!(sw.inject(InjectedPacket::new(eth_packet(1), 3)).is_err());
        assert!(sw.is_loopback(3));
        sw.set_loopback(3, false).unwrap();
        assert!(sw.inject(InjectedPacket::new(eth_packet(1), 3)).is_ok());
    }

    #[test]
    fn unset_egress_spec_drops() {
        // Program with a pass action that never sets egress_spec.
        let program = ProgramBuilder::new("noop")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("t")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("t").build())
            .entry("ingress")
            .build()
            .unwrap();
        let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
        sw.load_program(PipeletId::ingress(0), program).unwrap();
        let t = sw.inject(InjectedPacket::new(eth_packet(1), 0)).unwrap();
        assert_eq!(t.disposition, Disposition::Dropped);
    }

    #[test]
    fn cpu_punt_via_flag() {
        let program = ProgramBuilder::new("punt")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("to_cpu")
                    .set(FieldRef::meta("to_cpu_flag"), Expr::val(1, 1))
                    .build(),
            )
            .table(
                TableBuilder::new("t")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .default_action("to_cpu")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("t").build())
            .entry("ingress")
            .build()
            .unwrap();
        let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
        sw.load_program(PipeletId::ingress(0), program).unwrap();
        let t = sw.inject(InjectedPacket::new(eth_packet(1), 0)).unwrap();
        assert_eq!(t.disposition, Disposition::ToCpu);
    }

    #[test]
    fn resubmission_reruns_same_ingress() {
        // Resubmit once: first pass sets resubmit_flag if ether_type == 0,
        // and rewrites ether_type so the second pass forwards.
        let program = ProgramBuilder::new("resub")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("resubmit")
                    .set(FieldRef::meta("resubmit_flag"), Expr::val(1, 1))
                    .set(fref("ethernet", "ether_type"), Expr::val(1, 16))
                    .build(),
            )
            .action(
                ActionBuilder::new("out")
                    .set(FieldRef::meta("egress_spec"), Expr::val(5, 16))
                    .build(),
            )
            .table(
                TableBuilder::new("decide")
                    .key_exact(fref("ethernet", "ether_type"))
                    .action("resubmit")
                    .default_action("out")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("decide").build())
            .entry("ingress")
            .build()
            .unwrap();
        let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
        sw.load_program(PipeletId::ingress(0), program.clone())
            .unwrap();
        let def = program.tables.get("decide").unwrap().clone();
        sw.tables
            .get_mut(&PipeletId::ingress(0))
            .unwrap()
            .install(
                &def,
                TableEntry {
                    matches: vec![KeyMatch::Exact(Value::new(0, 16))],
                    action: "resubmit".into(),
                    action_args: vec![],
                    priority: 0,
                },
            )
            .unwrap();
        let t = sw.inject(InjectedPacket::new(eth_packet(9), 0)).unwrap();
        assert_eq!(t.disposition, Disposition::Emitted { port: 5 });
        assert_eq!(t.resubmissions, 1);
        assert_eq!(
            t.pipelets_visited(),
            vec![
                PipeletId::ingress(0),
                PipeletId::ingress(0),
                PipeletId::egress(0)
            ]
        );
    }

    #[test]
    fn load_program_validates_pipeline_range() {
        let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
        assert!(sw
            .load_program(PipeletId::ingress(5), l2_program())
            .is_err());
    }

    #[test]
    fn table_counters_accumulate() {
        let mut sw = basic_switch();
        sw.install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, 2))
            .unwrap();
        sw.inject(InjectedPacket::new(eth_packet(0xaabb), 0))
            .unwrap();
        sw.inject(InjectedPacket::new(eth_packet(0xffff), 0))
            .unwrap();
        let c = sw.tables(PipeletId::ingress(0)).unwrap().counters("l2");
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn reference_and_compiled_modes_agree() {
        let run = |mode: ExecMode| {
            let mut sw = basic_switch();
            sw.set_exec_mode(mode);
            sw.install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, 20))
                .unwrap();
            let hit = sw
                .inject(InjectedPacket::new(eth_packet(0xaabb), 0))
                .unwrap();
            let miss = sw.inject(InjectedPacket::new(eth_packet(0x1), 0)).unwrap();
            (hit, miss)
        };
        let (hit_c, miss_c) = run(ExecMode::Compiled);
        let (hit_r, miss_r) = run(ExecMode::Reference);
        assert_eq!(hit_c, hit_r);
        assert_eq!(miss_c, miss_r);
    }

    #[test]
    fn trace_off_records_no_events_but_same_outcome() {
        let mut sw = basic_switch();
        sw.install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, 20))
            .unwrap();
        sw.set_trace_level(TraceLevel::Off);
        let t = sw
            .inject(InjectedPacket::new(eth_packet(0xaabb), 0))
            .unwrap();
        assert_eq!(t.disposition, Disposition::Emitted { port: 20 });
        assert!(t.events.is_empty());
        assert!((t.latency_ns - 650.0).abs() < 1e-9);
        // Counters still advance with tracing off.
        let c = sw.tables(PipeletId::ingress(0)).unwrap().counters("l2");
        assert_eq!(c.hits, 1);
    }

    #[test]
    fn inject_batch_tallies_dispositions_and_restores_trace_level() {
        let mut sw = basic_switch();
        sw.install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, 20))
            .unwrap();
        sw.set_loopback(5, true).unwrap();
        let batch = vec![
            InjectedPacket::new(eth_packet(0xaabb), 0), // emitted on 20
            InjectedPacket::new(eth_packet(0x7), 0),    // default deny → dropped
            InjectedPacket::new(eth_packet(0xaabb), 5), // loopback: no traffic → error
        ];
        let stats = sw.inject_batch(&batch);
        assert_eq!(stats.injected, 3);
        assert_eq!(stats.emitted, 1);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.to_cpu, 0);
        assert!(stats.latency_ns_total > 0.0);
        assert_eq!(sw.trace_level(), TraceLevel::Full);
    }

    /// L2 learner: unknown destinations digest the MAC and flood out 9.
    fn learn_program() -> Program {
        ProgramBuilder::new("learner")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("fwd")
                    .param("port", 16)
                    .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                    .build(),
            )
            .action(
                ActionBuilder::new("learn")
                    .digest("d0", vec![Expr::field("ethernet", "dst_mac")])
                    .set(FieldRef::meta("egress_spec"), Expr::val(9, 16))
                    .build(),
            )
            .table(
                TableBuilder::new("flows")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .action("fwd")
                    .default_action("learn")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("flows").build())
            .entry("ingress")
            .build()
            .unwrap()
    }

    #[test]
    fn digest_queue_is_bounded_and_counts_drops() {
        let mut sw = Switch::with_options(
            TofinoProfile::wedge_100b_32x(),
            SwitchOptions::new().digest_capacity(2),
        );
        sw.load_program(PipeletId::ingress(0), learn_program())
            .unwrap();
        for i in 0..4u64 {
            sw.inject(InjectedPacket::new(eth_packet(0x100 + i), 0))
                .unwrap();
        }
        // The queue holds the first two records; the overflow is counted.
        assert_eq!(sw.digest_backlog(0), 2);
        assert_eq!(sw.digests_dropped(0), 2);
        let drained = sw.drain_digests();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 0);
        assert_eq!(drained[0].1.name, "d0");
        assert_eq!(drained[0].1.values[0].raw(), 0x100);
        assert_eq!(drained[1].1.values[0].raw(), 0x101);
        assert_eq!(sw.digest_backlog(0), 0);
        // Draining frees capacity again.
        sw.inject(InjectedPacket::new(eth_packet(0x200), 0))
            .unwrap();
        assert_eq!(sw.digest_backlog(0), 1);
        assert_eq!(sw.digests_dropped(0), 2);
    }

    #[test]
    fn state_snapshot_round_trips_through_reload_and_json() {
        let mut sw = basic_switch();
        let pid = PipeletId::ingress(0);
        sw.install_entry(pid, "l2", fwd_entry(0xaabb, 20)).unwrap();
        sw.set_idle_timeout(pid, "l2", Some(7)).unwrap();
        let snap = sw.snapshot_state(pid).unwrap();
        assert_eq!(snap.total_entries(), 1);

        // JSON export/import is lossless.
        let back = crate::state::StateSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);

        // Reloading the program wipes the dynamic state...
        sw.load_program(pid, l2_program()).unwrap();
        assert!(sw.tables(pid).unwrap().entries("l2").is_empty());
        assert_eq!(sw.tables(pid).unwrap().idle_timeout("l2"), None);
        // ...and restoring brings back entries and aging config.
        let report = sw.restore_state(pid, &snap).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.restored_entries, 1);
        assert_eq!(sw.tables(pid).unwrap().idle_timeout("l2"), Some(7));
        let t = sw
            .inject(InjectedPacket::new(eth_packet(0xaabb), 0))
            .unwrap();
        assert_eq!(t.disposition, Disposition::Emitted { port: 20 });
    }

    #[test]
    fn inject_buf_matches_inject() {
        let mut reference = basic_switch();
        reference
            .install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, 20))
            .unwrap();
        let mut pooled = reference.clone();

        for (dst, port) in [(0xaabbu64, 0u16), (0xdead, 0), (0xaabb, 9999), (0xaabb, 3)] {
            let bytes = eth_packet(dst);
            let t = reference.inject(InjectedPacket::new(bytes.clone(), port));
            let mut buf = bytes;
            let b = pooled.inject_buf(&mut buf, port);
            match (t, b) {
                (Ok(t), Ok(b)) => {
                    assert_eq!(t.disposition, b.disposition);
                    assert_eq!(t.recirculations, b.recirculations);
                    assert_eq!(t.resubmissions, b.resubmissions);
                    assert!((t.latency_ns - b.latency_ns).abs() < 1e-9);
                    assert_eq!(t.final_bytes, buf, "buffer carries the final bytes");
                }
                (Err(_), Err(_)) => {}
                (t, b) => panic!("paths diverged: {t:?} vs {b:?}"),
            }
        }
        // Metric streams stayed identical across both engines as well.
        assert_eq!(reference.metrics_snapshot(), pooled.metrics_snapshot());
    }

    #[test]
    fn inject_buf_reuses_buffer_across_packets() {
        let mut sw = basic_switch();
        sw.install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, 20))
            .unwrap();
        let mut buf = Vec::with_capacity(256);
        for _ in 0..3 {
            buf.clear();
            buf.extend_from_slice(&eth_packet(0xaabb));
            let out = sw.inject_buf(&mut buf, 0).unwrap();
            assert_eq!(out.disposition, Disposition::Emitted { port: 20 });
            assert_eq!(buf.len(), 14);
        }
    }

    #[test]
    fn inject_buf_collects_mirrors_via_drain() {
        let mut sw = basic_switch();
        sw.install_entry(PipeletId::ingress(0), "l2", fwd_entry(0xaabb, 20))
            .unwrap();
        sw.set_mirror_port(Some(30));
        // The l2 program never mirrors, so the queue stays empty…
        let mut buf = eth_packet(0xaabb);
        sw.inject_buf(&mut buf, 0).unwrap();
        assert!(sw.drain_mirrored().is_empty());
    }
}
