//! Runtime table state — the entries the control plane installs.
//!
//! The P4 program fixes each table's *shape* (`dejavu_p4ir::TableDef`); the
//! control plane populates it at run time (the paper's §3.1: "the control
//! plane will simply install a new session in the lb_session upon packet
//! reception"). [`TableState`] owns the entries of every table of one
//! pipelet program and implements hardware match semantics:
//!
//! * exact tables: at most one matching entry,
//! * LPM keys: the longest matching prefix wins,
//! * ternary/range keys: the highest-priority matching entry wins.
//!
//! Lookups are served from per-table [`crate::index::ClassifierIndex`]es
//! maintained incrementally at install/delete/aging time, the way a switch
//! driver shadows hardware match memories:
//!
//! * all-exact-key tables get a hash index keyed on the full key tuple
//!   (SRAM-style O(1) lookup),
//! * single-key LPM tables get prefix-length buckets walked longest-first
//!   (the classic software LPM structure),
//! * ternary/range/mixed tables get **tuple-space search** (one hash table
//!   per mask tuple, probed in descending max-priority order with early
//!   exit), migrating to a **HyperCuts-style decision tree** when the
//!   ruleset's mask diversity makes the tuple space degenerate.
//!
//! The selection heuristic lives in `crate::index`; a per-table
//! [`IndexPolicy`] can pin any admissible kind (benchmark baselines,
//! differential tests). [`TableState::lookup_scan`] preserves the original
//! linear-scan semantics as the reference oracle, so the property suite can
//! differentially check every index against it. Hit/miss counters live in
//! `Cell`s so the counting and read-only lookup paths share one `&self`
//! code path.

use crate::index::{
    auto_kind_after_insert, auto_kind_from_entries, initial_kind, make_index, rank_of, shape_of,
    ClassifierIndex, IndexKind, IndexPolicy, IndexStats, IndexTelemetry, ProbeLog, Rank,
    TableShape,
};
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::{IrError, MatchKind, TableDef, Value};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};

/// Hit/miss counters of one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCounters {
    /// Lookups that matched an installed entry.
    pub hits: u64,
    /// Lookups that fell through to the default action.
    pub misses: u64,
}

/// One digest message emitted by an action's `digest(...)` primitive.
/// After program merging the stream name is scoped like tables
/// (`<nf>__<stream>`), which is what the control-plane learning loop keys
/// its handlers on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestRecord {
    /// Digest stream name.
    pub name: String,
    /// Evaluated field values, in the order the action listed them.
    pub values: Vec<Value>,
}

/// Runtime state of one table: entries in install order, the pluggable
/// classification index, and interior-mutable counters.
#[derive(Debug, Clone)]
struct TableRt {
    entries: Vec<TableEntry>,
    ranks: Vec<Rank>,
    /// Ordinal of each entry's action within the table definition's action
    /// list, parallel to `entries`. Resolved once at install time so the
    /// engines' hot paths can map a hit to a prelowered action without
    /// hashing the action name per packet.
    action_ords: Vec<usize>,
    /// Coarse key-kind shape; constrains which index kinds are admissible.
    shape: TableShape,
    /// Auto-select or pinned index kind.
    policy: IndexPolicy,
    index: Box<dyn ClassifierIndex>,
    /// Probe/depth effort recorded by the index on every lookup.
    probe_log: ProbeLog,
    /// Times the index was rebuilt from scratch (migrations and sweeps).
    rebuilds: u64,
    hits: Cell<u64>,
    misses: Cell<u64>,
    /// Logical tick of the last hit, parallel to `entries` (install tick
    /// until first hit). `Cell` for the same reason as the counters: the
    /// lookup paths take `&self`.
    last_hit: Vec<Cell<u64>>,
    /// Idle timeout in logical ticks; `None` disables aging.
    idle_timeout: Option<u64>,
    /// Entries evicted so far (expiry sweeps + LRU capacity evictions).
    evictions: Cell<u64>,
    /// Lower bound on the minimum `last_hit` stamp across live entries
    /// (`u64::MAX` when empty). Stamps only move forward, so the bound
    /// stays valid between full sweeps and lets `advance_clock` skip the
    /// per-entry scan while `now - floor < timeout` — the steady-state
    /// fast path when every flow is active.
    stamp_floor: u64,
}

impl TableRt {
    fn new(def: &TableDef) -> Self {
        let shape = shape_of(def);
        TableRt {
            entries: Vec::new(),
            ranks: Vec::new(),
            action_ords: Vec::new(),
            shape,
            policy: IndexPolicy::Auto,
            index: make_index(initial_kind(shape)),
            probe_log: ProbeLog::default(),
            rebuilds: 0,
            hits: Cell::new(0),
            misses: Cell::new(0),
            last_hit: Vec::new(),
            idle_timeout: None,
            evictions: Cell::new(0),
            stamp_floor: u64::MAX,
        }
    }

    fn push(&mut self, entry: TableEntry, now: u64, action_ord: usize) {
        self.stamp_floor = self.stamp_floor.min(now);
        let idx = self.entries.len();
        let rank = rank_of(&entry);
        self.entries.push(entry);
        self.ranks.push(rank);
        self.action_ords.push(action_ord);
        self.last_hit.push(Cell::new(now));
        if !self.index.insert(&self.entries, &self.ranks, idx) {
            self.rebuild_index();
        }
        self.maybe_migrate();
    }

    /// Rebuilds the current index from the full entry list.
    fn rebuild_index(&mut self) {
        self.index.build(&self.entries, &self.ranks);
        self.rebuilds += 1;
    }

    /// The kind the policy/heuristic wants right now, judged from the live
    /// index's self-reported stats (the cheap post-install check).
    fn desired_kind_incremental(&self) -> IndexKind {
        match self.policy {
            IndexPolicy::Force(k) => k,
            IndexPolicy::Auto => auto_kind_after_insert(
                self.shape,
                self.entries.len(),
                self.index.kind(),
                &self.index.stats(),
            ),
        }
    }

    /// Swaps to the desired index kind (and rebuilds) if it changed.
    fn maybe_migrate(&mut self) {
        let desired = self.desired_kind_incremental();
        if desired != self.index.kind() {
            self.index = make_index(desired);
            self.rebuild_index();
        }
    }

    /// Re-evaluates the desired kind from the entries themselves and
    /// rebuilds — the path for deletions, sweeps and policy changes.
    fn reindex_auto(&mut self) {
        let desired = match self.policy {
            IndexPolicy::Force(k) => k,
            IndexPolicy::Auto => auto_kind_from_entries(self.shape, &self.entries),
        };
        if desired != self.index.kind() {
            self.index = make_index(desired);
        }
        self.rebuild_index();
    }

    /// Records a hit against entry `i` at logical tick `now`.
    fn touch(&self, i: usize, now: u64) {
        self.last_hit[i].set(now);
    }

    /// Compacts the slot in place keeping only the entries `keep` selects
    /// (by pre-compaction index), preserving install order and per-entry
    /// hit timestamps, then rebuilds the index once. Callers account for
    /// evictions themselves — a control-plane delete is not an eviction.
    fn retain_entries(&mut self, keep: impl Fn(usize) -> bool) {
        let n = self.entries.len();
        let mut kept = 0usize;
        let mut min_stamp = u64::MAX;
        for i in 0..n {
            if keep(i) {
                if kept != i {
                    self.entries.swap(kept, i);
                    self.ranks.swap(kept, i);
                    self.action_ords.swap(kept, i);
                    self.last_hit.swap(kept, i);
                }
                min_stamp = min_stamp.min(self.last_hit[kept].get());
                kept += 1;
            }
        }
        self.entries.truncate(kept);
        self.ranks.truncate(kept);
        self.action_ords.truncate(kept);
        self.last_hit.truncate(kept);
        self.stamp_floor = min_stamp;
        self.reindex_auto();
    }

    /// Removes the entry at `victim`. The common tail case (learn-cache LRU
    /// churn on fresh entries) updates the index incrementally; interior
    /// removals compact and rebuild.
    fn remove_at(&mut self, victim: usize) {
        if victim + 1 == self.entries.len() {
            let entry = self.entries.pop().expect("victim in bounds");
            let rank = self.ranks.pop().expect("ranks parallel");
            self.action_ords.pop();
            self.last_hit.pop();
            // `stamp_floor` stays a valid lower bound after a removal.
            if !self.index.remove(&entry, rank, victim) {
                self.reindex_auto();
            }
        } else {
            self.retain_entries(|i| i != victim);
        }
    }

    /// Index of the least-recently-hit entry (ties → earliest install).
    fn lru_victim(&self) -> Option<usize> {
        (0..self.entries.len()).min_by_key(|&i| (self.last_hit[i].get(), i))
    }

    /// Indexed lookup: the winning entry index, or `None` on miss.
    fn find(&self, keys: &[Value]) -> Option<usize> {
        self.index
            .lookup(&self.entries, &self.ranks, keys, &self.probe_log)
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.set(self.hits.get() + 1);
        } else {
            self.misses.set(self.misses.get() + 1);
        }
    }

    fn clear_entries(&mut self) {
        self.entries.clear();
        self.ranks.clear();
        self.action_ords.clear();
        self.last_hit.clear();
        self.stamp_floor = u64::MAX;
        self.reindex_auto();
    }
}

/// Runtime state of one pipelet: table entries, hit counters, and stateful
/// register arrays.
#[derive(Debug, Clone, Default)]
pub struct TableState {
    ids: HashMap<String, usize>,
    slots: Vec<TableRt>,
    /// Register arrays, lazily zero-initialized on first access.
    registers: BTreeMap<String, Vec<u128>>,
    /// Logical clock in ticks, advanced by `Switch::advance_time`.
    clock: u64,
    /// Digests emitted during the current pass, drained by the switch into
    /// its bounded per-pipeline queue after each pipelet pass.
    pending_digests: Vec<DigestRecord>,
}

/// One entry evicted by an expiry sweep, reported so callers (telemetry,
/// tests, operators) can see exactly what aged out.
#[derive(Debug, Clone, PartialEq)]
pub struct Eviction {
    /// Table the entry was evicted from.
    pub table: String,
    /// The evicted entry.
    pub entry: TableEntry,
}

impl TableState {
    /// Empty state.
    pub fn new() -> Self {
        TableState::default()
    }

    /// Ensures a slot exists for `def`, returning its dense id. Called by
    /// the switch at program-load time so compiled programs can address
    /// tables by index (and so miss counters exist before any install).
    pub fn preregister(&mut self, def: &TableDef) -> usize {
        if let Some(&id) = self.ids.get(&def.name) {
            return id;
        }
        let id = self.slots.len();
        self.ids.insert(def.name.clone(), id);
        self.slots.push(TableRt::new(def));
        id
    }

    fn slot(&self, table: &str) -> Option<&TableRt> {
        self.ids.get(table).map(|&id| &self.slots[id])
    }

    /// Installs an entry after validating it against the table definition:
    /// the per-key match specs must agree in arity and kind with the table's
    /// keys, and the declared capacity must not be exceeded.
    pub fn install(&mut self, def: &TableDef, entry: TableEntry) -> Result<(), IrError> {
        if entry.matches.len() != def.keys.len() {
            return Err(IrError::Invalid(format!(
                "table {}: entry has {} key matches, table has {} keys",
                def.name,
                entry.matches.len(),
                def.keys.len()
            )));
        }
        for (km, key) in entry.matches.iter().zip(&def.keys) {
            let ok = matches!(
                (km, key.kind),
                (KeyMatch::Exact(_), MatchKind::Exact)
                    | (KeyMatch::Ternary(..), MatchKind::Ternary)
                    | (KeyMatch::Lpm(..), MatchKind::Lpm)
                    | (KeyMatch::Range(..), MatchKind::Range)
                    | (KeyMatch::Any, _)
            );
            if !ok {
                return Err(IrError::Invalid(format!(
                    "table {}: match kind mismatch on key {}",
                    def.name, key.field
                )));
            }
        }
        let Some(action_ord) = def.actions.iter().position(|a| a == &entry.action) else {
            return Err(IrError::Undefined {
                kind: "entry action",
                name: entry.action.clone(),
            });
        };
        let id = self.preregister(def);
        let now = self.clock;
        let slot = &mut self.slots[id];
        if slot.entries.len() as u32 >= def.size {
            // Aging-enabled tables behave like a learn cache: a full table
            // evicts its least-recently-hit entry instead of refusing the
            // install (the bounded-memory LRU fallback).
            match slot.lru_victim() {
                Some(victim) if slot.idle_timeout.is_some() => {
                    slot.remove_at(victim);
                    slot.evictions.set(slot.evictions.get() + 1);
                }
                _ => {
                    return Err(IrError::Invalid(format!(
                        "table {} full ({} entries)",
                        def.name, def.size
                    )));
                }
            }
        }
        slot.push(entry, now, action_ord);
        Ok(())
    }

    /// Enables (or disables, with `None`) idle-timeout aging on a table:
    /// entries not hit for `timeout` logical ticks are evicted by the next
    /// [`TableState::advance_clock`] sweep, and a full table evicts LRU
    /// instead of refusing installs. The table must be registered.
    pub fn set_idle_timeout(&mut self, table: &str, timeout: Option<u64>) -> Result<(), IrError> {
        let &id = self.ids.get(table).ok_or(IrError::Undefined {
            kind: "table",
            name: table.to_string(),
        })?;
        self.slots[id].idle_timeout = timeout;
        Ok(())
    }

    /// The configured idle timeout of a table, if aging is enabled.
    pub fn idle_timeout(&self, table: &str) -> Option<u64> {
        self.slot(table).and_then(|s| s.idle_timeout)
    }

    /// Current logical time in ticks.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Seeds the logical clock (the switch aligns a freshly loaded pipelet
    /// with its own time base so aging is continuous across reloads).
    pub fn set_clock(&mut self, now: u64) {
        self.clock = now;
    }

    /// Advances the logical clock by `ticks` and sweeps every aging-enabled
    /// table: entries idle for at least their table's timeout are evicted
    /// and reported. Deterministic — both engines share this state, so the
    /// differential suite sees identical post-sweep tables.
    pub fn advance_clock(&mut self, ticks: u64) -> Vec<Eviction> {
        self.clock = self.clock.saturating_add(ticks);
        let now = self.clock;
        let mut names: Vec<(&String, usize)> = self.ids.iter().map(|(n, &i)| (n, i)).collect();
        names.sort_by_key(|&(_, i)| i);
        let mut evicted = Vec::new();
        for (name, id) in names {
            let slot = &mut self.slots[id];
            let Some(timeout) = slot.idle_timeout else {
                continue;
            };
            if now.saturating_sub(slot.stamp_floor) < timeout {
                // Even the stalest possible entry is younger than the
                // timeout, so nothing can have expired — skip the scan.
                continue;
            }
            let mut min_live = u64::MAX;
            let expired: Vec<usize> = (0..slot.entries.len())
                .filter(|&i| {
                    let stamp = slot.last_hit[i].get();
                    let dead = now.saturating_sub(stamp) >= timeout;
                    if !dead {
                        min_live = min_live.min(stamp);
                    }
                    dead
                })
                .collect();
            if expired.is_empty() {
                slot.stamp_floor = min_live;
                continue;
            }
            for &i in &expired {
                evicted.push(Eviction {
                    table: name.clone(),
                    entry: slot.entries[i].clone(),
                });
            }
            slot.evictions
                .set(slot.evictions.get() + expired.len() as u64);
            slot.retain_entries(|i| !expired.contains(&i));
        }
        evicted
    }

    /// Entries evicted from a table so far (sweeps + LRU fallback).
    pub fn evictions(&self, table: &str) -> u64 {
        self.slot(table).map_or(0, |s| s.evictions.get())
    }

    /// Total evictions across all tables (the telemetry fold).
    pub fn total_evictions(&self) -> u64 {
        self.slots.iter().map(|s| s.evictions.get()).sum()
    }

    /// The installed entries of a table, in install order (empty slice when
    /// the table is unknown). The state-snapshot capture path.
    pub fn entries(&self, table: &str) -> &[TableEntry] {
        self.slot(table).map_or(&[], |s| &s.entries)
    }

    /// True when an identical entry (same matches, action, args, priority)
    /// is already installed — the idempotence check of the learning loop.
    pub fn contains_entry(&self, table: &str, entry: &TableEntry) -> bool {
        self.entries(table).contains(entry)
    }

    /// Removes the first installed entry equal to `entry` (same matches,
    /// action, args, priority). Returns `Ok(true)` when one was removed,
    /// `Ok(false)` when no such entry exists. Control-plane deletes do not
    /// count as evictions. The index absorbs the removal incrementally
    /// where its structure allows, else it rebuilds once.
    pub fn remove_entry(&mut self, table: &str, entry: &TableEntry) -> Result<bool, IrError> {
        let &id = self.ids.get(table).ok_or(IrError::Undefined {
            kind: "table",
            name: table.to_string(),
        })?;
        let slot = &mut self.slots[id];
        let Some(pos) = slot.entries.iter().position(|e| e == entry) else {
            return Ok(false);
        };
        slot.remove_at(pos);
        Ok(true)
    }

    /// Sets the index-selection policy of a table and reindexes under it.
    /// `Force(Exact)` requires an all-exact table and `Force(Lpm)` a
    /// single-LPM-key table; scan, tuple-space and decision-tree are
    /// admissible for every shape.
    pub fn set_index_policy(&mut self, table: &str, policy: IndexPolicy) -> Result<(), IrError> {
        let &id = self.ids.get(table).ok_or(IrError::Undefined {
            kind: "table",
            name: table.to_string(),
        })?;
        let slot = &mut self.slots[id];
        if let IndexPolicy::Force(kind) = policy {
            let admissible = match kind {
                IndexKind::Exact => slot.shape == TableShape::AllExact,
                IndexKind::Lpm => slot.shape == TableShape::SingleLpm,
                IndexKind::Scan | IndexKind::TupleSpace | IndexKind::DecisionTree => true,
            };
            if !admissible {
                return Err(IrError::Invalid(format!(
                    "table {table}: index kind {} not admissible for this key shape",
                    kind.name()
                )));
            }
        }
        slot.policy = policy;
        slot.reindex_auto();
        Ok(())
    }

    /// The index kind a table is currently served by.
    pub fn index_kind(&self, table: &str) -> Option<IndexKind> {
        self.slot(table).map(|s| s.index.kind())
    }

    /// Structural statistics of a table's index.
    pub fn index_stats(&self, table: &str) -> Option<IndexStats> {
        self.slot(table).map(|s| s.index.stats())
    }

    /// Per-table index telemetry (kind, probes, rebuilds, histograms) in
    /// registration (program) order — the telemetry scrape path.
    pub fn index_telemetry(&self) -> Vec<(String, IndexTelemetry)> {
        let mut named: Vec<(&String, usize)> = self.ids.iter().map(|(n, &i)| (n, i)).collect();
        named.sort_by_key(|&(_, i)| i);
        named
            .into_iter()
            .map(|(name, i)| {
                let s = &self.slots[i];
                (
                    name.clone(),
                    IndexTelemetry {
                        kind: s.index.kind(),
                        probes: s.probe_log.probes(),
                        rebuilds: s.rebuilds,
                        probe_hist: s.probe_log.probe_hist(),
                        depth_hist: s.probe_log.depth_hist(),
                    },
                )
            })
            .collect()
    }

    /// Registered table names in registration (program) order.
    pub fn table_names(&self) -> Vec<String> {
        let mut named: Vec<(&String, usize)> = self.ids.iter().map(|(n, &i)| (n, i)).collect();
        named.sort_by_key(|&(_, i)| i);
        named.into_iter().map(|(n, _)| n.clone()).collect()
    }

    /// Touched register arrays and their cell contents (the state-snapshot
    /// capture path; untouched arrays are implicitly zero).
    pub fn register_arrays(&self) -> &BTreeMap<String, Vec<u128>> {
        &self.registers
    }

    /// Restores a register array from snapshot cells: sized to the (new)
    /// definition, each cell truncated to the cell width. Extra snapshot
    /// cells are dropped; missing ones stay zero.
    pub fn restore_register(&mut self, def: &dejavu_p4ir::table::RegisterDef, cells: &[u128]) {
        let mask = dejavu_p4ir::mask_for(def.width_bits);
        let mut arr = vec![0u128; def.size as usize];
        for (dst, &src) in arr.iter_mut().zip(cells) {
            *dst = src & mask;
        }
        self.registers.insert(def.name.clone(), arr);
    }

    /// Queues a digest record (called by both engines' `digest` primitive).
    pub fn emit_digest(&mut self, name: &str, values: Vec<Value>) {
        self.pending_digests.push(DigestRecord {
            name: name.to_string(),
            values,
        });
    }

    /// Drains the digests emitted since the last take (the switch moves
    /// them into its bounded per-pipeline queue after every pass).
    pub fn take_digests(&mut self) -> Vec<DigestRecord> {
        std::mem::take(&mut self.pending_digests)
    }

    /// Removes all entries of a table (counters survive).
    pub fn clear(&mut self, table: &str) {
        if let Some(&id) = self.ids.get(table) {
            self.slots[id].clear_entries();
        }
    }

    /// Number of installed entries in a table.
    pub fn len(&self, table: &str) -> usize {
        self.slot(table).map_or(0, |s| s.entries.len())
    }

    /// True when the named table has no entries.
    pub fn is_empty(&self, table: &str) -> bool {
        self.len(table) == 0
    }

    /// Looks up the key values against a table, returning the winning entry.
    /// `None` means a miss (run the default action). Updates counters.
    pub fn lookup(&self, def: &TableDef, keys: &[Value]) -> Option<TableEntry> {
        self.lookup_ref(def, keys).cloned()
    }

    /// Counting lookup returning a borrowed entry — the compiled fast path's
    /// entry point (no per-hit clone).
    pub fn lookup_ref(&self, def: &TableDef, keys: &[Value]) -> Option<&TableEntry> {
        let slot = self.slot(&def.name)?;
        let found = slot.find(keys);
        slot.count(found.is_some());
        if let Some(i) = found {
            slot.touch(i, self.clock);
        }
        found.map(|i| &slot.entries[i])
    }

    /// Indexed lookup by the dense id [`TableState::preregister`] returned.
    /// Counts like [`TableState::lookup_ref`].
    pub fn lookup_id(&self, id: usize, keys: &[Value]) -> Option<&TableEntry> {
        let slot = self.slots.get(id)?;
        let found = slot.find(keys);
        slot.count(found.is_some());
        if let Some(i) = found {
            slot.touch(i, self.clock);
        }
        found.map(|i| &slot.entries[i])
    }

    /// Indexed lookup returning the winning entry's action ordinal (its
    /// position in the table definition's action list, resolved at install
    /// time) alongside the entry. Counts like [`TableState::lookup_id`].
    /// The zero-clone hot path: the compiled engine maps the ordinal
    /// through a prelowered per-table action table instead of hashing the
    /// action name.
    pub fn lookup_id_ord(&self, id: usize, keys: &[Value]) -> Option<(usize, &TableEntry)> {
        let slot = self.slots.get(id)?;
        let found = slot.find(keys);
        slot.count(found.is_some());
        if let Some(i) = found {
            slot.touch(i, self.clock);
        }
        found.map(|i| (slot.action_ords[i], &slot.entries[i]))
    }

    /// Counting lookup by table definition returning the action ordinal and
    /// a borrowed entry — the reference interpreter's zero-clone path.
    pub fn lookup_ref_ord(&self, def: &TableDef, keys: &[Value]) -> Option<(usize, &TableEntry)> {
        let slot = self.slot(&def.name)?;
        let found = slot.find(keys);
        slot.count(found.is_some());
        if let Some(i) = found {
            slot.touch(i, self.clock);
        }
        found.map(|i| (slot.action_ords[i], &slot.entries[i]))
    }

    /// Lookup without counter updates (same index-backed path).
    pub fn lookup_readonly(&self, def: &TableDef, keys: &[Value]) -> Option<TableEntry> {
        let slot = self.slot(&def.name)?;
        slot.find(keys).map(|i| slot.entries[i].clone())
    }

    /// The original linear-scan lookup over install order — kept verbatim as
    /// the reference oracle for differential testing of the indexes (and as
    /// the pre-index cost model for benchmarks). Updates counters.
    pub fn lookup_scan(&self, def: &TableDef, keys: &[Value]) -> Option<TableEntry> {
        let slot = self.slot(&def.name)?;
        let mut best: Option<(usize, (i32, u32))> = None;
        for (i, e) in slot.entries.iter().enumerate() {
            if e.matches.iter().zip(keys).all(|(m, v)| m.matches(*v)) {
                let rank = rank_of(e);
                if best.is_none_or(|(_, r)| rank > r) {
                    best = Some((i, rank));
                }
            }
        }
        slot.count(best.is_some());
        if let Some((i, _)) = best {
            slot.touch(i, self.clock);
        }
        best.map(|(i, _)| slot.entries[i].clone())
    }

    /// Counters of every registered table, in registration (program)
    /// order — the telemetry scrape path.
    pub fn all_counters(&self) -> Vec<(String, TableCounters)> {
        let mut named: Vec<(&String, usize)> = self.ids.iter().map(|(n, &i)| (n, i)).collect();
        named.sort_by_key(|&(_, i)| i);
        named
            .into_iter()
            .map(|(name, i)| {
                let s = &self.slots[i];
                (
                    name.clone(),
                    TableCounters {
                        hits: s.hits.get(),
                        misses: s.misses.get(),
                    },
                )
            })
            .collect()
    }

    /// Counters of a table (zero if never looked up).
    pub fn counters(&self, table: &str) -> TableCounters {
        self.slot(table)
            .map_or_else(TableCounters::default, |s| TableCounters {
                hits: s.hits.get(),
                misses: s.misses.get(),
            })
    }

    /// Total installed entries across all tables.
    pub fn total_entries(&self) -> usize {
        self.slots.iter().map(|s| s.entries.len()).sum()
    }

    /// Reads a register cell (index wrapped modulo the array size, as the
    /// stateful ALU does). Lazily zero-initializes the array.
    pub fn register_read(&mut self, def: &dejavu_p4ir::table::RegisterDef, index: u32) -> u128 {
        let arr = self
            .registers
            .entry(def.name.clone())
            .or_insert_with(|| vec![0u128; def.size as usize]);
        arr[(index % def.size) as usize]
    }

    /// Writes a register cell (value truncated to the cell width, index
    /// wrapped).
    pub fn register_write(
        &mut self,
        def: &dejavu_p4ir::table::RegisterDef,
        index: u32,
        value: u128,
    ) {
        let arr = self
            .registers
            .entry(def.name.clone())
            .or_insert_with(|| vec![0u128; def.size as usize]);
        arr[(index % def.size) as usize] = value & dejavu_p4ir::mask_for(def.width_bits);
    }

    /// Control-plane view of a register cell without initializing it
    /// (`None` when never touched).
    pub fn register_peek(&self, name: &str, index: u32) -> Option<u128> {
        self.registers
            .get(name)
            .and_then(|a| a.get(index as usize))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::fref;
    use dejavu_p4ir::table::TableKey;

    fn lpm_table() -> TableDef {
        TableDef {
            name: "routes".into(),
            keys: vec![TableKey {
                field: fref("ipv4", "dst_addr"),
                kind: MatchKind::Lpm,
            }],
            actions: vec!["fwd".into(), "drop".into()],
            default_action: "drop".into(),
            default_action_args: vec![],
            size: 4,
        }
    }

    fn lpm_entry(prefix: u128, len: u16, port: u128) -> TableEntry {
        TableEntry {
            matches: vec![KeyMatch::Lpm(Value::new(prefix, 32), len)],
            action: "fwd".into(),
            action_args: vec![Value::new(port, 16)],
            priority: 0,
        }
    }

    #[test]
    fn longest_prefix_wins() {
        let def = lpm_table();
        let mut st = TableState::new();
        st.install(&def, lpm_entry(0x0a000000, 8, 1)).unwrap();
        st.install(&def, lpm_entry(0x0a010000, 16, 2)).unwrap();
        let hit = st.lookup(&def, &[Value::new(0x0a010203, 32)]).unwrap();
        assert_eq!(hit.action_args[0].raw(), 2);
        let hit = st.lookup(&def, &[Value::new(0x0a990203, 32)]).unwrap();
        assert_eq!(hit.action_args[0].raw(), 1);
        assert!(st.lookup(&def, &[Value::new(0x0b000001, 32)]).is_none());
        assert_eq!(st.counters("routes"), TableCounters { hits: 2, misses: 1 });
    }

    #[test]
    fn ternary_priority_wins() {
        let def = TableDef {
            name: "acl".into(),
            keys: vec![TableKey {
                field: fref("ipv4", "src_addr"),
                kind: MatchKind::Ternary,
            }],
            actions: vec!["permit".into(), "deny".into()],
            default_action: "permit".into(),
            default_action_args: vec![],
            size: 8,
        };
        let mut st = TableState::new();
        st.install(
            &def,
            TableEntry {
                matches: vec![KeyMatch::Ternary(Value::new(0, 32), Value::new(0, 32))], // any
                action: "permit".into(),
                action_args: vec![],
                priority: 1,
            },
        )
        .unwrap();
        st.install(
            &def,
            TableEntry {
                matches: vec![KeyMatch::Ternary(
                    Value::new(0x0a000000, 32),
                    Value::new(0xff000000, 32),
                )],
                action: "deny".into(),
                action_args: vec![],
                priority: 10,
            },
        )
        .unwrap();
        let hit = st.lookup(&def, &[Value::new(0x0a123456, 32)]).unwrap();
        assert_eq!(hit.action, "deny");
        let hit = st.lookup(&def, &[Value::new(0x0b123456, 32)]).unwrap();
        assert_eq!(hit.action, "permit");
    }

    #[test]
    fn install_validates_arity_kind_action_capacity() {
        let def = lpm_table();
        let mut st = TableState::new();
        // wrong arity
        assert!(st
            .install(
                &def,
                TableEntry {
                    matches: vec![],
                    action: "fwd".into(),
                    action_args: vec![],
                    priority: 0
                }
            )
            .is_err());
        // wrong kind
        assert!(st
            .install(
                &def,
                TableEntry {
                    matches: vec![KeyMatch::Exact(Value::new(1, 32))],
                    action: "fwd".into(),
                    action_args: vec![],
                    priority: 0
                }
            )
            .is_err());
        // unknown action
        assert!(st
            .install(
                &def,
                TableEntry {
                    matches: vec![KeyMatch::Lpm(Value::new(0, 32), 0)],
                    action: "ghost".into(),
                    action_args: vec![],
                    priority: 0
                }
            )
            .is_err());
        // capacity
        for i in 0..4u128 {
            st.install(&def, lpm_entry(i << 24, 8, 1)).unwrap();
        }
        assert!(st.install(&def, lpm_entry(0xff000000, 8, 1)).is_err());
        assert_eq!(st.total_entries(), 4);
    }

    #[test]
    fn clear_and_len() {
        let def = lpm_table();
        let mut st = TableState::new();
        st.install(&def, lpm_entry(0, 0, 9)).unwrap();
        assert_eq!(st.len("routes"), 1);
        assert!(!st.is_empty("routes"));
        st.clear("routes");
        assert!(st.is_empty("routes"));
    }

    #[test]
    fn wildcard_any_match_allowed_on_any_kind() {
        let def = lpm_table();
        let mut st = TableState::new();
        st.install(
            &def,
            TableEntry {
                matches: vec![KeyMatch::Any],
                action: "fwd".into(),
                action_args: vec![Value::new(3, 16)],
                priority: -1,
            },
        )
        .unwrap();
        let hit = st.lookup(&def, &[Value::new(0xdeadbeef, 32)]).unwrap();
        assert_eq!(hit.action_args[0].raw(), 3);
    }

    fn exact_table(size: u32) -> TableDef {
        TableDef {
            name: "fib".into(),
            keys: vec![TableKey {
                field: fref("ipv4", "dst_addr"),
                kind: MatchKind::Exact,
            }],
            actions: vec!["fwd".into()],
            default_action: "fwd".into(),
            default_action_args: vec![Value::new(0, 16)],
            size,
        }
    }

    #[test]
    fn exact_index_agrees_with_scan_including_wildcards() {
        let def = exact_table(64);
        let mut st = TableState::new();
        for i in 0..16u128 {
            st.install(
                &def,
                TableEntry {
                    matches: vec![KeyMatch::Exact(Value::new(i, 32))],
                    action: "fwd".into(),
                    action_args: vec![Value::new(i, 16)],
                    priority: (i % 3) as i32,
                },
            )
            .unwrap();
        }
        // A wildcard spill entry outranking low-priority exact entries.
        st.install(
            &def,
            TableEntry {
                matches: vec![KeyMatch::Any],
                action: "fwd".into(),
                action_args: vec![Value::new(999, 16)],
                priority: 1,
            },
        )
        .unwrap();
        for i in 0..20u128 {
            let keys = [Value::new(i, 32)];
            assert_eq!(
                st.lookup_readonly(&def, &keys),
                st.lookup_scan(&def, &keys),
                "key {i}"
            );
        }
    }

    #[test]
    fn lpm_index_handles_mixed_priorities_via_fallback() {
        let def = lpm_table();
        let mut st = TableState::new();
        st.install(&def, lpm_entry(0x0a000000, 8, 1)).unwrap();
        // A /16 with *lower* priority: the /8 must still win on priority.
        st.install(
            &def,
            TableEntry {
                matches: vec![KeyMatch::Lpm(Value::new(0x0a010000, 32), 16)],
                action: "fwd".into(),
                action_args: vec![Value::new(2, 16)],
                priority: -5,
            },
        )
        .unwrap();
        let keys = [Value::new(0x0a010203, 32)];
        let hit = st.lookup_readonly(&def, &keys).unwrap();
        assert_eq!(hit.action_args[0].raw(), 1);
        assert_eq!(st.lookup_scan(&def, &keys).unwrap(), hit);
    }

    #[test]
    fn lookup_id_matches_name_lookup_and_counts() {
        let def = exact_table(8);
        let mut st = TableState::new();
        let id = st.preregister(&def);
        st.install(
            &def,
            TableEntry {
                matches: vec![KeyMatch::Exact(Value::new(7, 32))],
                action: "fwd".into(),
                action_args: vec![],
                priority: 0,
            },
        )
        .unwrap();
        assert!(st.lookup_id(id, &[Value::new(7, 32)]).is_some());
        assert!(st.lookup_id(id, &[Value::new(8, 32)]).is_none());
        assert_eq!(st.counters("fib"), TableCounters { hits: 1, misses: 1 });
    }

    #[test]
    fn counters_survive_clear() {
        let def = exact_table(8);
        let mut st = TableState::new();
        st.preregister(&def);
        assert!(st.lookup(&def, &[Value::new(1, 32)]).is_none());
        st.clear("fib");
        assert_eq!(st.counters("fib").misses, 1);
    }
}
