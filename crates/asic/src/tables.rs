//! Runtime table state — the entries the control plane installs.
//!
//! The P4 program fixes each table's *shape* (`dejavu_p4ir::TableDef`); the
//! control plane populates it at run time (the paper's §3.1: "the control
//! plane will simply install a new session in the lb_session upon packet
//! reception"). [`TableState`] owns the entries of every table of one
//! pipelet program and implements hardware match semantics:
//!
//! * exact tables: at most one matching entry,
//! * LPM keys: the longest matching prefix wins,
//! * ternary/range keys: the highest-priority matching entry wins.

use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::{IrError, MatchKind, TableDef, Value};
use std::collections::BTreeMap;

/// Runtime state of one pipelet: table entries, hit counters, and stateful
/// register arrays.
#[derive(Debug, Clone, Default)]
pub struct TableState {
    entries: BTreeMap<String, Vec<TableEntry>>,
    /// Hit/miss counters per table (diagnostics and tests).
    counters: BTreeMap<String, TableCounters>,
    /// Register arrays, lazily zero-initialized on first access.
    registers: BTreeMap<String, Vec<u128>>,
}

/// Hit/miss counters of one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCounters {
    /// Lookups that matched an installed entry.
    pub hits: u64,
    /// Lookups that fell through to the default action.
    pub misses: u64,
}

impl TableState {
    /// Empty state.
    pub fn new() -> Self {
        TableState::default()
    }

    /// Installs an entry after validating it against the table definition:
    /// the per-key match specs must agree in arity and kind with the table's
    /// keys, and the declared capacity must not be exceeded.
    pub fn install(&mut self, def: &TableDef, entry: TableEntry) -> Result<(), IrError> {
        if entry.matches.len() != def.keys.len() {
            return Err(IrError::Invalid(format!(
                "table {}: entry has {} key matches, table has {} keys",
                def.name,
                entry.matches.len(),
                def.keys.len()
            )));
        }
        for (km, key) in entry.matches.iter().zip(&def.keys) {
            let ok = matches!(
                (km, key.kind),
                (KeyMatch::Exact(_), MatchKind::Exact)
                    | (KeyMatch::Ternary(..), MatchKind::Ternary)
                    | (KeyMatch::Lpm(..), MatchKind::Lpm)
                    | (KeyMatch::Range(..), MatchKind::Range)
                    | (KeyMatch::Any, _)
            );
            if !ok {
                return Err(IrError::Invalid(format!(
                    "table {}: match kind mismatch on key {}",
                    def.name, key.field
                )));
            }
        }
        if !def.actions.contains(&entry.action) {
            return Err(IrError::Undefined {
                kind: "entry action",
                name: entry.action.clone(),
            });
        }
        let slot = self.entries.entry(def.name.clone()).or_default();
        if slot.len() as u32 >= def.size {
            return Err(IrError::Invalid(format!(
                "table {} full ({} entries)",
                def.name, def.size
            )));
        }
        slot.push(entry);
        Ok(())
    }

    /// Removes all entries of a table.
    pub fn clear(&mut self, table: &str) {
        self.entries.remove(table);
    }

    /// Number of installed entries in a table.
    pub fn len(&self, table: &str) -> usize {
        self.entries.get(table).map_or(0, Vec::len)
    }

    /// True when the named table has no entries.
    pub fn is_empty(&self, table: &str) -> bool {
        self.len(table) == 0
    }

    /// Looks up the key values against a table, returning the winning entry.
    /// `None` means a miss (run the default action). Updates counters.
    pub fn lookup(&mut self, def: &TableDef, keys: &[Value]) -> Option<TableEntry> {
        let result = self.lookup_readonly(def, keys);
        let c = self.counters.entry(def.name.clone()).or_default();
        if result.is_some() {
            c.hits += 1;
        } else {
            c.misses += 1;
        }
        result
    }

    /// Lookup without counter updates.
    pub fn lookup_readonly(&self, def: &TableDef, keys: &[Value]) -> Option<TableEntry> {
        let entries = self.entries.get(&def.name)?;
        let mut best: Option<(&TableEntry, (i32, u32))> = None;
        for e in entries {
            if e.matches.iter().zip(keys).all(|(m, v)| m.matches(*v)) {
                // Rank: priority first, then total LPM prefix length (longest
                // prefix wins among equal priorities).
                let lpm_total: u32 = e
                    .matches
                    .iter()
                    .filter_map(|m| m.lpm_len().map(u32::from))
                    .sum();
                let rank = (e.priority, lpm_total);
                if best.as_ref().is_none_or(|(_, r)| rank > *r) {
                    best = Some((e, rank));
                }
            }
        }
        best.map(|(e, _)| e.clone())
    }

    /// Counters of a table (zero if never looked up).
    pub fn counters(&self, table: &str) -> TableCounters {
        self.counters.get(table).copied().unwrap_or_default()
    }

    /// Total installed entries across all tables.
    pub fn total_entries(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Reads a register cell (index wrapped modulo the array size, as the
    /// stateful ALU does). Lazily zero-initializes the array.
    pub fn register_read(&mut self, def: &dejavu_p4ir::table::RegisterDef, index: u32) -> u128 {
        let arr = self
            .registers
            .entry(def.name.clone())
            .or_insert_with(|| vec![0u128; def.size as usize]);
        arr[(index % def.size) as usize]
    }

    /// Writes a register cell (value truncated to the cell width, index
    /// wrapped).
    pub fn register_write(
        &mut self,
        def: &dejavu_p4ir::table::RegisterDef,
        index: u32,
        value: u128,
    ) {
        let arr = self
            .registers
            .entry(def.name.clone())
            .or_insert_with(|| vec![0u128; def.size as usize]);
        arr[(index % def.size) as usize] = value & dejavu_p4ir::mask_for(def.width_bits);
    }

    /// Control-plane view of a register cell without initializing it
    /// (`None` when never touched).
    pub fn register_peek(&self, name: &str, index: u32) -> Option<u128> {
        self.registers
            .get(name)
            .and_then(|a| a.get(index as usize))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::fref;
    use dejavu_p4ir::table::TableKey;

    fn lpm_table() -> TableDef {
        TableDef {
            name: "routes".into(),
            keys: vec![TableKey {
                field: fref("ipv4", "dst_addr"),
                kind: MatchKind::Lpm,
            }],
            actions: vec!["fwd".into(), "drop".into()],
            default_action: "drop".into(),
            default_action_args: vec![],
            size: 4,
        }
    }

    fn lpm_entry(prefix: u128, len: u16, port: u128) -> TableEntry {
        TableEntry {
            matches: vec![KeyMatch::Lpm(Value::new(prefix, 32), len)],
            action: "fwd".into(),
            action_args: vec![Value::new(port, 16)],
            priority: 0,
        }
    }

    #[test]
    fn longest_prefix_wins() {
        let def = lpm_table();
        let mut st = TableState::new();
        st.install(&def, lpm_entry(0x0a000000, 8, 1)).unwrap();
        st.install(&def, lpm_entry(0x0a010000, 16, 2)).unwrap();
        let hit = st.lookup(&def, &[Value::new(0x0a010203, 32)]).unwrap();
        assert_eq!(hit.action_args[0].raw(), 2);
        let hit = st.lookup(&def, &[Value::new(0x0a990203, 32)]).unwrap();
        assert_eq!(hit.action_args[0].raw(), 1);
        assert!(st.lookup(&def, &[Value::new(0x0b000001, 32)]).is_none());
        assert_eq!(st.counters("routes"), TableCounters { hits: 2, misses: 1 });
    }

    #[test]
    fn ternary_priority_wins() {
        let def = TableDef {
            name: "acl".into(),
            keys: vec![TableKey {
                field: fref("ipv4", "src_addr"),
                kind: MatchKind::Ternary,
            }],
            actions: vec!["permit".into(), "deny".into()],
            default_action: "permit".into(),
            default_action_args: vec![],
            size: 8,
        };
        let mut st = TableState::new();
        st.install(
            &def,
            TableEntry {
                matches: vec![KeyMatch::Ternary(Value::new(0, 32), Value::new(0, 32))], // any
                action: "permit".into(),
                action_args: vec![],
                priority: 1,
            },
        )
        .unwrap();
        st.install(
            &def,
            TableEntry {
                matches: vec![KeyMatch::Ternary(
                    Value::new(0x0a000000, 32),
                    Value::new(0xff000000, 32),
                )],
                action: "deny".into(),
                action_args: vec![],
                priority: 10,
            },
        )
        .unwrap();
        let hit = st.lookup(&def, &[Value::new(0x0a123456, 32)]).unwrap();
        assert_eq!(hit.action, "deny");
        let hit = st.lookup(&def, &[Value::new(0x0b123456, 32)]).unwrap();
        assert_eq!(hit.action, "permit");
    }

    #[test]
    fn install_validates_arity_kind_action_capacity() {
        let def = lpm_table();
        let mut st = TableState::new();
        // wrong arity
        assert!(st
            .install(
                &def,
                TableEntry {
                    matches: vec![],
                    action: "fwd".into(),
                    action_args: vec![],
                    priority: 0
                }
            )
            .is_err());
        // wrong kind
        assert!(st
            .install(
                &def,
                TableEntry {
                    matches: vec![KeyMatch::Exact(Value::new(1, 32))],
                    action: "fwd".into(),
                    action_args: vec![],
                    priority: 0
                }
            )
            .is_err());
        // unknown action
        assert!(st
            .install(
                &def,
                TableEntry {
                    matches: vec![KeyMatch::Lpm(Value::new(0, 32), 0)],
                    action: "ghost".into(),
                    action_args: vec![],
                    priority: 0
                }
            )
            .is_err());
        // capacity
        for i in 0..4u128 {
            st.install(&def, lpm_entry(i << 24, 8, 1)).unwrap();
        }
        assert!(st.install(&def, lpm_entry(0xff000000, 8, 1)).is_err());
        assert_eq!(st.total_entries(), 4);
    }

    #[test]
    fn clear_and_len() {
        let def = lpm_table();
        let mut st = TableState::new();
        st.install(&def, lpm_entry(0, 0, 9)).unwrap();
        assert_eq!(st.len("routes"), 1);
        assert!(!st.is_empty("routes"));
        st.clear("routes");
        assert!(st.is_empty("routes"));
    }

    #[test]
    fn wildcard_any_match_allowed_on_any_kind() {
        let def = lpm_table();
        let mut st = TableState::new();
        st.install(
            &def,
            TableEntry {
                matches: vec![KeyMatch::Any],
                action: "fwd".into(),
                action_args: vec![Value::new(3, 16)],
                priority: -1,
            },
        )
        .unwrap();
        let hit = st.lookup(&def, &[Value::new(0xdeadbeef, 32)]).unwrap();
        assert_eq!(hit.action_args[0].raw(), 3);
    }
}
