//! Run-to-completion execution: per-core workers over pooled buffers.
//!
//! The third layer of the zero-allocation engine (pool → scratch → cores).
//! An [`RtcExecutor`] drives a workload the way a DPDK-style run-to-completion
//! dataplane does:
//!
//! * **one worker per core**, each owning a full [`Switch`] clone (programs,
//!   table state, telemetry shard) and processing packets start-to-finish on
//!   its own thread — no cross-core handoff mid-packet;
//! * **SPSC ingress rings** (bounded channels) feed the workers; the
//!   dispatcher steers each packet by [`flow_hash`] so every packet of a
//!   flow lands on the same core and per-flow order is preserved — the
//!   shard-steering invariant;
//! * **core-aware scheduling**: when the configuration asks for more
//!   workers than the host has cores, thread handoff would degrade into
//!   context-switch churn (every ring hop is a forced switch on a shared
//!   core), so the executor runs the *same* shards — per-worker switch
//!   clone, pool, bounded ring, steering function — cooperatively on the
//!   dispatching core instead. Shard assignment, per-flow order, packet
//!   counts, dispositions, and telemetry are identical in both modes;
//!   only the interleaving across shards differs (as it would between any
//!   two multicore schedules);
//! * **pooled buffers**: each worker has a private [`PacketPool`]; wire
//!   bytes are copied into a [`PacketHandle`] exactly once at dispatch and
//!   the same buffer carries the packet through parse, rewrite, deparse,
//!   recirculation and emit via [`Switch::inject_buf`]. Pool exhaustion is a
//!   policy decision ([`ExhaustionPolicy`]) — backpressure or a counted
//!   drop, never a panic and never a fallback allocation.
//!
//! Telemetry deltas are merged exactly like the sharded replay path
//! (before/after snapshot diff per worker), then the executor injects its
//! own series: `rtc_worker_packets{core}`, `pool_in_use` (peak),
//! `pool_exhausted`, and `rtc_ring_depth{core,bucket}` (log2 occupancy
//! histogram sampled at each ring pop).

use crate::packet::flow_hash;
use crate::pool::{PacketHandle, PacketPool};
use crate::switch::{Disposition, InjectedPacket, PortId, Switch};
use crate::telemetry::MetricsSnapshot;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

/// Number of log2 buckets in the ring-depth histogram (depth 0, 1, 2–3,
/// 4–7, … — depths ≥ 2^14 saturate into the last bucket).
const DEPTH_BUCKETS: usize = 16;

/// What the dispatcher does when a worker's packet pool has no free buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustionPolicy {
    /// Spin (yielding) until a buffer is returned — no packet loss, the
    /// ingress stalls like a NIC asserting flow control.
    Backpressure,
    /// Drop the packet at ingress and move on; every drop is counted in
    /// [`RtcReport::pool_dropped`] (and `pool_exhausted` telemetry).
    Drop,
}

/// Configuration for an [`RtcExecutor`] run.
#[derive(Debug, Clone)]
pub struct RtcConfig {
    /// Worker threads (cores). Clamped to at least 1.
    pub workers: usize,
    /// Capacity of each worker's ingress ring.
    pub ring_depth: usize,
    /// Buffers in each worker's private packet pool.
    pub pool_packets: usize,
    /// Byte capacity each pooled buffer is pre-allocated to.
    pub buf_capacity: usize,
    /// Policy when a pool has no free buffer at dispatch time.
    pub exhaustion: ExhaustionPolicy,
}

impl Default for RtcConfig {
    fn default() -> Self {
        RtcConfig {
            workers: 4,
            ring_depth: 256,
            pool_packets: 512,
            buf_capacity: 2048,
            exhaustion: ExhaustionPolicy::Backpressure,
        }
    }
}

/// Result of a run-to-completion execution.
#[derive(Debug, Clone)]
pub struct RtcReport {
    /// Worker threads used.
    pub workers: usize,
    /// Packets handed to workers (excludes pool-policy drops at dispatch).
    pub injected: u64,
    /// Packets emitted on an egress port.
    pub emitted: u64,
    /// Packets dropped inside the pipeline.
    pub dropped: u64,
    /// Packets punted to the CPU port.
    pub to_cpu: u64,
    /// Traversals that returned an error (bad port, forwarding loop, …).
    pub errors: u64,
    /// Packets dropped at dispatch under [`ExhaustionPolicy::Drop`].
    pub pool_dropped: u64,
    /// Failed pool acquisitions across all workers (every backpressure spin
    /// retry after the first failure also counts one).
    pub pool_exhausted: u64,
    /// Peak buffers simultaneously in flight across all pools.
    pub pool_in_use_peak: usize,
    /// Packets processed per worker, indexed by core.
    pub worker_packets: Vec<u64>,
    /// Merged telemetry delta (empty when the switch's telemetry is off),
    /// including the executor's own `rtc_*` / `pool_*` series.
    pub metrics: MetricsSnapshot,
    /// Wall-clock time for the whole run, in seconds.
    pub elapsed_s: f64,
    /// Injected packets divided by wall-clock time.
    pub packets_per_sec: f64,
}

/// What one worker sends back when its ring closes.
struct WorkerResult {
    core: usize,
    packets: u64,
    emitted: u64,
    dropped: u64,
    to_cpu: u64,
    errors: u64,
    depth_hist: [u64; DEPTH_BUCKETS],
    metrics: MetricsSnapshot,
}

impl WorkerResult {
    fn new(core: usize) -> Self {
        WorkerResult {
            core,
            packets: 0,
            emitted: 0,
            dropped: 0,
            to_cpu: 0,
            errors: 0,
            depth_hist: [0; DEPTH_BUCKETS],
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Runs one packet to completion on `sw` and folds the outcome in.
    fn run_one(&mut self, sw: &mut Switch, handle: &mut PacketHandle, port: PortId) {
        self.packets += 1;
        match sw.inject_buf(handle, port) {
            Ok(out) => match out.disposition {
                Disposition::Emitted { .. } => self.emitted += 1,
                Disposition::Dropped => self.dropped += 1,
                Disposition::ToCpu => self.to_cpu += 1,
            },
            Err(_) => self.errors += 1,
        }
    }
}

fn depth_bucket(depth: usize) -> usize {
    if depth == 0 {
        0
    } else {
        (usize::BITS - depth.leading_zeros()) as usize
    }
    .min(DEPTH_BUCKETS - 1)
}

/// What the dispatcher sends a resident worker thread.
enum Cmd {
    /// One packet: a filled pool buffer and its ingress port.
    Pkt(PacketHandle, PortId),
    /// Report the delta since the last collect (a barrier: the ring is
    /// FIFO, so every packet sent before this has been processed).
    Collect,
}

/// A resident worker's loop: process packets until the ring closes,
/// shipping a stats-and-telemetry delta back at every collect point.
/// Dropping a handle at the end of its iteration returns the buffer to
/// the pool the dispatcher acquires from.
fn session_worker(
    core: usize,
    mut sw: Switch,
    rx: mpsc::Receiver<Cmd>,
    depth: Arc<AtomicUsize>,
    out: mpsc::Sender<WorkerResult>,
) {
    let mut before = sw.metrics_snapshot();
    let mut r = WorkerResult::new(core);
    for cmd in rx {
        match cmd {
            Cmd::Pkt(mut handle, port) => {
                let d = depth.fetch_sub(1, Ordering::Relaxed);
                r.depth_hist[depth_bucket(d.saturating_sub(1))] += 1;
                r.run_one(&mut sw, &mut handle, port);
            }
            Cmd::Collect => {
                let snap = sw.metrics_snapshot();
                r.metrics = snap.diff(&before);
                before = snap;
                if out
                    .send(std::mem::replace(&mut r, WorkerResult::new(core)))
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// One worker's state in the cooperative (inline) schedule: the same
/// switch clone + pool + bounded ring a threaded worker owns, driven on
/// the dispatcher's core.
struct Shard {
    sw: Switch,
    pool: PacketPool,
    ring: std::collections::VecDeque<(PacketHandle, PortId)>,
    res: WorkerResult,
    before: MetricsSnapshot,
    /// Pool-exhaustion count already reported by earlier collects.
    exh_base: u64,
}

impl Shard {
    /// Pops and runs the oldest queued packet, sampling ring depth exactly
    /// like the threaded worker does at each ring pop. Returns whether a
    /// packet was processed (the dispatcher tracks live buffers with it).
    fn process_one(&mut self) -> bool {
        if let Some((mut handle, port)) = self.ring.pop_front() {
            self.res.depth_hist[depth_bucket(self.ring.len())] += 1;
            self.res.run_one(&mut self.sw, &mut handle, port);
            true
        } else {
            false
        }
    }

    /// Takes the stats-and-telemetry delta since the previous collect —
    /// the inline analogue of [`Cmd::Collect`].
    fn collect(&mut self) -> WorkerResult {
        let core = self.res.core;
        let snap = self.sw.metrics_snapshot();
        let mut r = std::mem::replace(&mut self.res, WorkerResult::new(core));
        r.metrics = snap.diff(&self.before);
        self.before = snap;
        r
    }
}

/// Drives packets through per-core run-to-completion workers.
///
/// The executor is a policy bundle, not a long-lived object: [`run`] clones
/// the switch per worker, executes the workload, and returns a merged
/// [`RtcReport`]. The input switch is never mutated — exactly like the
/// sharded replay path.
///
/// [`run`]: RtcExecutor::run
#[derive(Debug, Clone, Default)]
pub struct RtcExecutor {
    cfg: RtcConfig,
}

impl RtcExecutor {
    /// An executor with the given configuration.
    pub fn new(cfg: RtcConfig) -> Self {
        RtcExecutor { cfg }
    }

    /// The configuration this executor runs with.
    pub fn config(&self) -> &RtcConfig {
        &self.cfg
    }

    /// Runs `packets` to completion across the configured workers and
    /// returns the merged report.
    ///
    /// This is the one-shot form: it boots a fresh [`RtcSession`] (worker
    /// clones, pools, rings), runs the workload, and tears everything down.
    /// Callers driving many workloads through warm workers — the benches,
    /// a long-lived dataplane — should hold an [`RtcSession`] instead.
    pub fn run(&self, switch: &Switch, packets: &[InjectedPacket]) -> RtcReport {
        RtcSession::new(switch, self.cfg.clone()).run(packets)
    }
}

/// How a session schedules its shards.
enum Mode {
    /// Cooperative: shards driven on the dispatching core (the host has
    /// fewer cores than requested workers — thread handoff would be
    /// context-switch churn, not parallelism).
    Inline(Vec<Shard>),
    /// One resident OS thread per shard, SPSC rings between.
    Threaded {
        links: Vec<Link>,
        joins: Vec<thread::JoinHandle<()>>,
    },
}

/// The dispatcher's handle on one resident worker thread.
struct Link {
    tx: mpsc::SyncSender<Cmd>,
    depth: Arc<AtomicUsize>,
    pool: PacketPool,
    res_rx: mpsc::Receiver<WorkerResult>,
    /// Pool-exhaustion count already reported by earlier collects.
    exh_base: u64,
}

/// A resident run-to-completion engine: per-core workers are booted once
/// from a switch — each with its own [`Switch`] clone, [`PacketPool`], and
/// ingress ring — and stay warm across [`RtcSession::run`] calls, the way
/// a real dataplane boots at startup and processes packets forever.
///
/// Each `run` dispatches one workload, barriers on completion, and returns
/// the [`RtcReport`] delta for exactly that workload (stats, telemetry,
/// pool exhaustion are all per-run deltas). Switch state — table counters,
/// flow entries, registers, aging clocks — carries across runs within each
/// shard, exactly as it would on hardware that keeps running.
///
/// The scheduling mode is chosen at boot: one OS thread per worker when
/// the host has the cores for it, otherwise the same shards are driven
/// cooperatively on the dispatching core (see the module docs). Shard
/// assignment, per-flow order, dispositions, and telemetry are identical
/// in both modes.
pub struct RtcSession {
    cfg: RtcConfig,
    workers: usize,
    telemetry: bool,
    mode: Mode,
}

impl RtcSession {
    /// Boots a session: `workers` switch clones with private pools and
    /// rings, resident until the session is dropped.
    pub fn new(switch: &Switch, cfg: RtcConfig) -> Self {
        let workers = cfg.workers.max(1);
        let ring_depth = cfg.ring_depth.max(1);
        let pool_packets = cfg.pool_packets.max(1);
        let telemetry = switch.telemetry_enabled();
        let cores = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mode = if workers > cores {
            Mode::Inline(
                (0..workers)
                    .map(|core| {
                        let sw = switch.clone();
                        let before = sw.metrics_snapshot();
                        Shard {
                            sw,
                            pool: PacketPool::new(pool_packets, cfg.buf_capacity),
                            ring: std::collections::VecDeque::with_capacity(ring_depth),
                            res: WorkerResult::new(core),
                            before,
                            exh_base: 0,
                        }
                    })
                    .collect(),
            )
        } else {
            let mut links = Vec::with_capacity(workers);
            let mut joins = Vec::with_capacity(workers);
            for core in 0..workers {
                let (tx, rx) = mpsc::sync_channel::<Cmd>(ring_depth);
                let (res_tx, res_rx) = mpsc::channel();
                let depth = Arc::new(AtomicUsize::new(0));
                let sw = switch.clone();
                let d = Arc::clone(&depth);
                joins.push(thread::spawn(move || {
                    session_worker(core, sw, rx, d, res_tx)
                }));
                links.push(Link {
                    tx,
                    depth,
                    pool: PacketPool::new(pool_packets, cfg.buf_capacity),
                    res_rx,
                    exh_base: 0,
                });
            }
            Mode::Threaded { links, joins }
        };
        RtcSession {
            cfg,
            workers,
            telemetry,
            mode,
        }
    }

    /// Worker count the session was booted with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Dispatches one workload through the resident workers and returns
    /// the report for exactly this workload.
    pub fn run(&mut self, packets: &[InjectedPacket]) -> RtcReport {
        let start = Instant::now();
        let workers = self.workers;
        let exhaustion = self.cfg.exhaustion;
        let mut injected = 0u64;
        let mut pool_dropped = 0u64;
        let mut pool_in_use_peak = 0usize;

        let (results, pool_exhausted) = match &mut self.mode {
            Mode::Inline(shards) => {
                // Live pooled buffers across all shards, maintained inline
                // instead of summing the pools' atomics per packet — every
                // acquire and every pop happens on this thread.
                let mut live = 0usize;
                for pkt in packets {
                    let core = (flow_hash(&pkt.bytes) % workers as u64) as usize;
                    let shard = &mut shards[core];
                    let handle = match exhaustion {
                        ExhaustionPolicy::Drop => shard.pool.acquire_copy(&pkt.bytes),
                        ExhaustionPolicy::Backpressure => loop {
                            match shard.pool.acquire_copy(&pkt.bytes) {
                                Some(h) => break Some(h),
                                // Backpressure on a shared core means
                                // letting the worker run: drain its ring
                                // until a buffer frees.
                                None if !shard.ring.is_empty() => {
                                    live -= usize::from(shard.process_one());
                                }
                                // Ring empty AND pool empty: the pool
                                // cannot hold even one in-flight packet;
                                // drop rather than spin forever.
                                None => break None,
                            }
                        },
                    };
                    let Some(handle) = handle else {
                        pool_dropped += 1;
                        continue;
                    };
                    live += 1;
                    pool_in_use_peak = pool_in_use_peak.max(live);
                    shard.ring.push_back((handle, pkt.port));
                    injected += 1;
                    // Work-conserving: one pop per push keeps the worker
                    // exactly in step with ingress, the single-core
                    // analogue of a worker thread draining as fast as the
                    // dispatcher fills.
                    live -= usize::from(shard.process_one());
                }
                for shard in shards.iter_mut() {
                    while !shard.ring.is_empty() {
                        shard.process_one();
                    }
                }
                let mut exhausted = 0u64;
                let mut results = Vec::with_capacity(shards.len());
                for s in shards.iter_mut() {
                    let total = s.pool.exhausted();
                    exhausted += total - s.exh_base;
                    s.exh_base = total;
                    results.push(s.collect());
                }
                (results, exhausted)
            }
            Mode::Threaded { links, .. } => {
                // Dispatch: steer by flow hash, acquire from the target
                // worker's pool (policy on exhaustion), push the filled
                // handle into the ring.
                for pkt in packets {
                    let core = (flow_hash(&pkt.bytes) % workers as u64) as usize;
                    let handle = match exhaustion {
                        ExhaustionPolicy::Drop => links[core].pool.acquire_copy(&pkt.bytes),
                        ExhaustionPolicy::Backpressure => loop {
                            match links[core].pool.acquire_copy(&pkt.bytes) {
                                Some(h) => break Some(h),
                                None => thread::yield_now(),
                            }
                        },
                    };
                    let Some(handle) = handle else {
                        pool_dropped += 1;
                        continue;
                    };
                    let in_use: usize = links.iter().map(|l| l.pool.in_use()).sum();
                    pool_in_use_peak = pool_in_use_peak.max(in_use);
                    links[core].depth.fetch_add(1, Ordering::Relaxed);
                    if links[core].tx.send(Cmd::Pkt(handle, pkt.port)).is_err() {
                        // A worker died (it can't: inject_buf never panics
                        // under forbid(unsafe_code) invariants) — count the
                        // packet as lost rather than panicking here.
                        links[core].depth.fetch_sub(1, Ordering::Relaxed);
                        pool_dropped += 1;
                        continue;
                    }
                    injected += 1;
                }
                // Collect barrier: rings are FIFO, so each worker answers
                // only after finishing everything dispatched above.
                for link in links.iter() {
                    let _ = link.tx.send(Cmd::Collect);
                }
                let mut exhausted = 0u64;
                let mut results = Vec::with_capacity(links.len());
                for l in links.iter_mut() {
                    if let Ok(r) = l.res_rx.recv() {
                        results.push(r);
                    }
                    let total = l.pool.exhausted();
                    exhausted += total - l.exh_base;
                    l.exh_base = total;
                }
                results.sort_by_key(|r| r.core);
                (results, exhausted)
            }
        };

        finalize(
            self.telemetry,
            workers,
            start,
            injected,
            pool_dropped,
            pool_in_use_peak,
            pool_exhausted,
            results,
        )
    }
}

impl Drop for RtcSession {
    /// Closes the rings and joins the resident workers.
    fn drop(&mut self) {
        if let Mode::Threaded { links, joins } = &mut self.mode {
            links.clear();
            for j in joins.drain(..) {
                let _ = j.join();
            }
        }
    }
}

/// Merges per-worker results into the report and injects the executor's
/// own telemetry series — identical for both scheduling modes.
#[allow(clippy::too_many_arguments)]
fn finalize(
    telemetry: bool,
    workers: usize,
    start: Instant,
    injected: u64,
    pool_dropped: u64,
    pool_in_use_peak: usize,
    pool_exhausted: u64,
    results: Vec<WorkerResult>,
) -> RtcReport {
    let mut metrics = MetricsSnapshot::default();
    let mut worker_packets = vec![0u64; workers];
    let (mut emitted, mut dropped, mut to_cpu, mut errors) = (0u64, 0u64, 0u64, 0u64);
    for r in &results {
        worker_packets[r.core] = r.packets;
        emitted += r.emitted;
        dropped += r.dropped;
        to_cpu += r.to_cpu;
        errors += r.errors;
        metrics.merge(&r.metrics);
    }

    // The executor's own series, injected with the same fold idiom the
    // switch uses for table counters. Skipped when telemetry is off so
    // "telemetry disabled ⇒ empty snapshot" still holds.
    if telemetry {
        for r in &results {
            metrics.set_counter(
                format!("rtc_worker_packets{{core=\"{}\"}}", r.core),
                r.packets,
            );
            for (b, &n) in r.depth_hist.iter().enumerate() {
                if n > 0 {
                    metrics.set_counter(
                        format!("rtc_ring_depth{{core=\"{}\",bucket=\"{b}\"}}", r.core),
                        n,
                    );
                }
            }
        }
        metrics.set_counter("pool_exhausted", pool_exhausted);
        metrics.set_gauge("pool_in_use", pool_in_use_peak as i64);
    }

    let elapsed_s = start.elapsed().as_secs_f64();
    RtcReport {
        workers,
        injected,
        emitted,
        dropped,
        to_cpu,
        errors,
        pool_dropped,
        pool_exhausted,
        pool_in_use_peak,
        worker_packets,
        metrics,
        elapsed_s,
        packets_per_sec: if elapsed_s > 0.0 {
            injected as f64 / elapsed_s
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::PipeletId;
    use crate::tofino::TofinoProfile;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::table::{KeyMatch, TableEntry};
    use dejavu_p4ir::well_known;
    use dejavu_p4ir::{fref, Expr, FieldRef, Value};

    fn l2_program() -> dejavu_p4ir::Program {
        ProgramBuilder::new("l2")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("fwd")
                    .param("port", 16)
                    .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                    .build(),
            )
            .action(ActionBuilder::new("deny").drop_packet().build())
            .table(
                TableBuilder::new("l2")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .action("fwd")
                    .default_action("deny")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("l2").build())
            .entry("ingress")
            .build()
            .unwrap()
    }

    fn eth_packet(dst: u64) -> Vec<u8> {
        let mut p = vec![0u8; 14];
        p[..6].copy_from_slice(&dst.to_be_bytes()[2..]);
        p
    }

    fn testbed() -> Switch {
        let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
        sw.load_program(PipeletId::ingress(0), l2_program())
            .unwrap();
        sw.install_entry(
            PipeletId::ingress(0),
            "l2",
            TableEntry {
                matches: vec![KeyMatch::Exact(Value::new(0xaabb, 48))],
                action: "fwd".into(),
                action_args: vec![Value::new(2, 16)],
                priority: 0,
            },
        )
        .unwrap();
        sw
    }

    fn workload(n: usize) -> Vec<InjectedPacket> {
        (0..n)
            .map(|i| {
                // Half the flows hit the fwd entry, half take the drop default.
                let dst = if i % 2 == 0 {
                    0xaabb
                } else {
                    0x1000 + i as u64
                };
                InjectedPacket::new(eth_packet(dst), 0)
            })
            .collect()
    }

    #[test]
    fn rtc_dispositions_match_sequential_injects() {
        let sw = testbed();
        let pkts = workload(64);
        let mut seq = sw.clone();
        let (mut emitted, mut dropped) = (0u64, 0u64);
        for p in &pkts {
            match seq
                .inject(InjectedPacket::new(p.bytes.clone(), p.port))
                .unwrap()
                .disposition
            {
                Disposition::Emitted { .. } => emitted += 1,
                Disposition::Dropped => dropped += 1,
                Disposition::ToCpu => unreachable!(),
            }
        }
        let report = RtcExecutor::new(RtcConfig {
            workers: 4,
            ..RtcConfig::default()
        })
        .run(&sw, &pkts);
        assert_eq!(report.injected, 64);
        assert_eq!(report.emitted, emitted);
        assert_eq!(report.dropped, dropped);
        assert_eq!(report.errors, 0);
        assert_eq!(report.worker_packets.iter().sum::<u64>(), 64);
        // Flow steering is deterministic: same workload, same shards.
        let again = RtcExecutor::new(RtcConfig {
            workers: 4,
            ..RtcConfig::default()
        })
        .run(&sw, &pkts);
        assert_eq!(report.worker_packets, again.worker_packets);
    }

    #[test]
    fn tiny_pool_backpressures_without_loss() {
        let sw = testbed();
        let pkts = workload(40);
        let report = RtcExecutor::new(RtcConfig {
            workers: 2,
            ring_depth: 1,
            pool_packets: 1,
            exhaustion: ExhaustionPolicy::Backpressure,
            ..RtcConfig::default()
        })
        .run(&sw, &pkts);
        assert_eq!(report.injected, 40);
        assert_eq!(report.pool_dropped, 0);
        assert_eq!(report.emitted + report.dropped, 40);
    }

    #[test]
    fn drop_policy_counts_exhaustion_instead_of_blocking() {
        let sw = testbed();
        // One flow → one worker; pool of 1 with a deep ring forces misses.
        let pkts = vec![InjectedPacket::new(eth_packet(0xaabb), 0); 64];
        let report = RtcExecutor::new(RtcConfig {
            workers: 1,
            ring_depth: 64,
            pool_packets: 1,
            exhaustion: ExhaustionPolicy::Drop,
            ..RtcConfig::default()
        })
        .run(&sw, &pkts);
        assert_eq!(report.injected + report.pool_dropped, 64);
        assert_eq!(report.emitted, report.injected);
        assert_eq!(report.pool_exhausted, report.pool_dropped);
    }

    #[test]
    fn session_reports_per_run_deltas_over_warm_workers() {
        let mut sw = testbed();
        sw.set_telemetry(true);
        let pkts = workload(32);
        let mut sess = RtcSession::new(
            &sw,
            RtcConfig {
                workers: 4,
                ..RtcConfig::default()
            },
        );
        let a = sess.run(&pkts);
        let b = sess.run(&pkts);
        // Each run reports exactly its own workload, not the session total.
        assert_eq!(a.injected, 32);
        assert_eq!(b.injected, 32);
        assert_eq!(a.emitted, b.emitted);
        assert_eq!(a.worker_packets, b.worker_packets);
        assert_eq!(a.metrics.counter("packets_injected"), 32);
        assert_eq!(b.metrics.counter("packets_injected"), 32);
        assert_eq!(b.metrics.counter_family_total("rtc_worker_packets"), 32);
        // A one-shot executor run agrees with a fresh session's first run.
        let one = RtcExecutor::new(RtcConfig {
            workers: 4,
            ..RtcConfig::default()
        })
        .run(&sw, &pkts);
        assert_eq!(one.emitted, a.emitted);
        assert_eq!(one.worker_packets, a.worker_packets);
    }

    #[test]
    fn telemetry_carries_rtc_series() {
        let mut sw = testbed();
        sw.set_telemetry(true);
        let pkts = workload(32);
        let report = RtcExecutor::new(RtcConfig {
            workers: 2,
            ..RtcConfig::default()
        })
        .run(&sw, &pkts);
        assert_eq!(report.metrics.counter("packets_injected"), 32);
        assert_eq!(
            report.metrics.counter_family_total("rtc_worker_packets"),
            32
        );
        assert!(report.metrics.counter_family_total("rtc_ring_depth") > 0);
        assert_eq!(report.metrics.counter("pool_exhausted"), 0);
        assert!(report.metrics.gauge("pool_in_use") >= 1);
        // Telemetry off ⇒ the report's snapshot stays empty.
        let mut quiet = testbed();
        quiet.set_telemetry(false);
        let r2 = RtcExecutor::new(RtcConfig::default()).run(&quiet, &pkts);
        assert!(r2.metrics.is_zero());
    }
}
