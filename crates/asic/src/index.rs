//! Pluggable packet-classification indexes for match-action tables.
//!
//! Every table slot owns a [`ClassifierIndex`] — a data structure that maps a
//! key tuple to the winning entry under the rank/arbitration rules of
//! [`rank_of`]. Five implementations exist:
//!
//! * **Scan** — the priority-sorted linear scan. O(entries) per lookup; kept
//!   as the honest reference cost model and as a forced baseline for
//!   benchmarks.
//! * **Exact** — one hash table over the full key tuple, wildcard entries in
//!   a scanned spill list. For all-exact tables.
//! * **Lpm** — per-prefix-length hash buckets probed longest-first. For
//!   single-LPM-key tables with uniform priorities.
//! * **TupleSpace** — tuple-space search: entries grouped by their mask
//!   tuple, one hash table per tuple, tuples probed in descending
//!   max-rank order with early exit once no remaining tuple can beat the
//!   current best hit. The workhorse for ternary/range/mixed tables.
//! * **DecisionTree** — HyperCuts-style cuts on high-discrimination bit
//!   windows, selected automatically when the ruleset's mask diversity makes
//!   tuple-space degenerate (tuple count approaching entry count).
//!
//! The selection heuristic lives in `auto_kind_after_insert` /
//! `auto_kind_from_entries`; tables migrate between kinds incrementally as
//! entries are installed, deleted, or aged out. `TableState::lookup_scan`
//! (in `tables`) remains the differential oracle that every index must agree
//! with observationally.

use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{Hash, Hasher};

use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::{mask_for, MatchKind, TableDef, Value};

/// Rank of an entry: priority first, then summed LPM prefix length. Higher
/// ranks win; ties go to the earliest install index.
pub type Rank = (i32, u32);

/// Computes the arbitration rank of an entry (priority, total LPM prefix
/// length). Longest prefix wins among equal priorities.
pub fn rank_of(e: &TableEntry) -> Rank {
    let lpm_total: u32 = e
        .matches
        .iter()
        .filter_map(|m| m.lpm_len().map(u32::from))
        .sum();
    (e.priority, lpm_total)
}

/// Number of log2 buckets in the probe/depth histograms.
pub const INDEX_HIST_BUCKETS: usize = 8;

/// Which index structure a table is currently using.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Priority-sorted linear scan.
    #[default]
    Scan,
    /// Full-key hash map with wildcard spill.
    Exact,
    /// Per-prefix-length hash buckets.
    Lpm,
    /// Tuple-space search (one hash table per mask tuple).
    TupleSpace,
    /// HyperCuts-style decision tree.
    DecisionTree,
}

impl IndexKind {
    /// Stable display name, used in telemetry labels and bench records.
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::Scan => "scan",
            IndexKind::Exact => "exact",
            IndexKind::Lpm => "lpm",
            IndexKind::TupleSpace => "tuple_space",
            IndexKind::DecisionTree => "decision_tree",
        }
    }

    /// Stable numeric code, exported as the `table_index_kind` gauge.
    pub fn ordinal(self) -> i64 {
        match self {
            IndexKind::Scan => 0,
            IndexKind::Exact => 1,
            IndexKind::Lpm => 2,
            IndexKind::TupleSpace => 3,
            IndexKind::DecisionTree => 4,
        }
    }
}

/// Index-selection policy for a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexPolicy {
    /// Pick and migrate automatically from the table shape and ruleset.
    #[default]
    Auto,
    /// Pin a specific index kind (benchmark baselines, differential tests).
    Force(IndexKind),
}

/// Structural statistics an index reports about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Current index kind.
    pub kind: IndexKind,
    /// Partitions: tuples (tuple space), hash buckets (lpm), tree nodes.
    pub partitions: usize,
    /// Entries outside the hashed structure (wildcard/range spill, root
    /// residue).
    pub spill: usize,
    /// Maximum tree depth (decision tree only).
    pub max_depth: usize,
    /// True when the ruleset mixes priorities in a way that disables a
    /// specialised fast path (single-LPM tables).
    pub mixed_priorities: bool,
}

/// Telemetry counters accumulated per table across lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexTelemetry {
    /// Current index kind.
    pub kind: IndexKind,
    /// Total partition/bucket probes across all lookups.
    pub probes: u64,
    /// Times the index was rebuilt from scratch.
    pub rebuilds: u64,
    /// log2 histogram of probes per lookup.
    pub probe_hist: [u64; INDEX_HIST_BUCKETS],
    /// log2 histogram of tree depth reached per lookup.
    pub depth_hist: [u64; INDEX_HIST_BUCKETS],
}

/// Interior-mutable probe recorder handed to [`ClassifierIndex::lookup`]
/// (lookups take `&self`; the dataplane counts through `Cell`s like the
/// hit/miss counters do).
#[derive(Debug, Clone, Default)]
pub struct ProbeLog {
    probes: Cell<u64>,
    probe_hist: [Cell<u64>; INDEX_HIST_BUCKETS],
    depth_hist: [Cell<u64>; INDEX_HIST_BUCKETS],
}

fn log2_bucket(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(INDEX_HIST_BUCKETS - 1)
    }
}

impl ProbeLog {
    /// Records one lookup that examined `n` partitions/buckets/entries.
    pub fn record_probes(&self, n: u64) {
        self.probes.set(self.probes.get() + n);
        let b = log2_bucket(n);
        self.probe_hist[b].set(self.probe_hist[b].get() + 1);
    }

    /// Records the tree depth reached by one lookup.
    pub fn record_depth(&self, d: u64) {
        let b = log2_bucket(d);
        self.depth_hist[b].set(self.depth_hist[b].get() + 1);
    }

    /// Total probes recorded so far.
    pub fn probes(&self) -> u64 {
        self.probes.get()
    }

    /// Snapshot of the probe histogram.
    pub fn probe_hist(&self) -> [u64; INDEX_HIST_BUCKETS] {
        std::array::from_fn(|i| self.probe_hist[i].get())
    }

    /// Snapshot of the depth histogram.
    pub fn depth_hist(&self) -> [u64; INDEX_HIST_BUCKETS] {
        std::array::from_fn(|i| self.depth_hist[i].get())
    }
}

/// A pluggable table index. Implementations must agree observationally with
/// the priority-sorted scan oracle: for any key tuple, `lookup` returns the
/// entry with the highest [`Rank`], ties broken by lowest install index.
///
/// `insert`/`remove` return `false` when the structure cannot absorb the
/// mutation incrementally — the caller must then `build` from scratch.
pub trait ClassifierIndex: std::fmt::Debug + Send {
    /// Which kind this index is.
    fn kind(&self) -> IndexKind;
    /// Clones the index behind the trait object.
    fn clone_box(&self) -> Box<dyn ClassifierIndex>;
    /// Rebuilds from the full entry list. `ranks[i] == rank_of(&entries[i])`.
    fn build(&mut self, entries: &[TableEntry], ranks: &[Rank]);
    /// Incrementally absorbs the entry at `idx` (already present in
    /// `entries`/`ranks`). Returns `false` if a rebuild is required.
    fn insert(&mut self, entries: &[TableEntry], ranks: &[Rank], idx: usize) -> bool;
    /// Incrementally forgets the entry previously at `idx`. Returns `false`
    /// if a rebuild is required.
    fn remove(&mut self, removed: &TableEntry, rank: Rank, idx: usize) -> bool;
    /// Finds the winning entry index for `keys`, recording probe effort.
    fn lookup(
        &self,
        entries: &[TableEntry],
        ranks: &[Rank],
        keys: &[Value],
        log: &ProbeLog,
    ) -> Option<usize>;
    /// Structural statistics for telemetry and the selection heuristic.
    fn stats(&self) -> IndexStats;
}

impl Clone for Box<dyn ClassifierIndex> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------------
// Mask-tuple signatures
// ---------------------------------------------------------------------------

/// Canonical per-key signature: which bits of the key an entry inspects.
/// Entries sharing a full signature tuple can live in one hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KeySig {
    /// Key is ignored (`Any`, zero mask, `/0` prefix).
    Wild,
    /// `key.bits() == bits` required, compare `key.raw() & mask`.
    Masked { bits: u16, mask: u128 },
    /// Compare `key.raw()` only (degenerate single-point range).
    Raw,
}

/// Signature and stored comparison value for one key match, or `None` when
/// the match cannot be hashed (a real range).
fn key_sig(m: &KeyMatch) -> Option<(KeySig, u128)> {
    match m {
        KeyMatch::Exact(v) => Some((
            KeySig::Masked {
                bits: v.bits(),
                mask: mask_for(v.bits()),
            },
            v.raw(),
        )),
        KeyMatch::Ternary(val, mask) => {
            let m = mask.raw() & mask_for(val.bits());
            if m == 0 {
                Some((KeySig::Wild, 0))
            } else {
                Some((
                    KeySig::Masked {
                        bits: val.bits(),
                        mask: m,
                    },
                    val.raw() & m,
                ))
            }
        }
        KeyMatch::Lpm(prefix, len) => {
            if *len == 0 {
                Some((KeySig::Wild, 0))
            } else {
                let w = prefix.bits();
                let shift = u32::from(w.saturating_sub(*len));
                let m = (mask_for(w) >> shift) << shift;
                Some((KeySig::Masked { bits: w, mask: m }, prefix.raw() & m))
            }
        }
        KeyMatch::Range(lo, hi) => {
            if lo.raw() == hi.raw() {
                Some((KeySig::Raw, lo.raw()))
            } else {
                None
            }
        }
        KeyMatch::Any => Some((KeySig::Wild, 0)),
    }
}

/// Full-tuple signature of an entry plus the hash of its stored comparison
/// values, or `None` when any key is unhashable (spill).
fn entry_sig(e: &TableEntry) -> Option<(Vec<KeySig>, u64)> {
    let mut sigs = Vec::with_capacity(e.matches.len());
    let mut h = DefaultHasher::new();
    for m in &e.matches {
        let (sig, stored) = key_sig(m)?;
        if sig != KeySig::Wild {
            stored.hash(&mut h);
        }
        sigs.push(sig);
    }
    Some((sigs, h.finish()))
}

/// Hashes a packet key tuple under a signature. Returns `None` when a key's
/// width disagrees with the signature (such entries can never match the key,
/// mirroring width-sensitive `KeyMatch` semantics).
fn probe_hash(sig: &[KeySig], keys: &[Value]) -> Option<u64> {
    let mut h = DefaultHasher::new();
    for (s, k) in sig.iter().zip(keys.iter()) {
        match s {
            KeySig::Wild => {}
            KeySig::Masked { bits, mask } => {
                if k.bits() != *bits {
                    return None;
                }
                (k.raw() & mask).hash(&mut h);
            }
            KeySig::Raw => k.raw().hash(&mut h),
        }
    }
    Some(h.finish())
}

fn entry_matches(e: &TableEntry, keys: &[Value]) -> bool {
    e.matches.len() == keys.len()
        && e.matches
            .iter()
            .zip(keys.iter())
            .all(|(m, &k)| m.matches(k))
}

/// Sorted insert position for `(rank desc, index asc)` ordered lists.
fn ordered_insert(order: &mut Vec<usize>, ranks: &[Rank], idx: usize) {
    let rank = ranks[idx];
    let pos = order.partition_point(|&i| ranks[i] >= rank);
    order.insert(pos, idx);
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

/// Priority-sorted linear scan: entry indices ordered rank-descending,
/// install order within a rank — identical arbitration to a TCAM walk.
#[derive(Debug, Clone, Default)]
pub(crate) struct ScanIndex {
    order: Vec<usize>,
}

impl ClassifierIndex for ScanIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Scan
    }

    fn clone_box(&self) -> Box<dyn ClassifierIndex> {
        Box::new(self.clone())
    }

    fn build(&mut self, entries: &[TableEntry], ranks: &[Rank]) {
        self.order = (0..entries.len()).collect();
        self.order
            .sort_by_key(|&i| (std::cmp::Reverse(ranks[i]), i));
    }

    fn insert(&mut self, _entries: &[TableEntry], ranks: &[Rank], idx: usize) -> bool {
        ordered_insert(&mut self.order, ranks, idx);
        true
    }

    fn remove(&mut self, _removed: &TableEntry, _rank: Rank, idx: usize) -> bool {
        self.order.retain(|&i| i != idx);
        true
    }

    fn lookup(
        &self,
        entries: &[TableEntry],
        _ranks: &[Rank],
        keys: &[Value],
        log: &ProbeLog,
    ) -> Option<usize> {
        let mut examined = 0u64;
        for &i in &self.order {
            examined += 1;
            if entry_matches(&entries[i], keys) {
                log.record_probes(examined);
                return Some(i);
            }
        }
        log.record_probes(examined);
        None
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            kind: IndexKind::Scan,
            spill: self.order.len(),
            ..IndexStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Exact
// ---------------------------------------------------------------------------

/// All-exact tables: one hash map over the full key tuple. Entries with
/// `Any` wildcards fall into a scanned spill list.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExactIndex {
    map: HashMap<Vec<Value>, usize>,
    spill: Vec<usize>,
}

impl ExactIndex {
    fn exact_key(entry: &TableEntry) -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(entry.matches.len());
        for m in &entry.matches {
            match m {
                KeyMatch::Exact(v) => key.push(*v),
                _ => return None,
            }
        }
        Some(key)
    }
}

impl ClassifierIndex for ExactIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Exact
    }

    fn clone_box(&self) -> Box<dyn ClassifierIndex> {
        Box::new(self.clone())
    }

    fn build(&mut self, entries: &[TableEntry], ranks: &[Rank]) {
        self.map.clear();
        self.spill.clear();
        for idx in 0..entries.len() {
            self.insert(entries, ranks, idx);
        }
    }

    fn insert(&mut self, entries: &[TableEntry], ranks: &[Rank], idx: usize) -> bool {
        match Self::exact_key(&entries[idx]) {
            None => self.spill.push(idx),
            Some(key) => match self.map.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    // Same key tuple: the higher priority wins; ties keep
                    // the earlier install, matching scan arbitration.
                    if ranks[idx].0 > ranks[*o.get()].0 {
                        o.insert(idx);
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(idx);
                }
            },
        }
        true
    }

    fn remove(&mut self, removed: &TableEntry, _rank: Rank, idx: usize) -> bool {
        match Self::exact_key(removed) {
            None => {
                self.spill.retain(|&i| i != idx);
                true
            }
            // If the removed entry was the stored winner for its tuple we
            // don't know which shadowed duplicate succeeds it — rebuild.
            Some(key) => self.map.get(&key) != Some(&idx),
        }
    }

    fn lookup(
        &self,
        entries: &[TableEntry],
        ranks: &[Rank],
        keys: &[Value],
        log: &ProbeLog,
    ) -> Option<usize> {
        let mut probes = 1u64;
        let mut best: Option<usize> = self.map.get(keys).copied();
        for &i in &self.spill {
            probes += 1;
            if entry_matches(&entries[i], keys) {
                let better = match best {
                    None => true,
                    // Strict priority comparison + install order: exact
                    // entries all rank (priority, 0).
                    Some(b) => ranks[i].0 > ranks[b].0 || (ranks[i].0 == ranks[b].0 && i < b),
                };
                if better {
                    best = Some(i);
                }
            }
        }
        log.record_probes(probes);
        best
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            kind: IndexKind::Exact,
            partitions: self.map.len(),
            spill: self.spill.len(),
            ..IndexStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Lpm
// ---------------------------------------------------------------------------

/// Single-LPM-key tables: prefixes bucketed by `(key width, prefix length)`,
/// walked longest-prefix-first. Valid only while all entries share one
/// priority; a mixed-priority install flips `mixed` and the table migrates
/// to tuple-space search.
#[derive(Debug, Clone, Default)]
pub(crate) struct LpmIndex {
    buckets: HashMap<(u16, u16), HashMap<u128, usize>>,
    /// Bucket keys sorted by descending prefix length.
    lens: Vec<(u16, u16)>,
    /// First-installed wildcard entry (`Any` or a /0 prefix).
    wildcard: Option<usize>,
    /// Priority shared by every installed entry, if still uniform.
    uniform: Option<i32>,
    /// Set once a second distinct priority is installed.
    mixed: bool,
}

impl ClassifierIndex for LpmIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Lpm
    }

    fn clone_box(&self) -> Box<dyn ClassifierIndex> {
        Box::new(self.clone())
    }

    fn build(&mut self, entries: &[TableEntry], ranks: &[Rank]) {
        *self = LpmIndex::default();
        for idx in 0..entries.len() {
            self.insert(entries, ranks, idx);
        }
    }

    fn insert(&mut self, entries: &[TableEntry], _ranks: &[Rank], idx: usize) -> bool {
        let entry = &entries[idx];
        match self.uniform {
            None => self.uniform = Some(entry.priority),
            Some(p) if p != entry.priority => self.mixed = true,
            _ => {}
        }
        match entry.matches.first() {
            Some(KeyMatch::Lpm(prefix, len)) if *len > 0 => {
                let bits = prefix.bits();
                let eff = (*len).min(bits);
                let masked = prefix.raw() >> u32::from(bits - eff);
                let bucket = self.buckets.entry((bits, *len)).or_default();
                // Same (width, len, masked prefix) ⇒ identical match set;
                // the first install wins under uniform priority.
                bucket.entry(masked).or_insert(idx);
                if !self.lens.contains(&(bits, *len)) {
                    self.lens.push((bits, *len));
                    self.lens.sort_by_key(|&(_, len)| std::cmp::Reverse(len));
                }
            }
            // `Any` and /0 prefixes match everything: rank (prio, 0).
            _ => {
                if self.wildcard.is_none() {
                    self.wildcard = Some(idx);
                }
            }
        }
        true
    }

    fn remove(&mut self, removed: &TableEntry, _rank: Rank, idx: usize) -> bool {
        match removed.matches.first() {
            Some(KeyMatch::Lpm(prefix, len)) if *len > 0 => {
                let bits = prefix.bits();
                let eff = (*len).min(bits);
                let masked = prefix.raw() >> u32::from(bits - eff);
                // Removing the stored winner exposes an unknown shadowed
                // duplicate — rebuild. Shadowed duplicates go quietly.
                self.buckets.get(&(bits, *len)).and_then(|b| b.get(&masked)) != Some(&idx)
            }
            _ => self.wildcard != Some(idx),
        }
    }

    fn lookup(
        &self,
        entries: &[TableEntry],
        ranks: &[Rank],
        keys: &[Value],
        log: &ProbeLog,
    ) -> Option<usize> {
        if self.mixed {
            // Defensive full walk; normally unreachable because the table
            // migrates to tuple-space on the mixed-priority install.
            let mut best: Option<usize> = None;
            for (i, e) in entries.iter().enumerate() {
                if entry_matches(e, keys) {
                    let better = match best {
                        None => true,
                        Some(b) => ranks[i] > ranks[b],
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            log.record_probes(entries.len() as u64);
            return best;
        }
        let Some(&v) = keys.first() else {
            log.record_probes(0);
            return None;
        };
        let mut probes = 0u64;
        for &(bits, len) in &self.lens {
            probes += 1;
            if bits != v.bits() {
                continue;
            }
            let eff = len.min(bits);
            let masked = v.raw() >> u32::from(bits - eff);
            if let Some(&i) = self.buckets[&(bits, len)].get(&masked) {
                log.record_probes(probes.max(1));
                return Some(i);
            }
        }
        log.record_probes(probes.max(1));
        self.wildcard
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            kind: IndexKind::Lpm,
            partitions: self.buckets.len(),
            spill: usize::from(self.wildcard.is_some()),
            mixed_priorities: self.mixed,
            ..IndexStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Tuple-space search
// ---------------------------------------------------------------------------

/// One tuple: all entries sharing a mask signature, hashed by their stored
/// comparison values. Buckets hold lists because distinct entries can share
/// a hash (collisions) or identical stored values (shadowed duplicates);
/// every candidate is verified with full `KeyMatch::matches`.
#[derive(Debug, Clone)]
struct Tuple {
    sig: Vec<KeySig>,
    buckets: HashMap<u64, Vec<usize>>,
    /// Multiset of live ranks; the max key drives the probe order.
    rank_counts: BTreeMap<Rank, u32>,
    len: usize,
}

impl Tuple {
    fn max_rank(&self) -> Option<Rank> {
        self.rank_counts.keys().next_back().copied()
    }
}

/// Tuple-space search: one hash table per distinct mask tuple, probed in
/// descending max-rank order with early exit once no remaining tuple can
/// beat the current best hit. Unhashable entries (real ranges) live in a
/// rank-sorted spill list scanned first.
#[derive(Debug, Clone, Default)]
pub(crate) struct TupleSpaceIndex {
    /// Tuple storage; slots may be tombstoned (empty) after removals.
    tuples: Vec<Tuple>,
    by_sig: HashMap<Vec<KeySig>, usize>,
    /// Live tuple ids ordered `(max_rank desc, id asc)`.
    probe_order: Vec<usize>,
    /// Unhashable entries, `(rank desc, index asc)`.
    spill: Vec<usize>,
    live_tuples: usize,
    mixed: bool,
    first_priority: Option<i32>,
}

impl TupleSpaceIndex {
    /// Position of tuple `tid` in the probe order under `(max_rank desc,
    /// id asc)`.
    fn probe_pos(&self, tid: usize) -> usize {
        let key = (self.tuples[tid].max_rank(), std::cmp::Reverse(tid));
        self.probe_order
            .partition_point(|&t| (self.tuples[t].max_rank(), std::cmp::Reverse(t)) > key)
    }

    fn reposition(&mut self, tid: usize) {
        self.probe_order.retain(|&t| t != tid);
        let pos = self.probe_pos(tid);
        self.probe_order.insert(pos, tid);
    }

    fn note_priority(&mut self, p: i32) {
        match self.first_priority {
            None => self.first_priority = Some(p),
            Some(fp) if fp != p => self.mixed = true,
            _ => {}
        }
    }
}

impl ClassifierIndex for TupleSpaceIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::TupleSpace
    }

    fn clone_box(&self) -> Box<dyn ClassifierIndex> {
        Box::new(self.clone())
    }

    fn build(&mut self, entries: &[TableEntry], ranks: &[Rank]) {
        *self = TupleSpaceIndex::default();
        for idx in 0..entries.len() {
            self.insert(entries, ranks, idx);
        }
    }

    fn insert(&mut self, entries: &[TableEntry], ranks: &[Rank], idx: usize) -> bool {
        let entry = &entries[idx];
        self.note_priority(entry.priority);
        match entry_sig(entry) {
            None => ordered_insert(&mut self.spill, ranks, idx),
            Some((sig, hash)) => {
                let tid = match self.by_sig.get(&sig) {
                    Some(&t) => t,
                    None => {
                        let t = self.tuples.len();
                        self.tuples.push(Tuple {
                            sig: sig.clone(),
                            buckets: HashMap::new(),
                            rank_counts: BTreeMap::new(),
                            len: 0,
                        });
                        self.by_sig.insert(sig, t);
                        self.live_tuples += 1;
                        let pos = self.probe_pos(t);
                        self.probe_order.insert(pos, t);
                        t
                    }
                };
                let old_max = self.tuples[tid].max_rank();
                let tuple = &mut self.tuples[tid];
                tuple.buckets.entry(hash).or_default().push(idx);
                *tuple.rank_counts.entry(ranks[idx]).or_insert(0) += 1;
                tuple.len += 1;
                if self.tuples[tid].max_rank() != old_max {
                    self.reposition(tid);
                }
            }
        }
        true
    }

    fn remove(&mut self, removed: &TableEntry, rank: Rank, idx: usize) -> bool {
        match entry_sig(removed) {
            None => {
                let before = self.spill.len();
                self.spill.retain(|&i| i != idx);
                self.spill.len() < before
            }
            Some((sig, hash)) => {
                let Some(&tid) = self.by_sig.get(&sig) else {
                    return false;
                };
                let old_max = self.tuples[tid].max_rank();
                let tuple = &mut self.tuples[tid];
                let Some(bucket) = tuple.buckets.get_mut(&hash) else {
                    return false;
                };
                let before = bucket.len();
                bucket.retain(|&i| i != idx);
                if bucket.len() == before {
                    return false;
                }
                if bucket.is_empty() {
                    tuple.buckets.remove(&hash);
                }
                match tuple.rank_counts.get_mut(&rank) {
                    Some(c) if *c > 1 => *c -= 1,
                    Some(_) => {
                        tuple.rank_counts.remove(&rank);
                    }
                    None => return false,
                }
                tuple.len -= 1;
                if tuple.len == 0 {
                    // Tombstone the slot; ids are stable so no remapping.
                    self.by_sig.remove(&sig);
                    self.tuples[tid].buckets = HashMap::new();
                    self.probe_order.retain(|&t| t != tid);
                    self.live_tuples -= 1;
                } else if self.tuples[tid].max_rank() != old_max {
                    self.reposition(tid);
                }
                true
            }
        }
    }

    fn lookup(
        &self,
        entries: &[TableEntry],
        ranks: &[Rank],
        keys: &[Value],
        log: &ProbeLog,
    ) -> Option<usize> {
        let mut best: Option<(Rank, usize)> = None;
        let mut probes = 0u64;
        // Spill is rank-sorted: the first match is the best spill candidate.
        for &i in &self.spill {
            probes += 1;
            if entry_matches(&entries[i], keys) {
                best = Some((ranks[i], i));
                break;
            }
        }
        for &tid in &self.probe_order {
            let tuple = &self.tuples[tid];
            let Some(tmax) = tuple.max_rank() else {
                continue;
            };
            // Early exit: tuples are max-rank descending, so once the best
            // possible remaining rank is strictly below the current hit no
            // later tuple can win. Equal max ranks must still be probed —
            // an equal-rank entry with a lower install index beats the hit.
            if let Some((br, _)) = best {
                if tmax < br {
                    break;
                }
            }
            probes += 1;
            let Some(h) = probe_hash(&tuple.sig, keys) else {
                // Width mismatch: no entry in this tuple can match the key.
                continue;
            };
            if let Some(bucket) = tuple.buckets.get(&h) {
                for &i in bucket {
                    if entry_matches(&entries[i], keys) {
                        let better = match best {
                            None => true,
                            Some((br, bi)) => ranks[i] > br || (ranks[i] == br && i < bi),
                        };
                        if better {
                            best = Some((ranks[i], i));
                        }
                    }
                }
            }
        }
        log.record_probes(probes.max(1));
        best.map(|(_, i)| i)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            kind: IndexKind::TupleSpace,
            partitions: self.live_tuples,
            spill: self.spill.len(),
            mixed_priorities: self.mixed,
            ..IndexStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Decision tree (HyperCuts-style)
// ---------------------------------------------------------------------------

/// Leaf size below which a node is not cut further.
const LEAF_MAX: usize = 8;
/// Local-list size above which an incremental insert demands a rebuild.
const LEAF_SPLIT: usize = 64;
/// Maximum tree depth.
const MAX_DEPTH: usize = 24;
/// Bits consumed per cut (fan-out `2^CUT_BITS`).
const CUT_BITS: u32 = 4;
/// Sentinel child id for an empty subtree.
const NO_CHILD: usize = usize::MAX;

/// A cut: inspect `bits` bits of key `dim` starting at `shift`, valid for
/// keys of exactly `width` bits.
#[derive(Debug, Clone, Copy)]
struct Cut {
    dim: usize,
    width: u16,
    shift: u32,
    bits: u32,
}

fn low_mask(bits: u32) -> u128 {
    (1u128 << bits) - 1
}

/// Which child an entry's match on `cut.dim` belongs to, or `None` when the
/// entry does not pin every bit of the cut window (it stays in the node's
/// local list — no rule replication).
fn cut_value(m: &KeyMatch, cut: &Cut) -> Option<u128> {
    let window = low_mask(cut.bits) << cut.shift;
    match key_sig(m)? {
        (KeySig::Masked { bits, mask }, stored) if bits == cut.width && mask & window == window => {
            Some((stored >> cut.shift) & low_mask(cut.bits))
        }
        _ => None,
    }
}

#[derive(Debug, Clone)]
struct TreeNode {
    cut: Option<Cut>,
    /// `2^bits` child node ids (`NO_CHILD` = empty subtree).
    children: Vec<usize>,
    /// Entries resident at this node, `(rank desc, index asc)`.
    local: Vec<usize>,
    /// Best rank anywhere in this subtree (pruning bound).
    max_rank: Option<Rank>,
}

/// HyperCuts-style decision tree: each internal node cuts on the
/// highest-scoring `(dim, bit window)` — score is entries covering the
/// window × distinct window values — and entries that don't pin the window
/// stay in the node's local list. Lookup descends one path, scanning local
/// lists with a rank early-exit and pruning subtrees whose `max_rank`
/// cannot beat the current best.
#[derive(Debug, Clone)]
pub(crate) struct DecisionTreeIndex {
    nodes: Vec<TreeNode>,
    /// Entry count at the last full build.
    built_len: usize,
    /// Entries absorbed incrementally since the last build.
    grown: usize,
    max_depth: usize,
}

impl Default for DecisionTreeIndex {
    fn default() -> Self {
        DecisionTreeIndex {
            nodes: vec![TreeNode {
                cut: None,
                children: Vec::new(),
                local: Vec::new(),
                max_rank: None,
            }],
            built_len: 0,
            grown: 0,
            max_depth: 0,
        }
    }
}

impl DecisionTreeIndex {
    /// Best cut for this entry set, or `None` when no window discriminates.
    fn choose_cut(ids: &[usize], entries: &[TableEntry]) -> Option<Cut> {
        let arity = entries.get(*ids.first()?)?.matches.len();
        let mut best: Option<(u64, Cut)> = None;
        for dim in 0..arity {
            // Majority key width among maskable sigs on this dim.
            let mut width_counts: BTreeMap<u16, usize> = BTreeMap::new();
            for &i in ids {
                if let Some((KeySig::Masked { bits, .. }, _)) = key_sig(&entries[i].matches[dim]) {
                    *width_counts.entry(bits).or_insert(0) += 1;
                }
            }
            let Some((&w, _)) = width_counts.iter().max_by_key(|&(&w, &c)| (c, w)) else {
                continue;
            };
            let bits = CUT_BITS.min(u32::from(w));
            let window_count = u32::from(w).saturating_sub(bits) + 1;
            for shift in 0..window_count {
                let window = low_mask(bits) << shift;
                let mut covered = 0u64;
                let mut values = HashSet::new();
                for &i in ids {
                    if let Some((KeySig::Masked { bits: eb, mask }, stored)) =
                        key_sig(&entries[i].matches[dim])
                    {
                        if eb == w && mask & window == window {
                            covered += 1;
                            values.insert((stored >> shift) & low_mask(bits));
                        }
                    }
                }
                // A useful cut must split the covered set and cover a
                // meaningful fraction of the node.
                if values.len() < 2 || covered * 4 < ids.len() as u64 {
                    continue;
                }
                let score = covered * values.len() as u64;
                let better = match best {
                    None => true,
                    Some((bs, _)) => score > bs,
                };
                if better {
                    best = Some((
                        score,
                        Cut {
                            dim,
                            width: w,
                            shift,
                            bits,
                        },
                    ));
                }
            }
        }
        best.map(|(_, c)| c)
    }

    fn build_node(
        &mut self,
        mut ids: Vec<usize>,
        entries: &[TableEntry],
        ranks: &[Rank],
        depth: usize,
    ) -> usize {
        self.max_depth = self.max_depth.max(depth);
        let max_rank = ids.iter().map(|&i| ranks[i]).max();
        let cut = if ids.len() <= LEAF_MAX || depth >= MAX_DEPTH {
            None
        } else {
            Self::choose_cut(&ids, entries)
        };
        let Some(cut) = cut else {
            ids.sort_by_key(|&i| (std::cmp::Reverse(ranks[i]), i));
            let id = self.nodes.len();
            self.nodes.push(TreeNode {
                cut: None,
                children: Vec::new(),
                local: ids,
                max_rank,
            });
            return id;
        };
        let fan = 1usize << cut.bits;
        let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); fan];
        let mut local = Vec::new();
        for &i in &ids {
            match cut_value(&entries[i].matches[cut.dim], &cut) {
                Some(v) => partitions[v as usize].push(i),
                None => local.push(i),
            }
        }
        local.sort_by_key(|&i| (std::cmp::Reverse(ranks[i]), i));
        let id = self.nodes.len();
        self.nodes.push(TreeNode {
            cut: Some(cut),
            children: vec![NO_CHILD; fan],
            local,
            max_rank,
        });
        for (slot, part) in partitions.into_iter().enumerate() {
            if !part.is_empty() {
                let child = self.build_node(part, entries, ranks, depth + 1);
                self.nodes[id].children[slot] = child;
            }
        }
        id
    }
}

impl ClassifierIndex for DecisionTreeIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::DecisionTree
    }

    fn clone_box(&self) -> Box<dyn ClassifierIndex> {
        Box::new(self.clone())
    }

    fn build(&mut self, entries: &[TableEntry], ranks: &[Rank]) {
        self.nodes.clear();
        self.max_depth = 0;
        self.built_len = entries.len();
        self.grown = 0;
        // Nodes allocate pre-order, so the root always lands in slot 0.
        let root = self.build_node((0..entries.len()).collect(), entries, ranks, 0);
        debug_assert_eq!(root, 0);
    }

    fn insert(&mut self, entries: &[TableEntry], ranks: &[Rank], idx: usize) -> bool {
        let rank = ranks[idx];
        self.grown += 1;
        if self.grown > self.built_len / 2 + LEAF_SPLIT {
            return false;
        }
        let mut node = 0usize;
        let mut depth = 0usize;
        loop {
            let n = &mut self.nodes[node];
            n.max_rank = Some(n.max_rank.map_or(rank, |m| m.max(rank)));
            let Some(cut) = n.cut else {
                if n.local.len() >= LEAF_SPLIT {
                    return false;
                }
                ordered_insert(&mut n.local, ranks, idx);
                return true;
            };
            match cut_value(&entries[idx].matches[cut.dim], &cut) {
                None => {
                    if n.local.len() >= LEAF_SPLIT {
                        return false;
                    }
                    ordered_insert(&mut n.local, ranks, idx);
                    return true;
                }
                Some(v) => {
                    let child = n.children[v as usize];
                    if child == NO_CHILD {
                        let new_id = self.nodes.len();
                        self.nodes[node].children[v as usize] = new_id;
                        self.nodes.push(TreeNode {
                            cut: None,
                            children: Vec::new(),
                            local: vec![idx],
                            max_rank: Some(rank),
                        });
                        self.max_depth = self.max_depth.max(depth + 1);
                        return true;
                    }
                    node = child;
                    depth += 1;
                }
            }
        }
    }

    fn remove(&mut self, _removed: &TableEntry, _rank: Rank, _idx: usize) -> bool {
        // Subtree max-rank bounds cannot be tightened without a walk;
        // deletions always rebuild (aging sweeps batch into one rebuild).
        false
    }

    fn lookup(
        &self,
        entries: &[TableEntry],
        ranks: &[Rank],
        keys: &[Value],
        log: &ProbeLog,
    ) -> Option<usize> {
        let mut best: Option<(Rank, usize)> = None;
        let mut probes = 0u64;
        let mut depth = 0u64;
        let mut node = 0usize;
        loop {
            let n = &self.nodes[node];
            probes += 1;
            for &i in &n.local {
                // Local lists are rank-descending: below the current best
                // nothing here can win. Equal ranks still compare install
                // index.
                if let Some((br, _)) = best {
                    if ranks[i] < br {
                        break;
                    }
                }
                probes += 1;
                if entry_matches(&entries[i], keys) {
                    let better = match best {
                        None => true,
                        Some((br, bi)) => ranks[i] > br || (ranks[i] == br && i < bi),
                    };
                    if better {
                        best = Some((ranks[i], i));
                    }
                }
            }
            let Some(cut) = n.cut else { break };
            let Some(&k) = keys.get(cut.dim) else { break };
            if k.bits() != cut.width {
                // Every subtree entry pins a window of `width`-bit keys;
                // a different key width can only match local/spill rules.
                break;
            }
            let child = n.children[((k.raw() >> cut.shift) & low_mask(cut.bits)) as usize];
            if child == NO_CHILD {
                break;
            }
            if let Some((br, _)) = best {
                // Strict bound: an equal-max subtree can still win a tie
                // on install index, so only prune strictly-worse subtrees.
                if self.nodes[child].max_rank.is_none_or(|m| m < br) {
                    break;
                }
            }
            node = child;
            depth += 1;
        }
        log.record_probes(probes.max(1));
        log.record_depth(depth);
        best.map(|(_, i)| i)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            kind: IndexKind::DecisionTree,
            partitions: self.nodes.len(),
            spill: self.nodes[0].local.len(),
            max_depth: self.max_depth,
            ..IndexStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Selection heuristic
// ---------------------------------------------------------------------------

/// Coarse table shape derived from the key kinds; constrains which index
/// kinds are admissible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableShape {
    /// Every key is `MatchKind::Exact`.
    AllExact,
    /// Exactly one key, `MatchKind::Lpm`.
    SingleLpm,
    /// Anything else: ternary, range, or mixed kinds — TCAM territory.
    Tcam,
}

/// Classifies a table definition into its shape.
pub fn shape_of(def: &TableDef) -> TableShape {
    if def.keys.iter().all(|k| k.kind == MatchKind::Exact) {
        TableShape::AllExact
    } else if def.keys.len() == 1 && def.keys[0].kind == MatchKind::Lpm {
        TableShape::SingleLpm
    } else {
        TableShape::Tcam
    }
}

/// Minimum entry count before the decision tree is ever worth building.
const TREE_MIN_ENTRIES: usize = 64;

/// Decision tree when the tuple space is degenerate (tuples or spill
/// approaching the entry count), else tuple-space search.
fn tcam_kind(n: usize, tuples: usize, spill: usize) -> IndexKind {
    if n >= TREE_MIN_ENTRIES && (tuples * 4 >= n || spill * 2 >= n) {
        IndexKind::DecisionTree
    } else {
        IndexKind::TupleSpace
    }
}

/// Desired kind after an incremental install, given the current index's
/// self-reported stats. Sticky: a decision tree stays a decision tree until
/// a rebuild re-evaluates from scratch.
pub(crate) fn auto_kind_after_insert(
    shape: TableShape,
    n: usize,
    current: IndexKind,
    stats: &IndexStats,
) -> IndexKind {
    match shape {
        TableShape::AllExact => IndexKind::Exact,
        TableShape::SingleLpm => {
            if current == IndexKind::Lpm && stats.mixed_priorities {
                IndexKind::TupleSpace
            } else {
                current
            }
        }
        TableShape::Tcam => {
            if current == IndexKind::DecisionTree {
                IndexKind::DecisionTree
            } else {
                tcam_kind(n, stats.partitions, stats.spill)
            }
        }
    }
}

/// Desired kind for a full rebuild, computed from the entries themselves.
pub(crate) fn auto_kind_from_entries(shape: TableShape, entries: &[TableEntry]) -> IndexKind {
    match shape {
        TableShape::AllExact => IndexKind::Exact,
        TableShape::SingleLpm => {
            let mut prios = entries.iter().map(|e| e.priority);
            let first = prios.next();
            if first.is_some() && prios.any(|p| Some(p) != first) {
                IndexKind::TupleSpace
            } else {
                IndexKind::Lpm
            }
        }
        TableShape::Tcam => {
            let mut sigs = HashSet::new();
            let mut spill = 0usize;
            for e in entries {
                match entry_sig(e) {
                    Some((sig, _)) => {
                        sigs.insert(sig);
                    }
                    None => spill += 1,
                }
            }
            tcam_kind(entries.len(), sigs.len(), spill)
        }
    }
}

/// Initial kind for an empty table of the given shape.
pub(crate) fn initial_kind(shape: TableShape) -> IndexKind {
    match shape {
        TableShape::AllExact => IndexKind::Exact,
        TableShape::SingleLpm => IndexKind::Lpm,
        TableShape::Tcam => IndexKind::TupleSpace,
    }
}

/// Constructs an empty index of the requested kind.
pub(crate) fn make_index(kind: IndexKind) -> Box<dyn ClassifierIndex> {
    match kind {
        IndexKind::Scan => Box::new(ScanIndex::default()),
        IndexKind::Exact => Box::new(ExactIndex::default()),
        IndexKind::Lpm => Box::new(LpmIndex::default()),
        IndexKind::TupleSpace => Box::new(TupleSpaceIndex::default()),
        IndexKind::DecisionTree => Box::new(DecisionTreeIndex::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground-truth arbitration: best rank, ties to lowest index.
    fn oracle(entries: &[TableEntry], ranks: &[Rank], keys: &[Value]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in entries.iter().enumerate() {
            if entry_matches(e, keys) {
                let better = best.is_none_or(|b| ranks[i] > ranks[b]);
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    fn random_entry(r: &mut Lcg) -> TableEntry {
        let m0 = match r.next() % 6 {
            0 => KeyMatch::Any,
            1 => KeyMatch::Exact(Value::new(r.next() as u128 % 64, 16)),
            2 => {
                let masks = [0xff00u128, 0x0ff0, 0xffff, 0x00ff, 0x3c3c, 0];
                let m = masks[(r.next() % 6) as usize];
                KeyMatch::Ternary(Value::new(r.next() as u128, 16), Value::new(m, 16))
            }
            3 => KeyMatch::Lpm(Value::new(r.next() as u128, 16), (r.next() % 17) as u16),
            4 => {
                let lo = r.next() as u128 % 256;
                let hi = lo + r.next() as u128 % 4;
                KeyMatch::Range(Value::new(lo, 16), Value::new(hi, 16))
            }
            _ => KeyMatch::Ternary(Value::new(r.next() as u128, 8), Value::new(0xf0, 8)),
        };
        TableEntry {
            matches: vec![m0],
            action: "a".into(),
            action_args: vec![],
            priority: (r.next() % 4) as i32,
        }
    }

    fn random_keys(r: &mut Lcg) -> Vec<Value> {
        let bits = if r.next().is_multiple_of(8) { 8 } else { 16 };
        vec![Value::new(r.next() as u128 % 300, bits)]
    }

    fn check_against_oracle(kind: IndexKind, seed: u64, n: usize) {
        let mut r = Lcg(seed);
        let entries: Vec<_> = (0..n).map(|_| random_entry(&mut r)).collect();
        let ranks: Vec<_> = entries.iter().map(rank_of).collect();
        let mut ix = make_index(kind);
        ix.build(&entries, &ranks);
        let log = ProbeLog::default();
        for _ in 0..400 {
            let keys = random_keys(&mut r);
            assert_eq!(
                ix.lookup(&entries, &ranks, &keys, &log),
                oracle(&entries, &ranks, &keys),
                "{kind:?} diverged on {keys:?}"
            );
        }
        assert!(log.probes() > 0);
    }

    #[test]
    fn scan_matches_oracle() {
        check_against_oracle(IndexKind::Scan, 1, 120);
    }

    #[test]
    fn tuple_space_matches_oracle() {
        for seed in 0..8 {
            check_against_oracle(IndexKind::TupleSpace, seed, 150);
        }
    }

    #[test]
    fn decision_tree_matches_oracle() {
        for seed in 0..8 {
            check_against_oracle(IndexKind::DecisionTree, seed, 150);
        }
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        for kind in [IndexKind::TupleSpace, IndexKind::DecisionTree] {
            let mut r = Lcg(99);
            let mut entries = Vec::new();
            let mut ranks = Vec::new();
            let mut ix = make_index(kind);
            ix.build(&entries, &ranks);
            for _ in 0..120 {
                entries.push(random_entry(&mut r));
                ranks.push(rank_of(entries.last().unwrap()));
                if !ix.insert(&entries, &ranks, entries.len() - 1) {
                    ix.build(&entries, &ranks);
                }
                let keys = random_keys(&mut r);
                let log = ProbeLog::default();
                assert_eq!(
                    ix.lookup(&entries, &ranks, &keys, &log),
                    oracle(&entries, &ranks, &keys),
                    "{kind:?} diverged mid-insert"
                );
            }
        }
    }

    #[test]
    fn tuple_space_incremental_remove() {
        let mut r = Lcg(7);
        let entries: Vec<_> = (0..80).map(|_| random_entry(&mut r)).collect();
        let ranks: Vec<_> = entries.iter().map(rank_of).collect();
        let mut ix = TupleSpaceIndex::default();
        ix.build(&entries, &ranks);
        // Remove the tail half one by one (the only shape `remove` must
        // support: the victim is always the last live index).
        let mut live_entries = entries.clone();
        let mut live_ranks = ranks.clone();
        for idx in (40..entries.len()).rev() {
            assert!(ix.remove(&entries[idx], ranks[idx], idx), "remove {idx}");
            live_entries.truncate(idx);
            live_ranks.truncate(idx);
            let keys = random_keys(&mut r);
            let log = ProbeLog::default();
            assert_eq!(
                ix.lookup(&live_entries, &live_ranks, &keys, &log),
                oracle(&live_entries, &live_ranks, &keys),
            );
        }
    }

    #[test]
    fn tuple_space_early_exit_keeps_install_order_ties() {
        // Two entries, same rank, different tuples, both matching: the
        // earlier install must win even though its tuple is probed second
        // (tuple ids break probe-order ties).
        let e0 = TableEntry {
            matches: vec![KeyMatch::Ternary(Value::new(0x10, 8), Value::new(0xf0, 8))],
            action: "a".into(),
            action_args: vec![],
            priority: 5,
        };
        let e1 = TableEntry {
            matches: vec![KeyMatch::Ternary(Value::new(0x01, 8), Value::new(0x0f, 8))],
            action: "a".into(),
            action_args: vec![],
            priority: 5,
        };
        let entries = vec![e0, e1];
        let ranks: Vec<_> = entries.iter().map(rank_of).collect();
        let mut ix = TupleSpaceIndex::default();
        ix.build(&entries, &ranks);
        let log = ProbeLog::default();
        let hit = ix.lookup(&entries, &ranks, &[Value::new(0x11, 8)], &log);
        assert_eq!(hit, Some(0));
    }

    #[test]
    fn heuristic_selects_tree_for_diverse_masks() {
        // 64 entries, each with a unique ternary mask → tuple per entry.
        let entries: Vec<_> = (0..64u128)
            .map(|i| TableEntry {
                matches: vec![KeyMatch::Ternary(
                    Value::new(i, 32),
                    Value::new(0xffff_0000 | i, 32),
                )],
                action: "a".into(),
                action_args: vec![],
                priority: 0,
            })
            .collect();
        assert_eq!(
            auto_kind_from_entries(TableShape::Tcam, &entries),
            IndexKind::DecisionTree
        );
        // One shared mask → one tuple → tuple space.
        let uniform: Vec<_> = (0..64u128)
            .map(|i| TableEntry {
                matches: vec![KeyMatch::Ternary(
                    Value::new(i << 8, 32),
                    Value::new(0xffff_ff00, 32),
                )],
                action: "a".into(),
                action_args: vec![],
                priority: 0,
            })
            .collect();
        assert_eq!(
            auto_kind_from_entries(TableShape::Tcam, &uniform),
            IndexKind::TupleSpace
        );
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 1);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(255), 7);
        assert_eq!(log2_bucket(u64::MAX), 7);
    }

    #[test]
    fn sig_classification() {
        assert_eq!(key_sig(&KeyMatch::Any), Some((KeySig::Wild, 0)));
        assert_eq!(
            key_sig(&KeyMatch::Lpm(Value::new(0, 32), 0)),
            Some((KeySig::Wild, 0))
        );
        assert_eq!(
            key_sig(&KeyMatch::Ternary(Value::new(1, 8), Value::new(0, 8))),
            Some((KeySig::Wild, 0))
        );
        assert!(key_sig(&KeyMatch::Range(Value::new(1, 8), Value::new(2, 8))).is_none());
        assert_eq!(
            key_sig(&KeyMatch::Range(Value::new(3, 8), Value::new(3, 8))),
            Some((KeySig::Raw, 3))
        );
        let (sig, stored) = key_sig(&KeyMatch::Lpm(Value::new(0x0a00_00ff, 32), 8)).unwrap();
        assert_eq!(
            sig,
            KeySig::Masked {
                bits: 32,
                mask: 0xff00_0000
            }
        );
        assert_eq!(stored, 0x0a00_0000);
    }
}
