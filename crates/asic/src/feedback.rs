//! The recirculation feedback-queue bandwidth model (paper §4).
//!
//! When Ethernet ports are put in loopback mode to provide recirculation
//! bandwidth, packets that must recirculate *k* times pass through the
//! loopback egress port *k* times, competing with themselves: first-pass
//! traffic competes with second-pass traffic and so on ("the switch buffer
//! will form a feedback queue"). The paper works the k = 2 case by hand —
//! `y + x = T`, `y = x·T/(T+x)` → `x = 0.62T`, exit throughput `0.38T` —
//! and states `0.16T` for k = 3.
//!
//! Generalizing: with delivery ratio ρ at the saturated loopback port, pass
//! j arrives at rate `T·ρ^j`, so the offered load is `T·Σ_{j=0}^{k-1} ρ^j`
//! and the fixed point satisfies
//!
//! ```text
//! ρ · (1 − ρᵏ) / (1 − ρ) = 1,      exit throughput = T · ρᵏ.
//! ```
//!
//! For k = 2 this is the golden-ratio equation (ρ = 0.618, exit = 0.382 T);
//! for k = 3, exit = 0.161 T — both matching §4. This module provides the
//! analytic solver, a generalized multi-class fixed point for traffic mixes,
//! and two simulators (deterministic fluid, randomized packet-level) whose
//! steady states converge to the analytic values — the cross-check behind
//! Fig. 8(a).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Solves the single-class delivery ratio ρ for `k` required recirculations:
/// the root of `ρ·(1−ρᵏ)/(1−ρ) = 1` in `(0, 1]`. For k ≤ 1 the loopback
/// port is not oversubscribed and ρ = 1.
pub fn delivery_ratio(k: usize) -> f64 {
    if k <= 1 {
        return 1.0;
    }
    // offered(ρ) = Σ_{j=0}^{k-1} ρ^j is increasing in ρ, so
    // f(ρ) = ρ·offered(ρ) − 1 is strictly increasing: bisect.
    let f = |rho: f64| -> f64 {
        let mut offered = 0.0;
        let mut p = 1.0;
        for _ in 0..k {
            offered += p;
            p *= rho;
        }
        rho * offered - 1.0
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Effective exit throughput for traffic injected at `t_gbps` (also the
/// loopback-port capacity) that must recirculate `k` times: `T·ρᵏ`.
pub fn effective_throughput_gbps(t_gbps: f64, k: usize) -> f64 {
    t_gbps * delivery_ratio(k).powi(k as i32)
}

/// One traffic class of the generalized model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficClass {
    /// Fresh injection rate in Gbps.
    pub rate_gbps: f64,
    /// Required recirculations per packet.
    pub recirculations: usize,
}

/// Result of solving a traffic mix over a shared loopback capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSolution {
    /// Converged delivery ratio at the loopback port.
    pub delivery_ratio: f64,
    /// Exit throughput per class, same order as the input.
    pub class_throughput_gbps: Vec<f64>,
    /// Total offered load at the loopback port at the fixed point.
    pub loopback_offered_gbps: f64,
}

impl MixSolution {
    /// Total exit throughput across classes.
    pub fn total_gbps(&self) -> f64 {
        self.class_throughput_gbps.iter().sum()
    }
}

/// Solves the multi-class feedback fixed point: classes share
/// `loopback_gbps` of recirculation capacity; class *i* offers
/// `F_i·Σ_{j=0}^{k_i−1} ρ^j` and exits at `F_i·ρ^{k_i}`.
pub fn solve_mix(classes: &[TrafficClass], loopback_gbps: f64) -> MixSolution {
    assert!(loopback_gbps > 0.0, "loopback capacity must be positive");
    let offered_at = |rho: f64| -> f64 {
        classes
            .iter()
            .map(|c| {
                let mut sum = 0.0;
                let mut p = 1.0;
                for _ in 0..c.recirculations {
                    sum += p;
                    p *= rho;
                }
                c.rate_gbps * sum
            })
            .sum()
    };
    // Fixed-point iteration: ρ ← min(1, C / offered(ρ)). The map is
    // monotone and bounded; damping guarantees convergence.
    let mut rho = 1.0f64;
    for _ in 0..10_000 {
        let offered = offered_at(rho);
        let next = if offered <= loopback_gbps {
            1.0
        } else {
            loopback_gbps / offered
        };
        let damped = 0.5 * rho + 0.5 * next;
        if (damped - rho).abs() < 1e-13 {
            rho = damped;
            break;
        }
        rho = damped;
    }
    MixSolution {
        delivery_ratio: rho,
        class_throughput_gbps: classes
            .iter()
            .map(|c| c.rate_gbps * rho.powi(c.recirculations as i32))
            .collect(),
        loopback_offered_gbps: offered_at(rho),
    }
}

/// Deterministic fluid simulation of the single-class feedback queue.
///
/// Each time slot, `t_gbps` of fresh traffic needing `k` recirculations
/// arrives; the loopback port delivers at most `t_gbps` per slot, dropping
/// the excess proportionally across passes; delivered pass-j traffic becomes
/// pass-j+1 arrivals in the next slot. Returns the exit rate averaged over
/// the final quarter of the run.
pub fn simulate_fluid(t_gbps: f64, k: usize, slots: usize) -> f64 {
    if k == 0 {
        return t_gbps;
    }
    let mut in_flight = vec![0.0f64; k]; // arrivals at the loopback port per pass
    let mut exits = Vec::with_capacity(slots);
    for _ in 0..slots {
        in_flight[0] += t_gbps;
        let offered: f64 = in_flight.iter().sum();
        let ratio = if offered <= t_gbps {
            1.0
        } else {
            t_gbps / offered
        };
        let mut next = vec![0.0f64; k];
        let mut exit = 0.0;
        for j in 0..k {
            let delivered = in_flight[j] * ratio;
            if j + 1 < k {
                next[j + 1] = delivered;
            } else {
                exit = delivered;
            }
        }
        in_flight = next;
        exits.push(exit);
    }
    let tail = &exits[slots - slots / 4..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

/// Randomized packet-level simulation of the same system.
///
/// `packets_per_slot` packets of fresh traffic arrive each slot, each
/// needing `k` recirculations; the loopback port serves at most
/// `packets_per_slot` per slot, selected uniformly at random from the
/// offered set (excess is dropped — tail drop under fan-in congestion).
/// Returns the exit rate as a fraction of the injection rate.
pub fn simulate_packet_level(k: usize, packets_per_slot: usize, slots: usize, seed: u64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // offered[j] = number of packets arriving at the loopback port on pass j.
    let mut offered = vec![0usize; k];
    let mut exited_tail = 0usize;
    let mut injected_tail = 0usize;
    let warmup = slots / 2;
    for slot in 0..slots {
        offered[0] += packets_per_slot;
        let total: usize = offered.iter().sum();
        let capacity = packets_per_slot;
        let mut next = vec![0usize; k];
        let mut exit = 0usize;
        if total <= capacity {
            for j in 0..k {
                if j + 1 < k {
                    next[j + 1] = offered[j];
                } else {
                    exit = offered[j];
                }
            }
        } else {
            // Serve `capacity` of `total`, hypergeometric across passes via
            // sequential sampling.
            let mut remaining_total = total;
            let mut remaining_cap = capacity;
            for j in 0..k {
                // Sample how many of this pass's packets are served.
                let mut served = 0usize;
                for _ in 0..offered[j] {
                    if remaining_cap > 0
                        && rng.gen_ratio(remaining_cap as u32, remaining_total as u32)
                    {
                        served += 1;
                        remaining_cap -= 1;
                    }
                    remaining_total -= 1;
                }
                if j + 1 < k {
                    next[j + 1] = served;
                } else {
                    exit = served;
                }
            }
        }
        offered = next;
        if slot >= warmup {
            exited_tail += exit;
            injected_tail += packets_per_slot;
        }
    }
    exited_tail as f64 / injected_tail as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_k2() {
        // §4: x = 0.62T at the fixed point, exit = 0.38T.
        let rho = delivery_ratio(2);
        assert!((rho - 0.618).abs() < 1e-3, "rho = {rho}");
        let thr = effective_throughput_gbps(100.0, 2);
        assert!((thr - 38.2).abs() < 0.1, "thr = {thr}");
    }

    #[test]
    fn paper_constants_k3() {
        // §4: "the effective throughput of the traffic with 3-recirculation
        // as 0.16T".
        let thr = effective_throughput_gbps(100.0, 3);
        assert!((thr - 16.1).abs() < 0.2, "thr = {thr}");
    }

    #[test]
    fn no_and_single_recirculation_are_full_rate() {
        assert_eq!(effective_throughput_gbps(100.0, 0), 100.0);
        assert_eq!(effective_throughput_gbps(100.0, 1), 100.0);
    }

    #[test]
    fn throughput_degrades_superlinearly() {
        // Fig. 8(a): each extra recirculation cuts throughput by more than
        // the previous linear share.
        let t: Vec<f64> = (1..=5)
            .map(|k| effective_throughput_gbps(100.0, k))
            .collect();
        for w in t.windows(2) {
            assert!(w[1] < w[0]);
            // ratio decreases: super-linear decay
            assert!(w[1] / w[0] < 0.75);
        }
        assert!(t[4] < 5.0, "5 recircs should be below 5 Gbps, got {}", t[4]);
    }

    #[test]
    fn mix_reduces_to_single_class() {
        let m = solve_mix(
            &[TrafficClass {
                rate_gbps: 100.0,
                recirculations: 2,
            }],
            100.0,
        );
        assert!((m.delivery_ratio - delivery_ratio(2)).abs() < 1e-6);
        assert!((m.class_throughput_gbps[0] - 38.2).abs() < 0.1);
    }

    #[test]
    fn mix_undersubscribed_is_lossless() {
        let m = solve_mix(
            &[
                TrafficClass {
                    rate_gbps: 20.0,
                    recirculations: 1,
                },
                TrafficClass {
                    rate_gbps: 30.0,
                    recirculations: 2,
                },
            ],
            100.0,
        );
        // Offered = 20 + 30·2 = 80 < 100 → ρ = 1, everything exits.
        assert_eq!(m.delivery_ratio, 1.0);
        assert_eq!(m.class_throughput_gbps, vec![20.0, 30.0]);
        assert!((m.loopback_offered_gbps - 80.0).abs() < 1e-9);
    }

    #[test]
    fn mix_oversubscribed_is_fair_by_ratio() {
        let m = solve_mix(
            &[
                TrafficClass {
                    rate_gbps: 100.0,
                    recirculations: 1,
                },
                TrafficClass {
                    rate_gbps: 100.0,
                    recirculations: 1,
                },
            ],
            100.0,
        );
        // Offered 200 over 100 → ρ = 0.5, each class exits at 50.
        assert!((m.delivery_ratio - 0.5).abs() < 1e-6);
        assert!((m.class_throughput_gbps[0] - 50.0).abs() < 1e-4);
    }

    #[test]
    fn fluid_simulation_matches_analytic() {
        for k in 1..=4 {
            let sim = simulate_fluid(100.0, k, 4000);
            let analytic = effective_throughput_gbps(100.0, k);
            assert!(
                (sim - analytic).abs() < 0.5,
                "k={k}: fluid {sim} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn packet_level_simulation_matches_analytic() {
        for k in [2usize, 3] {
            let frac = simulate_packet_level(k, 500, 400, 42);
            let analytic = delivery_ratio(k).powi(k as i32);
            assert!(
                (frac - analytic).abs() < 0.05,
                "k={k}: sim {frac} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn fluid_k0_passthrough() {
        assert_eq!(simulate_fluid(100.0, 0, 10), 100.0);
        assert_eq!(simulate_packet_level(0, 10, 10, 1), 1.0);
    }
}
