//! Latency model, calibrated to the paper's §4 measurements.
//!
//! The paper measures on an idle Tofino:
//!
//! * port-to-port latency ≈ **650 ns** (MAC in, ingress pipe, traffic
//!   manager, egress pipe, MAC out),
//! * on-chip recirculation adds ≈ **75 ns** ("via dedicated circuitry on the
//!   chip without serialization/de-serialization", ≈11.5 % of port-to-port),
//! * off-chip recirculation via a 1 m direct-attach cable adds ≈ **145 ns**
//!   (≈70 ns more than on-chip: SerDes + propagation).
//!
//! The decomposition below reproduces those aggregates while exposing the
//! per-component constants the switch simulator accumulates event by event.

/// Latency constants in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// MAC + SerDes on packet reception.
    pub mac_rx_ns: f64,
    /// MAC + SerDes on packet transmission.
    pub mac_tx_ns: f64,
    /// Parser latency per pipelet entry.
    pub parser_ns: f64,
    /// Latency of one MAU stage.
    pub stage_ns: f64,
    /// Deparser latency per pipelet exit.
    pub deparser_ns: f64,
    /// Traffic-manager transit (idle buffers).
    pub tm_ns: f64,
    /// Extra latency of one on-chip recirculation hop (egress deparser →
    /// ingress parser via dedicated circuitry; no SerDes).
    pub recirc_on_chip_ns: f64,
    /// Extra latency of one off-chip hop through a 1 m direct-attach cable
    /// (SerDes both ways + propagation).
    pub recirc_off_chip_ns: f64,
    /// Extra latency of a resubmission (ingress deparser → same ingress
    /// parser; the cheapest loop path).
    pub resubmit_ns: f64,
}

impl TimingModel {
    /// The calibrated Tofino model. With 12 stages per pipelet this yields
    /// exactly 650 ns port-to-port.
    pub fn tofino() -> Self {
        TimingModel {
            mac_rx_ns: 40.0,
            mac_tx_ns: 40.0,
            parser_ns: 60.0,
            stage_ns: 15.0,
            deparser_ns: 25.0,
            tm_ns: 40.0,
            recirc_on_chip_ns: 75.0,
            recirc_off_chip_ns: 145.0,
            resubmit_ns: 50.0,
        }
    }

    /// Latency of traversing one pipelet (parse, `stages` MAUs, deparse).
    pub fn pipelet_ns(&self, stages: usize) -> f64 {
        self.parser_ns + self.stage_ns * stages as f64 + self.deparser_ns
    }

    /// Port-to-port latency of the normal path (no recirculation): MAC in,
    /// ingress pipelet, TM, egress pipelet, MAC out.
    pub fn port_to_port_ns(&self, stages: usize) -> f64 {
        self.mac_rx_ns
            + self.pipelet_ns(stages)
            + self.tm_ns
            + self.pipelet_ns(stages)
            + self.mac_tx_ns
    }

    /// End-to-end latency of a path with `k` on-chip recirculations: each
    /// adds one recirculation hop plus a fresh ingress-pipe + TM + egress-
    /// pipe traversal.
    pub fn path_with_recircs_ns(&self, stages: usize, k: usize) -> f64 {
        self.port_to_port_ns(stages)
            + k as f64 * (self.recirc_on_chip_ns + self.pipelet_ns(stages) * 2.0 + self.tm_ns)
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::tofino()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_to_port_is_650ns() {
        let t = TimingModel::tofino();
        assert!((t.port_to_port_ns(12) - 650.0).abs() < 1e-9);
    }

    #[test]
    fn recirc_constants_match_paper() {
        let t = TimingModel::tofino();
        // On-chip ≈ 75 ns ≈ 11.5% of port-to-port (paper: "about 11.5%").
        assert!((t.recirc_on_chip_ns / t.port_to_port_ns(12) - 0.115).abs() < 0.002);
        // Off-chip ≈ 70 ns slower than on-chip.
        assert!((t.recirc_off_chip_ns - t.recirc_on_chip_ns - 70.0).abs() < 1e-9);
    }

    #[test]
    fn each_recirculation_adds_constant_latency() {
        let t = TimingModel::tofino();
        let base = t.path_with_recircs_ns(12, 0);
        let one = t.path_with_recircs_ns(12, 1);
        let two = t.path_with_recircs_ns(12, 2);
        assert!(one > base);
        assert!((two - one - (one - base)).abs() < 1e-9);
    }
}
