//! Switch-side telemetry: pre-registered handles over a
//! [`dejavu_telemetry::MetricsRegistry`].
//!
//! [`SwitchMetrics`] is built once per [`crate::Switch`] from the profile,
//! registering every per-pipelet, per-pipeline, and per-port series up
//! front so the packet path touches no names — each hook is a `bool` check
//! plus a relaxed atomic add by dense handle. The registry starts
//! *disabled* (hooks short-circuit on the `bool`), which is what keeps the
//! fast path within noise of the pre-telemetry build; `Switch::set_telemetry`
//! flips it on.
//!
//! Table hit/miss counters are *not* hooked per lookup — [`crate::tables`]
//! already counts them in `Cell`s on every lookup path. The switch folds
//! those into the exported `MetricsSnapshot` at scrape time instead
//! (`Switch::metrics_snapshot`), so the hot lookup loop pays nothing extra.

use crate::switch::{Gress, PipeletId, PortId};
use crate::tofino::TofinoProfile;
use dejavu_telemetry::{CounterId, GaugeId, HistogramId, MetricsRegistry};

/// Recirculation depths are tracked exactly up to this bound; deeper
/// packets land in the last bucket (`k="16+"`). Chains in the paper's
/// range (§4 evaluates k ≤ 4) are far below it.
pub const RECIRC_DEPTH_BUCKETS: usize = 16;

/// Pre-registered metric handles of one switch.
#[derive(Debug, Clone)]
pub struct SwitchMetrics {
    registry: MetricsRegistry,
    /// Indexed `pipeline * 2 + (gress == Egress)`.
    pipelet_packets: Vec<CounterId>,
    pipelet_drops: Vec<CounterId>,
    pipelet_parse_errors: Vec<CounterId>,
    pipelet_table_applies: Vec<CounterId>,
    /// Indexed by pipeline.
    recirculations: Vec<CounterId>,
    resubmissions: Vec<CounterId>,
    digests_emitted: Vec<CounterId>,
    digests_dropped: Vec<CounterId>,
    /// Indexed by physical port.
    port_rx: Vec<CounterId>,
    port_tx: Vec<CounterId>,
    /// Packets by final recirculation depth, clamped to the last bucket.
    recirc_depth: Vec<CounterId>,
    injected: CounterId,
    emitted: CounterId,
    dropped: CounterId,
    to_cpu: CounterId,
    mirrored: CounterId,
    rejected: CounterId,
    state_migrations: CounterId,
    state_entries_migrated: CounterId,
    latency_ns: HistogramId,
    table_entries: GaugeId,
}

fn pipelet_name(pipeline: usize, gress: Gress) -> PipeletId {
    PipeletId { pipeline, gress }
}

impl SwitchMetrics {
    /// Registers every series for a switch with this profile. The registry
    /// starts disabled.
    pub fn new(profile: &TofinoProfile) -> Self {
        let mut r = MetricsRegistry::new();
        let mut pipelet_packets = Vec::new();
        let mut pipelet_drops = Vec::new();
        let mut pipelet_parse_errors = Vec::new();
        let mut pipelet_table_applies = Vec::new();
        for p in 0..profile.pipelines {
            for gress in [Gress::Ingress, Gress::Egress] {
                let id = pipelet_name(p, gress);
                pipelet_packets.push(r.counter(&format!("pipelet_packets{{pipelet=\"{id}\"}}")));
                pipelet_drops.push(r.counter(&format!("pipelet_drops{{pipelet=\"{id}\"}}")));
                pipelet_parse_errors
                    .push(r.counter(&format!("pipelet_parse_errors{{pipelet=\"{id}\"}}")));
                pipelet_table_applies
                    .push(r.counter(&format!("pipelet_table_applies{{pipelet=\"{id}\"}}")));
            }
        }
        let recirculations = (0..profile.pipelines)
            .map(|p| r.counter(&format!("recirculations{{pipeline=\"{p}\"}}")))
            .collect();
        let resubmissions = (0..profile.pipelines)
            .map(|p| r.counter(&format!("resubmissions{{pipeline=\"{p}\"}}")))
            .collect();
        let digests_emitted = (0..profile.pipelines)
            .map(|p| r.counter(&format!("digests_emitted{{pipeline=\"{p}\"}}")))
            .collect();
        let digests_dropped = (0..profile.pipelines)
            .map(|p| r.counter(&format!("digests_dropped{{pipeline=\"{p}\"}}")))
            .collect();
        let ports = profile.total_ports();
        let port_rx = (0..ports)
            .map(|p| r.counter(&format!("port_rx_packets{{port=\"{p}\"}}")))
            .collect();
        let port_tx = (0..ports)
            .map(|p| r.counter(&format!("port_tx_packets{{port=\"{p}\"}}")))
            .collect();
        let recirc_depth = (0..=RECIRC_DEPTH_BUCKETS)
            .map(|k| {
                if k < RECIRC_DEPTH_BUCKETS {
                    r.counter(&format!("packet_recirc_depth{{k=\"{k}\"}}"))
                } else {
                    r.counter(&format!(
                        "packet_recirc_depth{{k=\"{RECIRC_DEPTH_BUCKETS}+\"}}"
                    ))
                }
            })
            .collect();
        SwitchMetrics {
            injected: r.counter("packets_injected"),
            emitted: r.counter("packets_emitted"),
            dropped: r.counter("packets_dropped"),
            to_cpu: r.counter("packets_to_cpu"),
            mirrored: r.counter("packets_mirrored"),
            rejected: r.counter("packets_rejected"),
            state_migrations: r.counter("state_migrations"),
            state_entries_migrated: r.counter("state_entries_migrated"),
            latency_ns: r.histogram("packet_latency_ns"),
            table_entries: r.gauge("table_entries_installed"),
            pipelet_packets,
            pipelet_drops,
            pipelet_parse_errors,
            pipelet_table_applies,
            recirculations,
            resubmissions,
            digests_emitted,
            digests_dropped,
            port_rx,
            port_tx,
            recirc_depth,
            registry: r,
        }
    }

    /// The backing registry (snapshot it with
    /// [`dejavu_telemetry::MetricsSnapshot::capture`]).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Whether collection is on.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// Turns collection on or off (accumulated values are kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.registry.set_enabled(enabled);
    }

    fn pidx(&self, pipelet: PipeletId) -> usize {
        pipelet.pipeline * 2 + usize::from(pipelet.gress == Gress::Egress)
    }

    /// A packet arrived: total + per-port rx (physical ports only).
    #[inline]
    pub fn on_rx(&self, port: PortId) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.inc(self.injected);
        if let Some(&id) = self.port_rx.get(usize::from(port)) {
            self.registry.inc(id);
        }
    }

    /// An injection was rejected before entering the pipeline (bad port,
    /// loopback port, link down, forwarding loop).
    #[inline]
    pub fn on_reject(&self) {
        self.registry.inc(self.rejected);
    }

    /// A pipelet pass completed, applying `tables_applied` tables.
    #[inline]
    pub fn on_pass(&self, pipelet: PipeletId, tables_applied: u32) {
        if !self.registry.is_enabled() {
            return;
        }
        let i = self.pidx(pipelet);
        self.registry.inc(self.pipelet_packets[i]);
        self.registry
            .add(self.pipelet_table_applies[i], u64::from(tables_applied));
    }

    /// A pipelet's parser rejected the packet.
    #[inline]
    pub fn on_parse_error(&self, pipelet: PipeletId) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry
            .inc(self.pipelet_parse_errors[self.pidx(pipelet)]);
    }

    /// The packet was dropped by an explicit decision of `pipelet`
    /// (attribution only; the `packets_dropped` total is booked once per
    /// traversal in [`SwitchMetrics::on_complete`]'s caller via
    /// [`SwitchMetrics::on_dropped`]).
    #[inline]
    pub fn on_drop(&self, pipelet: PipeletId) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.inc(self.pipelet_drops[self.pidx(pipelet)]);
    }

    /// The packet's final fate was a drop.
    #[inline]
    pub fn on_dropped(&self) {
        self.registry.inc(self.dropped);
    }

    /// The packet was punted to the CPU port.
    #[inline]
    pub fn on_to_cpu(&self) {
        self.registry.inc(self.to_cpu);
    }

    /// The packet was resubmitted to pipeline `pipeline`'s ingress.
    #[inline]
    pub fn on_resubmit(&self, pipeline: usize) {
        self.registry.inc(self.resubmissions[pipeline]);
    }

    /// The packet recirculated through a port of `pipeline`.
    #[inline]
    pub fn on_recirculate(&self, pipeline: usize) {
        self.registry.inc(self.recirculations[pipeline]);
    }

    /// The packet left the switch on `port`.
    #[inline]
    pub fn on_emit(&self, port: PortId) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.inc(self.emitted);
        if let Some(&id) = self.port_tx.get(usize::from(port)) {
            self.registry.inc(id);
        }
    }

    /// A mirror copy was emitted.
    #[inline]
    pub fn on_mirror(&self) {
        self.registry.inc(self.mirrored);
    }

    /// A digest was enqueued on `pipeline`'s learn queue.
    #[inline]
    pub fn on_digest(&self, pipeline: usize) {
        if !self.registry.is_enabled() {
            return;
        }
        if let Some(&id) = self.digests_emitted.get(pipeline) {
            self.registry.inc(id);
        }
    }

    /// A digest was lost because `pipeline`'s learn queue was full.
    #[inline]
    pub fn on_digest_dropped(&self, pipeline: usize) {
        if !self.registry.is_enabled() {
            return;
        }
        if let Some(&id) = self.digests_dropped.get(pipeline) {
            self.registry.inc(id);
        }
    }

    /// A state migration (snapshot restore) completed, carrying
    /// `entries_restored` table entries onto the new program.
    #[inline]
    pub fn on_migration(&self, entries_restored: usize) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.inc(self.state_migrations);
        self.registry
            .add(self.state_entries_migrated, entries_restored as u64);
    }

    /// A traversal finished: model latency and final recirculation depth.
    #[inline]
    pub fn on_complete(&self, latency_ns: f64, recirculations: usize) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.observe(self.latency_ns, latency_ns as u64);
        let k = recirculations.min(RECIRC_DEPTH_BUCKETS);
        self.registry.inc(self.recirc_depth[k]);
    }

    /// Refreshes scrape-time gauges (called by `Switch::metrics_snapshot`).
    pub fn set_table_entries(&self, total: usize) {
        self.registry.set_gauge(self.table_entries, total as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_telemetry::MetricsSnapshot;

    #[test]
    fn disabled_hooks_record_nothing() {
        let m = SwitchMetrics::new(&TofinoProfile::wedge_100b_32x());
        m.on_rx(0);
        m.on_pass(PipeletId::ingress(0), 3);
        m.on_complete(650.0, 2);
        assert!(MetricsSnapshot::capture(m.registry()).is_zero());
    }

    #[test]
    fn enabled_hooks_land_in_the_right_series() {
        let mut m = SwitchMetrics::new(&TofinoProfile::wedge_100b_32x());
        m.set_enabled(true);
        m.on_rx(3);
        m.on_pass(PipeletId::ingress(0), 2);
        m.on_pass(PipeletId::egress(1), 1);
        m.on_recirculate(1);
        m.on_emit(17);
        m.on_complete(725.0, 1);
        let s = MetricsSnapshot::capture(m.registry());
        assert_eq!(s.counter("packets_injected"), 1);
        assert_eq!(s.counter("port_rx_packets{port=\"3\"}"), 1);
        assert_eq!(s.counter("pipelet_packets{pipelet=\"ingress0\"}"), 1);
        assert_eq!(s.counter("pipelet_table_applies{pipelet=\"ingress0\"}"), 2);
        assert_eq!(s.counter("pipelet_packets{pipelet=\"egress1\"}"), 1);
        assert_eq!(s.counter("recirculations{pipeline=\"1\"}"), 1);
        assert_eq!(s.counter("port_tx_packets{port=\"17\"}"), 1);
        assert_eq!(s.counter("packet_recirc_depth{k=\"1\"}"), 1);
        assert_eq!(s.histogram("packet_latency_ns").unwrap().count, 1);
    }

    #[test]
    fn deep_recirculation_clamps_to_overflow_bucket() {
        let mut m = SwitchMetrics::new(&TofinoProfile::tiny());
        m.set_enabled(true);
        m.on_complete(1.0, 99);
        let s = MetricsSnapshot::capture(m.registry());
        assert_eq!(s.counter("packet_recirc_depth{k=\"16+\"}"), 1);
    }
}
