//! The match-action interpreter.
//!
//! Executes one pipelet's control logic — a `dejavu_p4ir::Program` entry
//! control — over a parsed packet and its metadata, against runtime table
//! state. This is the simulator's equivalent of the MAU array in Fig. 1 of
//! the paper: the parser has already produced the header view, the control
//! applies tables and actions, the deparser (in [`crate::packet`]) later
//! reserializes the result.
//!
//! The interpreter is deliberately faithful to hardware semantics where they
//! matter to Dejavu:
//!
//! * reads of invalid (absent) headers return zero,
//! * writes to invalid headers are dropped,
//! * table misses run the default action with its constant arguments,
//! * `switch (t.apply().action_run)` dispatches on the action that ran.

use crate::packet::ParsedPacket;
use crate::tables::TableState;
use dejavu_p4ir::action::{run_hash, ActionDef, Expr, PrimitiveOp};
use dejavu_p4ir::control::{BoolExpr, CmpOp, Stmt};
use dejavu_p4ir::{FieldRef, HeaderType, IrError, Program, Value};
use std::collections::{BTreeMap, HashMap};

/// One table application observed during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEvent {
    /// Table name.
    pub table: String,
    /// Whether an installed entry matched (false = default action ran).
    pub hit: bool,
    /// The action that ran.
    pub action: String,
}

/// Everything a pipelet execution produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipeletOutcome {
    /// Table applications in execution order.
    pub events: Vec<TableEvent>,
    /// Number of tables applied (the telemetry hook; counted at every
    /// trace level, identical to the compiled engine's count).
    pub tables_applied: u32,
}

/// Executes a program's entry control over parsed packets.
pub struct Interpreter<'a> {
    program: &'a Program,
    headers: HashMap<String, HeaderType>,
}

/// Runtime argument bindings of the currently executing action.
type Bindings = BTreeMap<String, Value>;

impl<'a> Interpreter<'a> {
    /// Creates an interpreter for a program. The program should already be
    /// validated; execution errors on dangling references regardless.
    pub fn new(program: &'a Program) -> Self {
        Interpreter {
            program,
            headers: program.header_map(),
        }
    }

    /// The header catalog in `HashMap` form (shared with parse/deparse).
    pub fn headers(&self) -> &HashMap<String, HeaderType> {
        &self.headers
    }

    /// Runs the entry control over `pp`/`meta` against `tables`.
    pub fn execute(
        &self,
        pp: &mut ParsedPacket,
        meta: &mut BTreeMap<String, Value>,
        tables: &mut TableState,
    ) -> Result<PipeletOutcome, IrError> {
        let entry = self
            .program
            .entry_control()
            .ok_or_else(|| IrError::Undefined {
                kind: "entry control",
                name: self.program.entry.clone(),
            })?;
        let mut outcome = PipeletOutcome::default();
        self.exec_stmts(&entry.body, pp, meta, tables, &mut outcome, 0)?;
        Ok(outcome)
    }

    fn exec_stmts(
        &self,
        stmts: &[Stmt],
        pp: &mut ParsedPacket,
        meta: &mut BTreeMap<String, Value>,
        tables: &mut TableState,
        outcome: &mut PipeletOutcome,
        depth: usize,
    ) -> Result<(), IrError> {
        if depth > 64 {
            return Err(IrError::Invalid("control call depth exceeded".into()));
        }
        for stmt in stmts {
            match stmt {
                Stmt::Apply(t) => {
                    self.apply_table(t, pp, meta, tables, outcome)?;
                }
                Stmt::ApplySelect {
                    table,
                    arms,
                    default,
                } => {
                    let ran = self.apply_table(table, pp, meta, tables, outcome)?;
                    let branch = arms
                        .iter()
                        .find(|(a, _)| *a == ran)
                        .map(|(_, b)| b.as_slice())
                        .unwrap_or(default.as_slice());
                    self.exec_stmts(branch, pp, meta, tables, outcome, depth)?;
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let taken = if self.eval_bool(cond, pp, meta, &Bindings::new())? {
                        then_branch
                    } else {
                        else_branch
                    };
                    self.exec_stmts(taken, pp, meta, tables, outcome, depth)?;
                }
                Stmt::Do(action) => {
                    let act = self.action(action)?;
                    if !act.params.is_empty() {
                        return Err(IrError::Invalid(format!(
                            "direct invocation of action {action} requires arguments"
                        )));
                    }
                    self.run_action(act, &[], pp, meta, tables)?;
                }
                Stmt::Call(c) => {
                    let cb = self.program.controls.get(c).ok_or(IrError::Undefined {
                        kind: "control block",
                        name: c.clone(),
                    })?;
                    self.exec_stmts(&cb.body, pp, meta, tables, outcome, depth + 1)?;
                }
            }
        }
        Ok(())
    }

    /// Applies a table; returns the name of the action that ran.
    fn apply_table(
        &self,
        name: &str,
        pp: &mut ParsedPacket,
        meta: &mut BTreeMap<String, Value>,
        tables: &mut TableState,
        outcome: &mut PipeletOutcome,
    ) -> Result<String, IrError> {
        let def = self.program.tables.get(name).ok_or(IrError::Undefined {
            kind: "table",
            name: name.to_string(),
        })?;
        let keys: Vec<Value> = def
            .keys
            .iter()
            .map(|k| self.read_field(&k.field, pp, meta))
            .collect::<Result<_, _>>()?;
        // The ordinal-returning lookup avoids cloning the whole entry per
        // hit: the action name is borrowed from the definition's action
        // list, and only the (small) argument vector is copied out so the
        // table borrow can be released before the action runs.
        let (action_name, args, hit) = match tables.lookup_ref_ord(def, &keys) {
            Some((ord, entry)) => (def.actions[ord].as_str(), entry.action_args.clone(), true),
            None => (
                def.default_action.as_str(),
                def.default_action_args.clone(),
                false,
            ),
        };
        let act = self.action(action_name)?;
        self.run_action(act, &args, pp, meta, tables)?;
        outcome.tables_applied += 1;
        outcome.events.push(TableEvent {
            table: name.to_string(),
            hit,
            action: action_name.to_string(),
        });
        Ok(action_name.to_string())
    }

    fn action(&self, name: &str) -> Result<&ActionDef, IrError> {
        self.program.actions.get(name).ok_or(IrError::Undefined {
            kind: "action",
            name: name.to_string(),
        })
    }

    fn run_action(
        &self,
        act: &ActionDef,
        args: &[Value],
        pp: &mut ParsedPacket,
        meta: &mut BTreeMap<String, Value>,
        tables: &mut TableState,
    ) -> Result<(), IrError> {
        if args.len() != act.params.len() {
            return Err(IrError::Invalid(format!(
                "action {}: expected {} args, got {}",
                act.name,
                act.params.len(),
                args.len()
            )));
        }
        let bindings: Bindings = act
            .params
            .iter()
            .zip(args)
            .map(|((n, bits), v)| (n.clone(), v.resize(*bits)))
            .collect();
        for op in &act.ops {
            match op {
                PrimitiveOp::Set { dst, value } => {
                    let v = self.eval(value, pp, meta, &bindings)?;
                    self.write_field(dst, v, pp, meta)?;
                }
                PrimitiveOp::Hash { dst, algo, inputs } => {
                    let vals: Vec<Value> = inputs
                        .iter()
                        .map(|e| self.eval(e, pp, meta, &bindings))
                        .collect::<Result<_, _>>()?;
                    let raw = run_hash(*algo, &vals);
                    let width = self.field_width(dst)?;
                    self.write_field(dst, Value::new(raw, width), pp, meta)?;
                }
                PrimitiveOp::AddHeader { header, before } => {
                    let ht = self.headers.get(header).ok_or(IrError::Undefined {
                        kind: "header type",
                        name: header.clone(),
                    })?;
                    pp.add_header(ht, before.as_deref());
                }
                PrimitiveOp::RemoveHeader { header } => {
                    pp.remove_header(header);
                }
                PrimitiveOp::RemoveHeaderNth { header, occurrence } => {
                    pp.remove_header_nth(header, *occurrence);
                }
                PrimitiveOp::RegisterRead {
                    dst,
                    register,
                    index,
                } => {
                    let def = self.register_def(register)?;
                    let idx = self.eval(index, pp, meta, &bindings)?.raw() as u32;
                    let val = tables.register_read(def, idx);
                    self.write_field(dst, Value::new(val, def.width_bits), pp, meta)?;
                }
                PrimitiveOp::RegisterWrite {
                    register,
                    index,
                    value,
                } => {
                    let def = self.register_def(register)?;
                    let idx = self.eval(index, pp, meta, &bindings)?.raw() as u32;
                    let val = self.eval(value, pp, meta, &bindings)?.raw();
                    tables.register_write(def, idx, val);
                }
                PrimitiveOp::Ipv4ChecksumUpdate { header } => {
                    self.update_checksum(header, pp)?;
                }
                PrimitiveOp::Digest { name, fields } => {
                    let vals: Vec<Value> = fields
                        .iter()
                        .map(|e| self.eval(e, pp, meta, &bindings))
                        .collect::<Result<_, _>>()?;
                    tables.emit_digest(name, vals);
                }
                PrimitiveOp::Drop => {
                    meta.insert("drop_flag".into(), Value::new(1, 1));
                }
                PrimitiveOp::NoOp => {}
            }
        }
        Ok(())
    }

    fn register_def(&self, name: &str) -> Result<&dejavu_p4ir::table::RegisterDef, IrError> {
        self.program.registers.get(name).ok_or(IrError::Undefined {
            kind: "register",
            name: name.to_string(),
        })
    }

    /// Recomputes the ones-complement checksum of a header instance,
    /// storing it in its `hdr_checksum` field. No-op when the header is
    /// absent (hardware semantics).
    fn update_checksum(&self, header: &str, pp: &mut ParsedPacket) -> Result<(), IrError> {
        let ht = self.headers.get(header).ok_or(IrError::Undefined {
            kind: "header type",
            name: header.to_string(),
        })?;
        if ht.field("hdr_checksum").is_none() {
            return Err(IrError::Invalid(format!(
                "header {header} has no hdr_checksum field"
            )));
        }
        let Some(idx) = pp.find(header) else {
            return Ok(());
        };
        pp.headers[idx]
            .fields
            .insert("hdr_checksum".into(), Value::new(0, 16));
        let bytes = pp.headers[idx].serialize(ht);
        let sum = ones_complement_checksum(&bytes);
        pp.headers[idx]
            .fields
            .insert("hdr_checksum".into(), Value::new(u128::from(sum), 16));
        Ok(())
    }

    /// Declared width of a field reference (for hash destinations and
    /// zero-fills).
    fn field_width(&self, fr: &FieldRef) -> Result<u16, IrError> {
        self.program.field_width(fr).ok_or(IrError::Undefined {
            kind: "field",
            name: fr.to_string(),
        })
    }

    /// Reads a field: metadata from the map (zero-filled at declared width
    /// when unset), header fields from the parsed view (zero when the header
    /// is invalid — hardware semantics).
    fn read_field(
        &self,
        fr: &FieldRef,
        pp: &ParsedPacket,
        meta: &BTreeMap<String, Value>,
    ) -> Result<Value, IrError> {
        let width = self.field_width(fr)?;
        if fr.is_meta() {
            return Ok(meta
                .get(&fr.field)
                .map(|v| v.resize(width))
                .unwrap_or(Value::new(0, width)));
        }
        Ok(pp.get(fr).unwrap_or(Value::new(0, width)))
    }

    fn write_field(
        &self,
        fr: &FieldRef,
        v: Value,
        pp: &mut ParsedPacket,
        meta: &mut BTreeMap<String, Value>,
    ) -> Result<(), IrError> {
        let width = self.field_width(fr)?;
        if fr.is_meta() {
            meta.insert(fr.field.clone(), v.resize(width));
        } else {
            // Writes to invalid headers are silently dropped, as on hardware.
            let _ = pp.set(fr, v.resize(width));
        }
        Ok(())
    }

    fn eval(
        &self,
        expr: &Expr,
        pp: &ParsedPacket,
        meta: &BTreeMap<String, Value>,
        bindings: &Bindings,
    ) -> Result<Value, IrError> {
        Ok(match expr {
            Expr::Const(v) => *v,
            Expr::Field(fr) => self.read_field(fr, pp, meta)?,
            Expr::Param(p) => *bindings.get(p).ok_or_else(|| IrError::Undefined {
                kind: "action parameter",
                name: p.clone(),
            })?,
            Expr::Add(a, b) => {
                let (a, b) = (
                    self.eval(a, pp, meta, bindings)?,
                    self.eval(b, pp, meta, bindings)?,
                );
                a.wrapping_add(b)
            }
            Expr::Sub(a, b) => {
                let (a, b) = (
                    self.eval(a, pp, meta, bindings)?,
                    self.eval(b, pp, meta, bindings)?,
                );
                a.wrapping_sub(b)
            }
            Expr::And(a, b) => {
                let (a, b) = (
                    self.eval(a, pp, meta, bindings)?,
                    self.eval(b, pp, meta, bindings)?,
                );
                a.and(b)
            }
            Expr::Or(a, b) => {
                let (a, b) = (
                    self.eval(a, pp, meta, bindings)?,
                    self.eval(b, pp, meta, bindings)?,
                );
                a.or(b)
            }
            Expr::Xor(a, b) => {
                let (a, b) = (
                    self.eval(a, pp, meta, bindings)?,
                    self.eval(b, pp, meta, bindings)?,
                );
                a.xor(b)
            }
            Expr::Shl(a, amount) => self.eval(a, pp, meta, bindings)?.shl(*amount),
            Expr::Shr(a, amount) => self.eval(a, pp, meta, bindings)?.shr(*amount),
        })
    }

    fn eval_bool(
        &self,
        cond: &BoolExpr,
        pp: &ParsedPacket,
        meta: &BTreeMap<String, Value>,
        bindings: &Bindings,
    ) -> Result<bool, IrError> {
        Ok(match cond {
            BoolExpr::Cmp(a, op, b) => {
                let (a, b) = (
                    self.eval(a, pp, meta, bindings)?,
                    self.eval(b, pp, meta, bindings)?,
                );
                match op {
                    CmpOp::Eq => a.raw() == b.raw(),
                    CmpOp::Ne => a.raw() != b.raw(),
                    CmpOp::Lt => a.raw() < b.raw(),
                    CmpOp::Le => a.raw() <= b.raw(),
                    CmpOp::Gt => a.raw() > b.raw(),
                    CmpOp::Ge => a.raw() >= b.raw(),
                }
            }
            BoolExpr::And(a, b) => {
                self.eval_bool(a, pp, meta, bindings)? && self.eval_bool(b, pp, meta, bindings)?
            }
            BoolExpr::Or(a, b) => {
                self.eval_bool(a, pp, meta, bindings)? || self.eval_bool(b, pp, meta, bindings)?
            }
            BoolExpr::Not(a) => !self.eval_bool(a, pp, meta, bindings)?,
            BoolExpr::Valid(h) => pp.is_valid(h),
        })
    }
}

/// RFC 1071 ones-complement checksum over big-endian 16-bit words (odd
/// trailing byte padded with zero).
pub fn ones_complement_checksum(bytes: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = bytes.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::action::HashAlgorithm;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::fref;
    use dejavu_p4ir::table::{KeyMatch, TableEntry};
    use dejavu_p4ir::well_known;

    /// A miniature L4 load balancer modelled on the paper's Fig. 4:
    /// hash the 5-tuple, look it up in `lb_session`, rewrite dst IP on hit,
    /// set `to_cpu_flag` on miss.
    fn lb_program() -> Program {
        ProgramBuilder::new("lb")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .header(well_known::tcp())
            .header(well_known::udp())
            .meta_field("session_hash", 32)
            .parser(well_known::eth_ip_l4_parser())
            .action(
                ActionBuilder::new("compute_hash")
                    .hash(
                        FieldRef::meta("session_hash"),
                        HashAlgorithm::Crc32,
                        vec![
                            Expr::field("ipv4", "src_addr"),
                            Expr::field("ipv4", "dst_addr"),
                            Expr::field("ipv4", "protocol"),
                            Expr::field("tcp", "src_port"),
                            Expr::field("tcp", "dst_port"),
                        ],
                    )
                    .build(),
            )
            .action(
                ActionBuilder::new("modify_dst_ip")
                    .param("dip", 32)
                    .set(fref("ipv4", "dst_addr"), Expr::Param("dip".into()))
                    .build(),
            )
            .action(
                ActionBuilder::new("to_cpu")
                    .set(FieldRef::meta("to_cpu_flag"), Expr::val(1, 1))
                    .build(),
            )
            .table(
                TableBuilder::new("lb_session")
                    .key_exact(FieldRef::meta("session_hash"))
                    .action("modify_dst_ip")
                    .default_action("to_cpu")
                    .size(1024)
                    .build(),
            )
            .control(
                ControlBuilder::new("ingress")
                    .invoke("compute_hash")
                    .apply("lb_session")
                    .build(),
            )
            .entry("ingress")
            .build()
            .unwrap()
    }

    fn tcp_packet() -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[22] = 64;
        p[23] = 6;
        p[26..30].copy_from_slice(&[10, 0, 0, 1]);
        p[30..34].copy_from_slice(&[203, 0, 113, 80]); // VIP
        p[34..36].copy_from_slice(&0x3039u16.to_be_bytes());
        p[36..38].copy_from_slice(&80u16.to_be_bytes());
        p
    }

    fn run(
        program: &Program,
        tables: &mut TableState,
        bytes: &[u8],
    ) -> (ParsedPacket, BTreeMap<String, Value>, PipeletOutcome) {
        let interp = Interpreter::new(program);
        let mut pp = ParsedPacket::parse(bytes, &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        let outcome = interp.execute(&mut pp, &mut meta, tables).unwrap();
        (pp, meta, outcome)
    }

    #[test]
    fn lb_miss_goes_to_cpu() {
        let program = lb_program();
        let mut tables = TableState::new();
        let (pp, meta, outcome) = run(&program, &mut tables, &tcp_packet());
        assert_eq!(meta["to_cpu_flag"].raw(), 1);
        // dst IP unchanged
        assert_eq!(pp.get(&fref("ipv4", "dst_addr")).unwrap().raw(), 0xcb007150);
        assert_eq!(outcome.events.len(), 1);
        assert!(!outcome.events[0].hit);
        assert_eq!(outcome.events[0].action, "to_cpu");
    }

    #[test]
    fn lb_hit_rewrites_dst_ip() {
        let program = lb_program();
        let mut tables = TableState::new();
        // First run to learn the session hash (as the control plane would).
        let (_, meta, _) = run(&program, &mut tables, &tcp_packet());
        let hash = meta["session_hash"];
        let def = program.tables.get("lb_session").unwrap();
        tables
            .install(
                def,
                TableEntry {
                    matches: vec![KeyMatch::Exact(hash)],
                    action: "modify_dst_ip".into(),
                    action_args: vec![Value::new(0x0a000063, 32)], // 10.0.0.99
                    priority: 0,
                },
            )
            .unwrap();
        let (pp, meta, outcome) = run(&program, &mut tables, &tcp_packet());
        assert_eq!(pp.get(&fref("ipv4", "dst_addr")).unwrap().raw(), 0x0a000063);
        assert_eq!(meta.get("to_cpu_flag").map(|v| v.raw()), None);
        assert!(outcome.events[0].hit);
    }

    #[test]
    fn apply_select_dispatches_on_action_run() {
        // Build a program where a table's action_run selects a branch.
        let program = ProgramBuilder::new("sel")
            .header(well_known::ethernet())
            .meta_field("mark", 8)
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(ActionBuilder::new("a1").build())
            .action(ActionBuilder::new("a2").build())
            .action(
                ActionBuilder::new("set_mark")
                    .set(FieldRef::meta("mark"), Expr::val(7, 8))
                    .build(),
            )
            .action(
                ActionBuilder::new("set_mark2")
                    .set(FieldRef::meta("mark"), Expr::val(9, 8))
                    .build(),
            )
            .table(
                TableBuilder::new("chooser")
                    .key_exact(fref("ethernet", "ether_type"))
                    .action("a1")
                    .default_action("a2")
                    .build(),
            )
            .table(
                TableBuilder::new("m1")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .default_action("set_mark")
                    .build(),
            )
            .table(
                TableBuilder::new("m2")
                    .key_exact(fref("ethernet", "dst_mac"))
                    .default_action("set_mark2")
                    .build(),
            )
            .control(
                ControlBuilder::new("ingress")
                    .stmt(Stmt::ApplySelect {
                        table: "chooser".into(),
                        arms: vec![("a1".into(), vec![Stmt::Apply("m1".into())])],
                        default: vec![Stmt::Apply("m2".into())],
                    })
                    .build(),
            )
            .entry("ingress")
            .build()
            .unwrap();

        let mut tables = TableState::new();
        // miss → a2 → default branch → m2 → mark = 9
        let (_, meta, _) = run(&program, &mut tables, &[0u8; 14]);
        assert_eq!(meta["mark"].raw(), 9);
        // install an entry so ether_type 0 hits a1 → m1 → mark = 7
        let def = program.tables.get("chooser").unwrap();
        tables
            .install(
                def,
                TableEntry {
                    matches: vec![KeyMatch::Exact(Value::new(0, 16))],
                    action: "a1".into(),
                    action_args: vec![],
                    priority: 0,
                },
            )
            .unwrap();
        let (_, meta, _) = run(&program, &mut tables, &[0u8; 14]);
        assert_eq!(meta["mark"].raw(), 7);
    }

    #[test]
    fn if_branches_on_metadata_and_validity() {
        let program = ProgramBuilder::new("iff")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .meta_field("seen_ip", 8)
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("mark_ip")
                    .set(FieldRef::meta("seen_ip"), Expr::val(1, 8))
                    .build(),
            )
            .control(
                ControlBuilder::new("ingress")
                    .stmt(Stmt::If {
                        cond: BoolExpr::Valid("ipv4".into()),
                        then_branch: vec![Stmt::Do("mark_ip".into())],
                        else_branch: vec![],
                    })
                    .build(),
            )
            .entry("ingress")
            .build()
            .unwrap();

        let mut tables = TableState::new();
        let mut ip_pkt = vec![0u8; 34];
        ip_pkt[12] = 0x08;
        let (_, meta, _) = run(&program, &mut tables, &ip_pkt);
        assert_eq!(meta["seen_ip"].raw(), 1);
        let (_, meta, _) = run(&program, &mut tables, &[0u8; 14]);
        assert!(!meta.contains_key("seen_ip"));
    }

    #[test]
    fn drop_primitive_sets_flag() {
        let program = ProgramBuilder::new("dropper")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(ActionBuilder::new("deny").drop_packet().build())
            .table(
                TableBuilder::new("acl")
                    .key_exact(fref("ethernet", "src_mac"))
                    .default_action("deny")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("acl").build())
            .entry("ingress")
            .build()
            .unwrap();
        let mut tables = TableState::new();
        let (_, meta, _) = run(&program, &mut tables, &[0u8; 14]);
        assert_eq!(meta["drop_flag"].raw(), 1);
    }

    #[test]
    fn wrong_arity_direct_invoke_errors() {
        let program = lb_program();
        let interp = Interpreter::new(&program);
        // "modify_dst_ip" has a parameter; invoking it directly must fail.
        let mut pp = ParsedPacket::parse(&tcp_packet(), &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        let bad = dejavu_p4ir::ControlBlock::new("x", vec![Stmt::Do("modify_dst_ip".into())]);
        let mut program2 = program.clone();
        program2.controls.insert("x".into(), bad);
        program2.entry = "x".into();
        let interp2 = Interpreter::new(&program2);
        let mut tables = TableState::new();
        assert!(interp2.execute(&mut pp, &mut meta, &mut tables).is_err());
    }

    #[test]
    fn registers_count_across_packets() {
        // A per-protocol packet counter: counter[proto & 0xf] += 1.
        let program = ProgramBuilder::new("counter")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .meta_field("cnt", 32)
            .register("pkt_count", 32, 16)
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("count")
                    .reg_read(
                        FieldRef::meta("cnt"),
                        "pkt_count",
                        Expr::field("ipv4", "protocol"),
                    )
                    .reg_write(
                        "pkt_count",
                        Expr::field("ipv4", "protocol"),
                        Expr::Add(Box::new(Expr::meta("cnt")), Box::new(Expr::val(1, 32))),
                    )
                    .build(),
            )
            .control(ControlBuilder::new("ingress").invoke("count").build())
            .entry("ingress")
            .build()
            .unwrap();
        let mut tables = TableState::new();
        let mut pkt = vec![0u8; 34];
        pkt[12] = 0x08;
        pkt[23] = 6;
        for expect in 0..3u128 {
            let (_, meta, _) = run(&program, &mut tables, &pkt);
            // The read sees the value *before* this packet's increment.
            assert_eq!(meta["cnt"].raw(), expect);
        }
        // Index wraps modulo the array size (16): proto 6 and 22 share.
        let def = program.registers.get("pkt_count").unwrap();
        assert_eq!(tables.register_read(def, 6), 3);
        assert_eq!(tables.register_read(def, 22), 3);
        assert_eq!(tables.register_peek("pkt_count", 7), Some(0));
    }

    #[test]
    fn checksum_extern_computes_rfc1071() {
        let program = ProgramBuilder::new("ck")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(ActionBuilder::new("fix").update_checksum("ipv4").build())
            .control(ControlBuilder::new("ingress").invoke("fix").build())
            .entry("ingress")
            .build()
            .unwrap();
        let mut tables = TableState::new();
        // A real IPv4 header (from RFC 1071 examples territory): verify the
        // recomputed checksum makes the ones-complement sum 0xffff.
        let mut pkt = vec![0u8; 34];
        pkt[12] = 0x08;
        pkt[14] = 0x45;
        pkt[22] = 64;
        pkt[23] = 6;
        pkt[26..30].copy_from_slice(&[10, 0, 0, 1]);
        pkt[30..34].copy_from_slice(&[10, 0, 0, 2]);
        let (pp, _, _) = run(&program, &mut tables, &pkt);
        let bytes = pp.deparse(Interpreter::new(&program).headers()).unwrap();
        let ip = &bytes[14..34];
        // Validity check: checksum over the full header must be zero.
        assert_eq!(ones_complement_checksum(ip), 0, "header checksums to zero");
        // And it is non-trivial.
        assert_ne!(u16::from_be_bytes([ip[10], ip[11]]), 0);
    }

    #[test]
    fn checksum_known_vector() {
        // Wikipedia's canonical IPv4 header example: checksum 0xB861.
        let hdr: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(ones_complement_checksum(&hdr), 0xb861);
    }

    #[test]
    fn header_add_remove_via_action() {
        let sfc =
            HeaderType::new("sfc", vec![("path_id", 16u16), ("index", 8), ("pad", 8)]).unwrap();
        let program = ProgramBuilder::new("encap")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .header(sfc)
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("push_sfc")
                    .add_header("sfc", Some("ipv4"))
                    .set(fref("sfc", "path_id"), Expr::val(3, 16))
                    .set(fref("ethernet", "ether_type"), Expr::val(0x88B5, 16))
                    .build(),
            )
            .control(ControlBuilder::new("ingress").invoke("push_sfc").build())
            .entry("ingress")
            .build()
            .unwrap();
        let mut tables = TableState::new();
        let mut pkt = vec![0u8; 34];
        pkt[12] = 0x08;
        let (pp, _, _) = run(&program, &mut tables, &pkt);
        assert!(pp.is_valid("sfc"));
        assert_eq!(pp.find("sfc"), Some(1));
        assert_eq!(pp.get(&fref("sfc", "path_id")).unwrap().raw(), 3);
        let bytes = pp.deparse(Interpreter::new(&program).headers()).unwrap();
        assert_eq!(bytes.len(), 38);
        assert_eq!(&bytes[12..14], &[0x88, 0xb5]);
    }
}
