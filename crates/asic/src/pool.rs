//! Pooled packet buffers — the zero-allocation buffer layer of the
//! run-to-completion engine.
//!
//! A [`PacketPool`] owns a bounded set of fixed-capacity byte buffers. The
//! run-to-completion path acquires a [`PacketHandle`] per packet, fills it
//! with wire bytes, and carries the *same* handle through every parse /
//! modify / deparse / recirculate step; when the handle drops, its buffer
//! returns to the pool with capacity intact. After the first lap through
//! the pool every acquisition is a `Vec` move — no heap traffic.
//!
//! Safety under `forbid(unsafe_code)`: the handle is plain RAII over an
//! owned `Vec<u8>` plus an `Arc` back-reference to the pool's shared free
//! list. There is no aliasing, no lifetime laundering, and exhaustion is a
//! *counted* condition ([`PacketPool::exhausted`]) surfaced to telemetry as
//! `pool_exhausted` — never a panic, never a fallback allocation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shared pool state: the free list and the accounting counters.
#[derive(Debug)]
struct PoolShared {
    free: Mutex<Vec<Vec<u8>>>,
    /// Total buffers the pool was created with.
    capacity: usize,
    /// Byte capacity each buffer is pre-allocated to.
    buf_capacity: usize,
    /// Buffers currently held by live handles.
    in_use: AtomicUsize,
    /// Failed acquisitions (the `pool_exhausted` telemetry counter).
    exhausted: AtomicU64,
}

/// A bounded pool of reusable fixed-capacity packet buffers.
///
/// Cloning the pool clones the *handle to the same pool* (the shared state
/// is behind an `Arc`), so producers and consumers on different threads
/// can acquire and release against one free list.
#[derive(Debug, Clone)]
pub struct PacketPool {
    shared: Arc<PoolShared>,
}

impl PacketPool {
    /// Creates a pool of `capacity` buffers, each pre-allocated to
    /// `buf_capacity` bytes.
    pub fn new(capacity: usize, buf_capacity: usize) -> Self {
        let free = (0..capacity)
            .map(|_| Vec::with_capacity(buf_capacity))
            .collect();
        PacketPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(free),
                capacity,
                buf_capacity,
                in_use: AtomicUsize::new(0),
                exhausted: AtomicU64::new(0),
            }),
        }
    }

    /// Acquires a buffer, or `None` when the pool is exhausted (counted in
    /// [`PacketPool::exhausted`] — the caller decides whether to
    /// backpressure or drop; this method never blocks, panics, or
    /// allocates a fallback buffer).
    pub fn acquire(&self) -> Option<PacketHandle> {
        let buf = {
            let mut free = self.shared.free.lock().expect("pool lock");
            free.pop()
        };
        match buf {
            Some(mut buf) => {
                buf.clear();
                self.shared.in_use.fetch_add(1, Ordering::Relaxed);
                Some(PacketHandle {
                    buf,
                    shared: Arc::clone(&self.shared),
                })
            }
            None => {
                self.shared.exhausted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Acquires a buffer pre-filled with a copy of `bytes` (the ingress
    /// path: wire bytes enter the pooled world exactly once).
    pub fn acquire_copy(&self, bytes: &[u8]) -> Option<PacketHandle> {
        let mut h = self.acquire()?;
        h.extend_from_slice(bytes);
        Some(h)
    }

    /// Buffers currently held by live handles.
    pub fn in_use(&self) -> usize {
        self.shared.in_use.load(Ordering::Relaxed)
    }

    /// Buffers available for acquisition right now.
    pub fn available(&self) -> usize {
        self.shared.free.lock().expect("pool lock").len()
    }

    /// Total buffers the pool was created with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Byte capacity each buffer was pre-allocated to.
    pub fn buf_capacity(&self) -> usize {
        self.shared.buf_capacity
    }

    /// Failed acquisitions so far — the `pool_exhausted` telemetry series.
    pub fn exhausted(&self) -> u64 {
        self.shared.exhausted.load(Ordering::Relaxed)
    }
}

/// RAII guard over one pooled buffer. Derefs to `Vec<u8>` so the packet
/// paths treat it as an ordinary byte buffer; dropping it returns the
/// buffer (capacity intact) to the pool's free list.
#[derive(Debug)]
pub struct PacketHandle {
    buf: Vec<u8>,
    shared: Arc<PoolShared>,
}

impl std::ops::Deref for PacketHandle {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PacketHandle {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PacketHandle {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        self.shared.in_use.fetch_sub(1, Ordering::Relaxed);
        // A poisoned lock only happens if another thread panicked while
        // returning a buffer; losing this buffer is then the benign
        // outcome (the pool shrinks, nothing dangles).
        if let Ok(mut free) = self.shared.free.lock() {
            free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycles_buffers() {
        let pool = PacketPool::new(2, 64);
        assert_eq!(pool.available(), 2);
        let a = pool.acquire().unwrap();
        let b = pool.acquire_copy(&[1, 2, 3]).unwrap();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(pool.in_use(), 2);
        assert_eq!(pool.available(), 0);
        drop(a);
        drop(b);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.available(), 2);
        // Reacquired buffers come back cleared with capacity intact.
        let c = pool.acquire().unwrap();
        assert!(c.is_empty());
        assert!(c.capacity() >= 64);
    }

    #[test]
    fn exhaustion_is_counted_not_fatal() {
        let pool = PacketPool::new(1, 16);
        let held = pool.acquire().unwrap();
        assert!(pool.acquire().is_none());
        assert!(pool.acquire().is_none());
        assert_eq!(pool.exhausted(), 2);
        drop(held);
        assert!(pool.acquire().is_some());
    }

    #[test]
    fn pool_is_shared_across_clones_and_threads() {
        let pool = PacketPool::new(4, 32);
        let remote = pool.clone();
        let t = std::thread::spawn(move || {
            let h = remote.acquire_copy(&[9; 8]).unwrap();
            h.len()
        });
        assert_eq!(t.join().unwrap(), 8);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.available(), 4);
    }
}
