//! Packet representation: raw bytes ↔ parsed header view.
//!
//! A packet enters a pipelet as raw bytes, is parsed into a [`ParsedPacket`]
//! (ordered header instances with all field values extracted, plus the
//! unparsed payload), is manipulated by match-action processing, and is
//! *deparsed* back to bytes at the end of the pipelet — exactly the
//! parse/deparse cycle of the PSA architecture in the paper's Fig. 1.
//!
//! Crucially, **user metadata does not survive deparsing**: when a packet
//! crosses the traffic manager, is resubmitted, or is recirculated, only the
//! bytes (and a small set of platform-carried intrinsic fields) persist.
//! This is the hardware reality that motivates Dejavu's SFC header carrying
//! chain state in-band.

use dejavu_p4ir::{deposit_bits, extract_bits, FieldRef, HeaderType, ParserDag, Value};
use std::collections::{BTreeMap, HashMap};

/// One parsed header instance: a header type plus its extracted fields.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderInstance {
    /// Header type name.
    pub header_type: String,
    /// Field values keyed by field name.
    pub fields: BTreeMap<String, Value>,
}

impl HeaderInstance {
    /// A zero-initialized instance of the given type.
    pub fn zeroed(ht: &HeaderType) -> Self {
        HeaderInstance {
            header_type: ht.name.clone(),
            fields: ht
                .fields
                .iter()
                .map(|f| (f.name.clone(), Value::new(0, f.bits)))
                .collect(),
        }
    }

    /// Serializes this instance using its type definition.
    pub fn serialize(&self, ht: &HeaderType) -> Vec<u8> {
        let mut bytes = vec![0u8; ht.total_bytes() as usize];
        let mut bit_off = 0u64;
        for f in &ht.fields {
            let v = self
                .fields
                .get(&f.name)
                .copied()
                .unwrap_or(Value::new(0, f.bits));
            deposit_bits(&mut bytes, bit_off, v.resize(f.bits));
            bit_off += u64::from(f.bits);
        }
        bytes
    }
}

/// The parsed view of a packet inside a pipelet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedPacket {
    /// Header instances in wire order.
    pub headers: Vec<HeaderInstance>,
    /// Bytes following the last parsed header.
    pub payload: Vec<u8>,
}

impl ParsedPacket {
    /// Parses `bytes` with the given parser DAG and header catalog.
    ///
    /// Extraction walks the DAG (validating select transitions against the
    /// actual bytes) and pulls every field of every accepted header out of
    /// the byte stream. Gaps between consecutive headers are disallowed by
    /// the DAG's offset discipline in practice; any bytes between the end of
    /// one header and the start of the next would indicate a skipping parser
    /// and are folded into the next header's position (we require contiguous
    /// layouts, which all programs in this workspace use).
    pub fn parse(
        bytes: &[u8],
        dag: &ParserDag,
        headers: &HashMap<String, HeaderType>,
    ) -> Result<Self, dejavu_p4ir::IrError> {
        let path = dag.parse(headers, bytes)?;
        let mut out = ParsedPacket::default();
        let mut consumed = 0usize;
        for (type_name, offset) in path {
            let ht = &headers[&type_name];
            let mut inst = HeaderInstance {
                header_type: type_name.clone(),
                fields: BTreeMap::new(),
            };
            let mut bit_off = u64::from(offset) * 8;
            for f in &ht.fields {
                inst.fields
                    .insert(f.name.clone(), extract_bits(bytes, bit_off, f.bits));
                bit_off += u64::from(f.bits);
            }
            consumed = offset as usize + ht.total_bytes() as usize;
            out.headers.push(inst);
        }
        out.payload = bytes[consumed..].to_vec();
        Ok(out)
    }

    /// Serializes headers in order followed by the payload. A header
    /// instance whose type is missing from the catalog (e.g. added by a
    /// buggy action) is an [`IrError::Undefined`](dejavu_p4ir::IrError),
    /// not a panic — the switch model surfaces it as a processing error.
    pub fn deparse(
        &self,
        headers: &HashMap<String, HeaderType>,
    ) -> Result<Vec<u8>, dejavu_p4ir::IrError> {
        let mut bytes = Vec::new();
        for inst in &self.headers {
            let ht =
                headers
                    .get(&inst.header_type)
                    .ok_or_else(|| dejavu_p4ir::IrError::Undefined {
                        kind: "header type",
                        name: inst.header_type.clone(),
                    })?;
            bytes.extend_from_slice(&inst.serialize(ht));
        }
        bytes.extend_from_slice(&self.payload);
        Ok(bytes)
    }

    /// Index of the first instance of `header_type`, if present.
    pub fn find(&self, header_type: &str) -> Option<usize> {
        self.headers
            .iter()
            .position(|h| h.header_type == header_type)
    }

    /// True if an instance of `header_type` is present (P4 `isValid()`).
    pub fn is_valid(&self, header_type: &str) -> bool {
        self.find(header_type).is_some()
    }

    /// Reads `header.field`, or `None` when the header is absent or the
    /// field unknown.
    pub fn get(&self, fr: &FieldRef) -> Option<Value> {
        let idx = self.find(&fr.header)?;
        self.headers[idx].fields.get(&fr.field).copied()
    }

    /// Writes `header.field`. Returns false when the header is absent (the
    /// write is dropped, matching hardware semantics of writing an invalid
    /// header).
    pub fn set(&mut self, fr: &FieldRef, value: Value) -> bool {
        let Some(idx) = self.find(&fr.header) else {
            return false;
        };
        match self.headers[idx].fields.get_mut(&fr.field) {
            Some(slot) => {
                *slot = value.resize(slot.bits());
                true
            }
            None => false,
        }
    }

    /// Inserts a zeroed instance of `ht` immediately before the first
    /// instance of `before` (or appends after all headers when `before` is
    /// `None` or absent).
    pub fn add_header(&mut self, ht: &HeaderType, before: Option<&str>) {
        let inst = HeaderInstance::zeroed(ht);
        let pos = before
            .and_then(|b| self.find(b))
            .unwrap_or(self.headers.len());
        self.headers.insert(pos, inst);
    }

    /// Removes the first instance of `header_type`; true if one was removed.
    pub fn remove_header(&mut self, header_type: &str) -> bool {
        self.remove_header_nth(header_type, 0)
    }

    /// Removes the `occurrence`-th instance (0-based, outermost first) of
    /// `header_type`; true if one was removed.
    pub fn remove_header_nth(&mut self, header_type: &str, occurrence: usize) -> bool {
        let idx = self
            .headers
            .iter()
            .enumerate()
            .filter(|(_, h)| h.header_type == header_type)
            .map(|(i, _)| i)
            .nth(occurrence);
        if let Some(idx) = idx {
            self.headers.remove(idx);
            true
        } else {
            false
        }
    }
}

/// A packet travelling through the switch: wire bytes plus platform
/// metadata. The parsed view exists only while a pipelet processes it.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Wire bytes.
    pub bytes: Vec<u8>,
    /// Platform ("standard") metadata: ingress port, egress spec, flags.
    /// Reset/updated by the switch at defined points, not preserved across
    /// the traffic manager except where hardware carries it.
    pub meta: BTreeMap<String, Value>,
}

impl Packet {
    /// A packet from raw bytes with empty metadata.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Packet {
            bytes,
            meta: BTreeMap::new(),
        }
    }

    /// Reads a metadata field (0 of width 1 if unset — flags default clear).
    pub fn meta_get(&self, name: &str) -> Value {
        self.meta.get(name).copied().unwrap_or(Value::new(0, 1))
    }

    /// Sets a metadata field.
    pub fn meta_set(&mut self, name: &str, value: Value) {
        self.meta.insert(name.to_string(), value);
    }

    /// Packet length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the packet has no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// FNV-1a hash over packet bytes — the flow-steering hash of the
/// run-to-completion executor. Deterministic across runs and platforms, so
/// packets of one flow (identical bytes ⊆ identical 5-tuple) always land on
/// the same worker core and per-flow ordering is preserved.
pub fn flow_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::fref;
    use dejavu_p4ir::well_known;

    fn catalog() -> HashMap<String, HeaderType> {
        [
            well_known::ethernet(),
            well_known::ipv4(),
            well_known::tcp(),
            well_known::udp(),
        ]
        .into_iter()
        .map(|h| (h.name.clone(), h))
        .collect()
    }

    fn tcp_packet() -> Vec<u8> {
        let mut p = vec![0u8; 60];
        p[12] = 0x08; // IPv4
        p[14] = 0x45;
        p[22] = 64; // ttl
        p[23] = 6; // TCP
        p[26..30].copy_from_slice(&[10, 0, 0, 1]);
        p[30..34].copy_from_slice(&[192, 168, 0, 9]);
        p[34] = 0x30; // src port 12345 = 0x3039
        p[35] = 0x39;
        p[36] = 0x00; // dst port 80
        p[37] = 0x50;
        p[54..60].copy_from_slice(b"hello!");
        p
    }

    #[test]
    fn parse_extracts_fields_and_payload() {
        let pp = ParsedPacket::parse(&tcp_packet(), &well_known::eth_ip_l4_parser(), &catalog())
            .unwrap();
        assert_eq!(pp.headers.len(), 3);
        assert_eq!(pp.get(&fref("ipv4", "ttl")).unwrap().raw(), 64);
        assert_eq!(pp.get(&fref("ipv4", "src_addr")).unwrap().raw(), 0x0a000001);
        assert_eq!(pp.get(&fref("tcp", "dst_port")).unwrap().raw(), 80);
        assert_eq!(pp.payload, b"hello!");
    }

    #[test]
    fn deparse_is_inverse_of_parse() {
        let bytes = tcp_packet();
        let cat = catalog();
        let pp = ParsedPacket::parse(&bytes, &well_known::eth_ip_l4_parser(), &cat).unwrap();
        assert_eq!(pp.deparse(&cat).unwrap(), bytes);
    }

    #[test]
    fn set_then_deparse_changes_wire_bytes() {
        let cat = catalog();
        let mut pp =
            ParsedPacket::parse(&tcp_packet(), &well_known::eth_ip_l4_parser(), &cat).unwrap();
        assert!(pp.set(&fref("ipv4", "dst_addr"), Value::new(0x01020304, 32)));
        let bytes = pp.deparse(&cat).unwrap();
        assert_eq!(&bytes[30..34], &[1, 2, 3, 4]);
    }

    #[test]
    fn set_absent_header_is_noop() {
        let cat = catalog();
        let mut pp =
            ParsedPacket::parse(&tcp_packet(), &well_known::eth_ip_l4_parser(), &cat).unwrap();
        assert!(!pp.set(&fref("vxlan", "vni"), Value::new(7, 24)));
    }

    #[test]
    fn add_and_remove_header() {
        let mut cat = catalog();
        let sfc =
            HeaderType::new("sfc", vec![("path_id", 16u16), ("index", 8), ("pad", 8)]).unwrap();
        cat.insert("sfc".into(), sfc.clone());
        let mut pp =
            ParsedPacket::parse(&tcp_packet(), &well_known::eth_ip_l4_parser(), &cat).unwrap();
        let before_len = pp.deparse(&cat).unwrap().len();
        pp.add_header(&sfc, Some("ipv4"));
        assert!(pp.is_valid("sfc"));
        assert_eq!(pp.find("sfc"), Some(1)); // between ethernet and ipv4
        assert!(pp.set(&fref("sfc", "path_id"), Value::new(0xbeef, 16)));
        let bytes = pp.deparse(&cat).unwrap();
        assert_eq!(bytes.len(), before_len + 4);
        assert_eq!(&bytes[14..16], &[0xbe, 0xef]);
        assert!(pp.remove_header("sfc"));
        assert_eq!(pp.deparse(&cat).unwrap().len(), before_len);
        assert!(!pp.remove_header("sfc"));
    }

    #[test]
    fn deparse_unknown_header_type_is_an_error() {
        let cat = catalog();
        let mut pp =
            ParsedPacket::parse(&tcp_packet(), &well_known::eth_ip_l4_parser(), &cat).unwrap();
        pp.headers[0].header_type = "ghost".into();
        let err = pp.deparse(&cat).unwrap_err();
        assert_eq!(
            err,
            dejavu_p4ir::IrError::Undefined {
                kind: "header type",
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn zeroed_instance_serializes_to_zeros() {
        let ht = well_known::udp();
        let inst = HeaderInstance::zeroed(&ht);
        assert_eq!(inst.serialize(&ht), vec![0u8; 8]);
    }

    #[test]
    fn packet_meta_defaults() {
        let mut p = Packet::from_bytes(vec![1, 2, 3]);
        assert_eq!(p.meta_get("drop_flag").raw(), 0);
        p.meta_set("egress_spec", Value::new(7, 16));
        assert_eq!(p.meta_get("egress_spec").raw(), 7);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn flow_hash_is_deterministic_and_spreads() {
        // FNV-1a reference vector: the empty input hashes to the offset basis.
        assert_eq!(flow_hash(&[]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(flow_hash(b"flow"), flow_hash(b"flow"));
        assert_ne!(flow_hash(b"flow-a"), flow_hash(b"flow-b"));
        // Distinct single-byte inputs spread over worker shards.
        let shards: std::collections::BTreeSet<u64> =
            (0u8..64).map(|b| flow_hash(&[b]) % 4).collect();
        assert_eq!(shards.len(), 4);
    }
}
