//! Hardware resource vectors.
//!
//! Each MAU stage owns a fixed amount of every resource class (§2: "Each MAU
//! has a fixed amount of hardware resources (e.g., TCAM, SRAM, Crossbars,
//! Gateways)"). The compiler's allocator charges table placements against
//! per-stage vectors; Table 1 of the paper reports usage as a percentage of
//! the pipeline's totals. [`ResourceVector`] is the common currency for both.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Amounts of each per-stage resource class.
///
/// Units:
/// * `table_ids` — logical table slots per stage,
/// * `sram_blocks` — SRAM blocks (each models 1024 entries × 128 bits),
/// * `tcam_blocks` — TCAM blocks (each models 512 entries × 44 bits),
/// * `crossbar_bytes` — match-key crossbar input bytes,
/// * `gateways` — predicate gateways,
/// * `vliw_slots` — VLIW action instruction slots,
/// * `hash_bits` — hash distribution bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ResourceVector {
    /// Logical table IDs.
    pub table_ids: u32,
    /// SRAM blocks.
    pub sram_blocks: u32,
    /// TCAM blocks.
    pub tcam_blocks: u32,
    /// Match crossbar bytes.
    pub crossbar_bytes: u32,
    /// Gateways.
    pub gateways: u32,
    /// VLIW action slots.
    pub vliw_slots: u32,
    /// Hash distribution bits.
    pub hash_bits: u32,
}

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        table_ids: 0,
        sram_blocks: 0,
        tcam_blocks: 0,
        crossbar_bytes: 0,
        gateways: 0,
        vliw_slots: 0,
        hash_bits: 0,
    };

    /// Component-wise `self + other <= cap` check: true when adding `other`
    /// to `self` still fits within `cap`.
    pub fn fits_after(&self, other: &ResourceVector, cap: &ResourceVector) -> bool {
        self.table_ids + other.table_ids <= cap.table_ids
            && self.sram_blocks + other.sram_blocks <= cap.sram_blocks
            && self.tcam_blocks + other.tcam_blocks <= cap.tcam_blocks
            && self.crossbar_bytes + other.crossbar_bytes <= cap.crossbar_bytes
            && self.gateways + other.gateways <= cap.gateways
            && self.vliw_slots + other.vliw_slots <= cap.vliw_slots
            && self.hash_bits + other.hash_bits <= cap.hash_bits
    }

    /// Component-wise `self <= cap`.
    pub fn within(&self, cap: &ResourceVector) -> bool {
        ResourceVector::ZERO.fits_after(self, cap)
    }

    /// Scales every component by an integer factor (used by the Hyper4-style
    /// emulation overhead model).
    pub fn scaled(&self, factor: u32) -> ResourceVector {
        ResourceVector {
            table_ids: self.table_ids * factor,
            sram_blocks: self.sram_blocks * factor,
            tcam_blocks: self.tcam_blocks * factor,
            crossbar_bytes: self.crossbar_bytes * factor,
            gateways: self.gateways * factor,
            vliw_slots: self.vliw_slots * factor,
            hash_bits: self.hash_bits * factor,
        }
    }

    /// Usage of `self` against `total`, per component, as fractions in
    /// `[0, 1]` (components with zero capacity report 0).
    pub fn fraction_of(&self, total: &ResourceVector) -> ResourceFractions {
        let frac = |used: u32, cap: u32| {
            if cap == 0 {
                0.0
            } else {
                f64::from(used) / f64::from(cap)
            }
        };
        ResourceFractions {
            table_ids: frac(self.table_ids, total.table_ids),
            sram_blocks: frac(self.sram_blocks, total.sram_blocks),
            tcam_blocks: frac(self.tcam_blocks, total.tcam_blocks),
            crossbar_bytes: frac(self.crossbar_bytes, total.crossbar_bytes),
            gateways: frac(self.gateways, total.gateways),
            vliw_slots: frac(self.vliw_slots, total.vliw_slots),
            hash_bits: frac(self.hash_bits, total.hash_bits),
        }
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            table_ids: self.table_ids + rhs.table_ids,
            sram_blocks: self.sram_blocks + rhs.sram_blocks,
            tcam_blocks: self.tcam_blocks + rhs.tcam_blocks,
            crossbar_bytes: self.crossbar_bytes + rhs.crossbar_bytes,
            gateways: self.gateways + rhs.gateways,
            vliw_slots: self.vliw_slots + rhs.vliw_slots,
            hash_bits: self.hash_bits + rhs.hash_bits,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tables={} sram={} tcam={} xbar={}B gw={} vliw={} hash={}b",
            self.table_ids,
            self.sram_blocks,
            self.tcam_blocks,
            self.crossbar_bytes,
            self.gateways,
            self.vliw_slots,
            self.hash_bits
        )
    }
}

/// Per-component usage fractions (for Table-1-style percentage reports).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceFractions {
    /// Logical table IDs.
    pub table_ids: f64,
    /// SRAM blocks.
    pub sram_blocks: f64,
    /// TCAM blocks.
    pub tcam_blocks: f64,
    /// Match crossbar bytes.
    pub crossbar_bytes: f64,
    /// Gateways.
    pub gateways: f64,
    /// VLIW action slots.
    pub vliw_slots: f64,
    /// Hash distribution bits.
    pub hash_bits: f64,
}

/// Free and used resources of one MAU stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageResources {
    /// Capacity of the stage.
    pub capacity: ResourceVector,
    /// Amount currently allocated.
    pub used: ResourceVector,
}

impl StageResources {
    /// A fresh stage with the given capacity.
    pub fn new(capacity: ResourceVector) -> Self {
        StageResources {
            capacity,
            used: ResourceVector::ZERO,
        }
    }

    /// Whether `demand` still fits in this stage.
    pub fn fits(&self, demand: &ResourceVector) -> bool {
        self.used.fits_after(demand, &self.capacity)
    }

    /// Charges `demand` against the stage. Panics if it does not fit —
    /// callers must check [`fits`](Self::fits) first.
    pub fn charge(&mut self, demand: &ResourceVector) {
        assert!(
            self.fits(demand),
            "resource overflow in stage: {demand} over {}",
            self.capacity
        );
        self.used += *demand;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> ResourceVector {
        ResourceVector {
            table_ids: 16,
            sram_blocks: 80,
            tcam_blocks: 24,
            crossbar_bytes: 128,
            gateways: 16,
            vliw_slots: 32,
            hash_bits: 416,
        }
    }

    #[test]
    fn add_and_fits() {
        let a = ResourceVector {
            table_ids: 8,
            ..ResourceVector::ZERO
        };
        let b = ResourceVector {
            table_ids: 8,
            ..ResourceVector::ZERO
        };
        assert_eq!((a + b).table_ids, 16);
        assert!(a.fits_after(&b, &cap()));
        let c = ResourceVector {
            table_ids: 9,
            ..ResourceVector::ZERO
        };
        assert!(!a.fits_after(&c, &cap()));
    }

    #[test]
    fn stage_charge_and_overflow() {
        let mut s = StageResources::new(cap());
        let d = ResourceVector {
            sram_blocks: 40,
            ..ResourceVector::ZERO
        };
        assert!(s.fits(&d));
        s.charge(&d);
        s.charge(&d);
        assert!(!s.fits(&ResourceVector {
            sram_blocks: 1,
            ..ResourceVector::ZERO
        }));
    }

    #[test]
    #[should_panic(expected = "resource overflow")]
    fn overcharge_panics() {
        let mut s = StageResources::new(cap());
        s.charge(&ResourceVector {
            tcam_blocks: 25,
            ..ResourceVector::ZERO
        });
    }

    #[test]
    fn fractions() {
        let used = ResourceVector {
            table_ids: 4,
            gateways: 8,
            ..ResourceVector::ZERO
        };
        let f = used.fraction_of(&cap());
        assert!((f.table_ids - 0.25).abs() < 1e-12);
        assert!((f.gateways - 0.5).abs() < 1e-12);
        assert_eq!(f.sram_blocks, 0.0);
    }

    #[test]
    fn zero_capacity_fraction_is_zero() {
        let used = ResourceVector {
            tcam_blocks: 5,
            ..ResourceVector::ZERO
        };
        let f = used.fraction_of(&ResourceVector::ZERO);
        assert_eq!(f.tcam_blocks, 0.0);
    }

    #[test]
    fn scaling() {
        let v = ResourceVector {
            sram_blocks: 3,
            vliw_slots: 2,
            ..ResourceVector::ZERO
        };
        let s = v.scaled(4);
        assert_eq!(s.sram_blocks, 12);
        assert_eq!(s.vliw_slots, 8);
    }
}
