//! ACL-shaped ternary ruleset generation.
//!
//! Real packet classifiers (firewall ACLs, policy routers) are dominated by
//! prefix-pair rules — a source prefix × destination prefix, i.e. ternary
//! masks that are contiguous runs of leading ones — sprinkled with a
//! minority of scattered masks (TOS/flag matches, host-pair exceptions
//! punched through wildcards). The mix matters for classifier indexes:
//! prefix pairs cluster into few mask tuples while scattered masks explode
//! the tuple count, which is exactly the regime where a tuple-space index
//! degrades and a decision tree should take over.
//!
//! Deterministic given a seed, like every generator in this crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One two-field ternary rule over IPv4 source and destination addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AclRule {
    /// Source-address match value (pre-masked).
    pub src_val: u32,
    /// Source-address ternary mask.
    pub src_mask: u32,
    /// Destination-address match value (pre-masked).
    pub dst_val: u32,
    /// Destination-address ternary mask.
    pub dst_mask: u32,
    /// Arbitration priority (higher wins).
    pub priority: i32,
}

fn prefix_mask(len: u32) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// Generates `n` ACL rules with realistic mask diversity: ~70% prefix-pair
/// rules drawn from a classic length distribution (/0, /8, /16, /24, /32)
/// and ~30% scattered ternary masks with random bit patterns. Priorities
/// overlap deliberately (drawn from a small range) so arbitration and
/// duplicate-rank ties are exercised.
pub fn acl_ruleset(n: usize, seed: u64) -> Vec<AclRule> {
    let mut rng = StdRng::seed_from_u64(seed);
    let prefix_lens: [u32; 5] = [0, 8, 16, 24, 32];
    (0..n)
        .map(|_| {
            let (src_mask, dst_mask) = if rng.gen_range(0..10) < 7 {
                (
                    prefix_mask(prefix_lens[rng.gen_range(0..prefix_lens.len())]),
                    prefix_mask(prefix_lens[rng.gen_range(0..prefix_lens.len())]),
                )
            } else {
                (rng.gen::<u32>(), rng.gen::<u32>())
            };
            let src_val = rng.gen::<u32>() & src_mask;
            let dst_val = rng.gen::<u32>() & dst_mask;
            AclRule {
                src_val,
                src_mask,
                dst_val,
                dst_mask,
                priority: rng.gen_range(0..32),
            }
        })
        .collect()
}

/// A deterministic `(src_ip, dst_ip)` pair matching `rule`: masked bits
/// come from the rule's values, free bits are seeded noise.
pub fn matching_flow(rule: &AclRule, seed: u64) -> (u32, u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let src = rule.src_val | (rng.gen::<u32>() & !rule.src_mask);
    let dst = rule.dst_val | (rng.gen::<u32>() & !rule.dst_mask);
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_premasked() {
        let a = acl_ruleset(200, 7);
        let b = acl_ruleset(200, 7);
        assert_eq!(a, b);
        for r in &a {
            assert_eq!(r.src_val & !r.src_mask, 0);
            assert_eq!(r.dst_val & !r.dst_mask, 0);
            assert!((0..32).contains(&r.priority));
        }
        assert_ne!(a, acl_ruleset(200, 8));
    }

    #[test]
    fn mask_diversity_is_realistic() {
        let rules = acl_ruleset(1000, 42);
        let prefix_masks = [
            prefix_mask(0),
            prefix_mask(8),
            prefix_mask(16),
            prefix_mask(24),
            prefix_mask(32),
        ];
        let prefixy = rules
            .iter()
            .filter(|r| prefix_masks.contains(&r.src_mask) && prefix_masks.contains(&r.dst_mask))
            .count();
        // ~70% of rules draw both masks from the prefix pool (plus the odd
        // random mask that happens to be a prefix).
        assert!((600..=800).contains(&prefixy), "prefixy = {prefixy}");
        // Scattered masks make the tuple space explode: far more distinct
        // mask pairs than a prefix-only ruleset's at most 25.
        let tuples: std::collections::HashSet<(u32, u32)> =
            rules.iter().map(|r| (r.src_mask, r.dst_mask)).collect();
        assert!(tuples.len() > 100, "tuples = {}", tuples.len());
    }

    #[test]
    fn matching_flow_matches_its_rule() {
        for (i, r) in acl_ruleset(100, 3).iter().enumerate() {
            let (src, dst) = matching_flow(r, i as u64);
            assert_eq!(src & r.src_mask, r.src_val);
            assert_eq!(dst & r.dst_mask, r.dst_val);
        }
    }
}
