//! Sharded multi-threaded workload replay.
//!
//! Drives a prepared packet list through the switch's batched fast path
//! ([`dejavu_asic::Switch::inject_batch`]), optionally partitioned across
//! worker threads. Each worker owns a full clone of the switch — programs,
//! table entries, register state, *and* telemetry registry — and replays
//! its shard independently; per-worker [`BatchStats`] and telemetry deltas
//! flow back over a channel and are merged.
//!
//! Sharding is by *flow*, not by packet: [`replay_sharded`] assigns shard
//! `flow_idx % workers`, so all packets of one flow hit the same switch
//! clone in order and per-flow state (registers, counters) stays coherent
//! within a shard. Cross-flow shared state (e.g. a global rate-limiter
//! register) diverges between shards, exactly as it would across the
//! pipes of a real multi-pipeline ASIC — use one worker when that matters.
//!
//! ## Telemetry
//!
//! Cloning a [`Switch`] deep-copies its [`MetricsRegistry`], so each
//! worker accumulates into a private shard. To merge losslessly even when
//! the input switch already carries non-zero counters, every worker
//! captures a snapshot *before* and *after* its replay and ships only the
//! [`MetricsSnapshot::diff`]; the driver folds the deltas together with
//! [`MetricsSnapshot::merge`]. The merged total in [`ReplayReport::metrics`]
//! therefore equals what a single-threaded replay of the same workload
//! would have recorded (telemetry disabled ⇒ it is simply empty).
//!
//! [`MetricsRegistry`]: dejavu_asic::MetricsRegistry
//! [`MetricsSnapshot::diff`]: dejavu_asic::MetricsSnapshot::diff
//! [`MetricsSnapshot::merge`]: dejavu_asic::MetricsSnapshot::merge

use crate::flows::FlowSpec;
use dejavu_asic::switch::PortId;
use dejavu_asic::{
    BatchStats, InjectedPacket, MetricsSnapshot, RtcConfig, RtcExecutor, RtcReport, Switch,
};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

/// Result of a replay run: merged batch statistics plus wall-clock rate.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Merged per-worker batch statistics.
    pub stats: BatchStats,
    /// Merged telemetry delta recorded during the replay (empty when the
    /// switch's telemetry is disabled).
    pub metrics: MetricsSnapshot,
    /// Number of worker threads used.
    pub workers: usize,
    /// Wall-clock time for the whole replay, in seconds.
    pub elapsed_s: f64,
    /// Injected packets divided by wall-clock time.
    pub packets_per_sec: f64,
}

impl ReplayReport {
    fn from_parts(
        stats: BatchStats,
        metrics: MetricsSnapshot,
        workers: usize,
        elapsed_s: f64,
    ) -> Self {
        ReplayReport {
            packets_per_sec: if elapsed_s > 0.0 {
                stats.injected as f64 / elapsed_s
            } else {
                f64::INFINITY
            },
            stats,
            metrics,
            workers,
            elapsed_s,
        }
    }
}

/// One worker's replay over its shard: batch stats plus the telemetry
/// delta attributable to this shard alone.
fn replay_shard(sw: &mut Switch, shard: &[Vec<InjectedPacket>]) -> (BatchStats, MetricsSnapshot) {
    // Full snapshot (not a bare registry capture) so the folded table
    // counters in `after` are cancelled against their pre-replay values.
    let before = sw.metrics_snapshot();
    let mut stats = BatchStats::default();
    for flow in shard {
        stats.merge(&sw.inject_batch(flow));
    }
    let after = sw.metrics_snapshot();
    (stats, after.diff(&before))
}

/// Replays `packets` (already grouped per flow: `packets[f]` is flow `f`'s
/// ordered packet list) across `workers` threads, flow `f` on worker
/// `f % workers`.
///
/// With `workers <= 1` the replay runs on the calling thread with no
/// cloning beyond one switch copy — the deterministic single-pipe path.
pub fn replay_sharded(
    switch: &Switch,
    packets: &[Vec<InjectedPacket>],
    workers: usize,
) -> ReplayReport {
    let workers = workers.max(1).min(packets.len().max(1));
    let start = Instant::now();
    if workers == 1 {
        let mut sw = switch.clone();
        let (stats, metrics) = replay_shard(&mut sw, packets);
        return ReplayReport::from_parts(stats, metrics, 1, start.elapsed().as_secs_f64());
    }

    let (tx, rx) = mpsc::channel::<(BatchStats, MetricsSnapshot)>();
    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let mut sw = switch.clone();
        let tx = tx.clone();
        let shard: Vec<Vec<InjectedPacket>> =
            packets.iter().skip(w).step_by(workers).cloned().collect();
        handles.push(thread::spawn(move || {
            let _ = tx.send(replay_shard(&mut sw, &shard));
        }));
    }
    drop(tx);

    let mut total = BatchStats::default();
    let mut metrics = MetricsSnapshot::default();
    for (stats, delta) in rx {
        total.merge(&stats);
        metrics.merge(&delta);
    }
    for h in handles {
        let _ = h.join();
    }
    ReplayReport::from_parts(total, metrics, workers, start.elapsed().as_secs_f64())
}

/// Convenience wrapper: materializes `packets_per_flow` packets for each
/// flow (all injected on `port` with `payload_len`-byte payloads) and
/// replays them via [`replay_sharded`].
pub fn replay_flows(
    switch: &Switch,
    flows: &[FlowSpec],
    port: PortId,
    packets_per_flow: usize,
    payload_len: usize,
    workers: usize,
) -> ReplayReport {
    let packets: Vec<Vec<InjectedPacket>> = flows
        .iter()
        .map(|f| {
            let bytes = f.packet(payload_len);
            vec![InjectedPacket::new(bytes, port); packets_per_flow]
        })
        .collect();
    replay_sharded(switch, &packets, workers)
}

/// Replays the same flow-grouped workload through the zero-allocation
/// run-to-completion executor ([`dejavu_asic::RtcExecutor`]).
///
/// Where [`replay_sharded`] assigns flows to workers round-robin and drives
/// the batched fast path, this entry point interleaves the flows into one
/// arrival stream (round-robin across flows, preserving each flow's
/// internal order) and lets the executor steer by flow hash over pooled
/// buffers — the same packets, the engine under test for the `rtc_pps`
/// benchmark column.
pub fn replay_rtc(switch: &Switch, packets: &[Vec<InjectedPacket>], cfg: &RtcConfig) -> RtcReport {
    let longest = packets.iter().map(Vec::len).max().unwrap_or(0);
    let mut stream = Vec::with_capacity(packets.iter().map(Vec::len).sum());
    for i in 0..longest {
        for flow in packets {
            if let Some(p) = flow.get(i) {
                stream.push(p.clone());
            }
        }
    }
    RtcExecutor::new(cfg.clone()).run(switch, &stream)
}

/// Convenience twin of [`replay_flows`] for the run-to-completion path.
pub fn replay_flows_rtc(
    switch: &Switch,
    flows: &[FlowSpec],
    port: PortId,
    packets_per_flow: usize,
    payload_len: usize,
    cfg: &RtcConfig,
) -> RtcReport {
    let packets: Vec<Vec<InjectedPacket>> = flows
        .iter()
        .map(|f| {
            let bytes = f.packet(payload_len);
            vec![InjectedPacket::new(bytes, port); packets_per_flow]
        })
        .collect();
    replay_rtc(switch, &packets, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowGen;
    use dejavu_asic::{PipeletId, TofinoProfile};
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::table::{KeyMatch, TableEntry};
    use dejavu_p4ir::{fref, well_known, Expr, FieldRef, Value};

    /// Forward-by-ipv4-dst program: everything under 10.0.0.0/8 goes to
    /// port 2, rest drops.
    fn router() -> dejavu_p4ir::Program {
        ProgramBuilder::new("router")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("fwd")
                    .param("port", 16)
                    .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                    .build(),
            )
            .action(ActionBuilder::new("deny").drop_packet().build())
            .table(
                TableBuilder::new("route")
                    .key_lpm(fref("ipv4", "dst_addr"))
                    .action("fwd")
                    .default_action("deny")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("route").build())
            .entry("ingress")
            .build()
            .unwrap()
    }

    fn testbed() -> Switch {
        let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
        sw.load_program(PipeletId::ingress(0), router()).unwrap();
        sw.install_entry(
            PipeletId::ingress(0),
            "route",
            TableEntry {
                matches: vec![KeyMatch::Lpm(Value::new(0x0a00_0000, 32), 8)],
                action: "fwd".into(),
                action_args: vec![Value::new(2, 16)],
                priority: 0,
            },
        )
        .unwrap();
        sw
    }

    #[test]
    fn sharded_replay_matches_single_thread_counts() {
        let sw = testbed();
        let flows = FlowGen::new(11, (0x0a01_0000, 16), (0x0a02_0000, 16)).flows(24);
        let single = replay_flows(&sw, &flows, 0, 4, 16, 1);
        let sharded = replay_flows(&sw, &flows, 0, 4, 16, 4);
        assert_eq!(single.stats.injected, 96);
        assert_eq!(sharded.stats.injected, 96);
        assert_eq!(single.stats.emitted, sharded.stats.emitted);
        assert_eq!(single.stats.dropped, sharded.stats.dropped);
        assert_eq!(single.stats.errors, 0);
        assert_eq!(sharded.workers, 4);
        assert!(sharded.packets_per_sec > 0.0);
    }

    #[test]
    fn sharded_metrics_merge_equals_single_thread() {
        let mut sw = testbed();
        sw.set_telemetry(true);
        let flows = FlowGen::new(7, (0x0a01_0000, 16), (0x0a02_0000, 16)).flows(12);
        let single = replay_flows(&sw, &flows, 0, 3, 8, 1);
        let sharded = replay_flows(&sw, &flows, 0, 3, 8, 4);
        assert_eq!(single.metrics.counter("packets_injected"), 36);
        assert_eq!(single.metrics, sharded.metrics);
    }

    #[test]
    fn disabled_telemetry_yields_empty_metrics() {
        let sw = testbed();
        let flows = FlowGen::new(5, (0x0a01_0000, 16), (0x0a02_0000, 16)).flows(4);
        let r = replay_flows(&sw, &flows, 0, 2, 0, 2);
        assert!(r.metrics.is_zero());
    }

    #[test]
    fn replay_leaves_original_switch_untouched() {
        let sw = testbed();
        let flows = FlowGen::new(3, (0x0a01_0000, 16), (0x0a02_0000, 16)).flows(8);
        let _ = replay_flows(&sw, &flows, 0, 2, 0, 2);
        // Workers clone the switch; the caller's counters stay at zero.
        let c = sw.tables(PipeletId::ingress(0)).unwrap().counters("route");
        assert_eq!(c.hits + c.misses, 0);
    }

    #[test]
    fn empty_workload_is_fine() {
        let sw = testbed();
        let r = replay_sharded(&sw, &[], 8);
        assert_eq!(r.stats.injected, 0);
        assert_eq!(r.workers, 1);
    }

    #[test]
    fn rtc_replay_matches_batched_counts() {
        let mut sw = testbed();
        sw.set_telemetry(true);
        let flows = FlowGen::new(11, (0x0a01_0000, 16), (0x0a02_0000, 16)).flows(24);
        let batched = replay_flows(&sw, &flows, 0, 4, 16, 1);
        let cfg = RtcConfig {
            workers: 4,
            ..RtcConfig::default()
        };
        let rtc = replay_flows_rtc(&sw, &flows, 0, 4, 16, &cfg);
        assert_eq!(rtc.injected, 96);
        assert_eq!(rtc.emitted, batched.stats.emitted as u64);
        assert_eq!(rtc.dropped, batched.stats.dropped as u64);
        assert_eq!(rtc.errors, 0);
        assert_eq!(rtc.pool_dropped, 0);
        // Core pipeline telemetry agrees with the batched engine; the rtc
        // report additionally carries the executor's own series.
        assert_eq!(
            rtc.metrics.counter("packets_injected"),
            batched.metrics.counter("packets_injected")
        );
        assert_eq!(rtc.metrics.counter_family_total("rtc_worker_packets"), 96);
    }
}
