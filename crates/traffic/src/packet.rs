//! Packet construction.
//!
//! [`PacketBuilder`] assembles valid eth/ipv4/{tcp,udp} wire bytes field by
//! field, matching the header layouts in `dejavu_p4ir::well_known`. The
//! builder fills sensible defaults (version/IHL, TTL 64) so tests only
//! state what they care about.

/// Builds eth/ipv4/tcp-or-udp packets.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    dst_mac: u64,
    src_mac: u64,
    src_ip: u32,
    dst_ip: u32,
    protocol: u8,
    ttl: u8,
    dscp: u8,
    src_port: u16,
    dst_port: u16,
    payload: Vec<u8>,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        PacketBuilder {
            dst_mac: 0x02_00_00_00_00_02,
            src_mac: 0x02_00_00_00_00_01,
            src_ip: 0x0a00_0001,
            dst_ip: 0x0a00_0002,
            protocol: 6,
            ttl: 64,
            dscp: 0,
            src_port: 40000,
            dst_port: 80,
            payload: Vec::new(),
        }
    }
}

impl PacketBuilder {
    /// A TCP packet builder with defaults.
    pub fn tcp() -> Self {
        PacketBuilder::default()
    }

    /// A UDP packet builder with defaults.
    pub fn udp() -> Self {
        PacketBuilder {
            protocol: 17,
            ..Default::default()
        }
    }

    /// Sets the destination MAC.
    pub fn dst_mac(mut self, mac: u64) -> Self {
        self.dst_mac = mac;
        self
    }

    /// Sets the source MAC.
    pub fn src_mac(mut self, mac: u64) -> Self {
        self.src_mac = mac;
        self
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(mut self, ip: u32) -> Self {
        self.src_ip = ip;
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(mut self, ip: u32) -> Self {
        self.dst_ip = ip;
        self
    }

    /// Sets the TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the DSCP code point.
    pub fn dscp(mut self, dscp: u8) -> Self {
        self.dscp = dscp;
        self
    }

    /// Sets the L4 source port.
    pub fn src_port(mut self, port: u16) -> Self {
        self.src_port = port;
        self
    }

    /// Sets the L4 destination port.
    pub fn dst_port(mut self, port: u16) -> Self {
        self.dst_port = port;
        self
    }

    /// Appends payload bytes.
    pub fn payload(mut self, bytes: &[u8]) -> Self {
        self.payload = bytes.to_vec();
        self
    }

    /// Serializes to wire bytes.
    pub fn build(&self) -> Vec<u8> {
        let l4_len: usize = if self.protocol == 6 { 20 } else { 8 };
        let total_ip_len = 20 + l4_len + self.payload.len();
        let mut p = Vec::with_capacity(14 + total_ip_len);
        // Ethernet.
        p.extend_from_slice(&self.dst_mac.to_be_bytes()[2..]);
        p.extend_from_slice(&self.src_mac.to_be_bytes()[2..]);
        p.extend_from_slice(&0x0800u16.to_be_bytes());
        // IPv4.
        p.push(0x45);
        p.push(self.dscp << 2);
        p.extend_from_slice(&(total_ip_len as u16).to_be_bytes());
        p.extend_from_slice(&[0, 0]); // identification
        p.extend_from_slice(&[0, 0]); // flags/frag
        p.push(self.ttl);
        p.push(self.protocol);
        p.extend_from_slice(&[0, 0]); // checksum (not modelled)
        p.extend_from_slice(&self.src_ip.to_be_bytes());
        p.extend_from_slice(&self.dst_ip.to_be_bytes());
        // L4.
        if self.protocol == 6 {
            p.extend_from_slice(&self.src_port.to_be_bytes());
            p.extend_from_slice(&self.dst_port.to_be_bytes());
            p.extend_from_slice(&[0u8; 8]); // seq/ack
            p.push(0x50); // data offset + reserved
            p.push(0x10); // ACK flag
            p.extend_from_slice(&[0xff, 0xff]); // window
            p.extend_from_slice(&[0, 0, 0, 0]); // checksum/urgent
        } else {
            p.extend_from_slice(&self.src_port.to_be_bytes());
            p.extend_from_slice(&self.dst_port.to_be_bytes());
            p.extend_from_slice(&((l4_len + self.payload.len()) as u16).to_be_bytes());
            p.extend_from_slice(&[0, 0]);
        }
        p.extend_from_slice(&self.payload);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::well_known;
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, dejavu_p4ir::HeaderType> {
        [
            well_known::ethernet(),
            well_known::ipv4(),
            well_known::tcp(),
            well_known::udp(),
        ]
        .into_iter()
        .map(|h| (h.name.clone(), h))
        .collect()
    }

    #[test]
    fn tcp_packet_parses() {
        let pkt = PacketBuilder::tcp()
            .src_ip(0x0a010203)
            .dst_ip(0xc0a80001)
            .src_port(1234)
            .dst_port(443)
            .payload(b"hi")
            .build();
        let path = well_known::eth_ip_l4_parser()
            .parse(&catalog(), &pkt)
            .unwrap();
        assert_eq!(
            path.iter().map(|(h, _)| h.as_str()).collect::<Vec<_>>(),
            vec!["ethernet", "ipv4", "tcp"]
        );
        assert_eq!(pkt.len(), 14 + 20 + 20 + 2);
        // Field spot checks.
        assert_eq!(&pkt[26..30], &[0x0a, 0x01, 0x02, 0x03]);
        assert_eq!(u16::from_be_bytes([pkt[36], pkt[37]]), 443);
        assert_eq!(&pkt[54..], b"hi");
    }

    #[test]
    fn udp_packet_parses() {
        let pkt = PacketBuilder::udp().dst_port(53).build();
        let path = well_known::eth_ip_l4_parser()
            .parse(&catalog(), &pkt)
            .unwrap();
        assert_eq!(path.last().unwrap().0, "udp");
        assert_eq!(pkt.len(), 14 + 20 + 8);
    }

    #[test]
    fn ip_total_length_consistent() {
        let pkt = PacketBuilder::tcp().payload(&[0u8; 100]).build();
        let total = u16::from_be_bytes([pkt[16], pkt[17]]);
        assert_eq!(usize::from(total), pkt.len() - 14);
    }
}
