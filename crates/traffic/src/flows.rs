//! Flow and workload generation.
//!
//! [`FlowGen`] produces deterministic pseudo-random 5-tuple flows, with a
//! Zipf-like popularity skew (heavy hitters dominate, as in real edge
//! traffic). [`WorkloadMix`] assigns flows to service chains by weight —
//! the "each SFC policy may carry a weight reflecting the percentage of
//! traffic following that chaining policy" of §3.3 — by giving each chain
//! its own source prefix so the classifier can steer it.

use crate::packet::PacketBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One flow's invariant fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowSpec {
    /// IPv4 source.
    pub src_ip: u32,
    /// IPv4 destination.
    pub dst_ip: u32,
    /// IP protocol (6 or 17).
    pub protocol: u8,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
}

impl FlowSpec {
    /// Builds a packet of this flow with the given payload size.
    pub fn packet(&self, payload_len: usize) -> Vec<u8> {
        let base = if self.protocol == 6 {
            PacketBuilder::tcp()
        } else {
            PacketBuilder::udp()
        };
        base.src_ip(self.src_ip)
            .dst_ip(self.dst_ip)
            .src_port(self.src_port)
            .dst_port(self.dst_port)
            .payload(&vec![0u8; payload_len])
            .build()
    }
}

/// Deterministic flow generator.
#[derive(Debug)]
pub struct FlowGen {
    rng: StdRng,
    /// Source prefix (value, bits) all generated flows fall under.
    pub src_prefix: (u32, u16),
    /// Destination prefix.
    pub dst_prefix: (u32, u16),
}

impl FlowGen {
    /// New generator over the given prefixes.
    pub fn new(seed: u64, src_prefix: (u32, u16), dst_prefix: (u32, u16)) -> Self {
        FlowGen {
            rng: StdRng::seed_from_u64(seed),
            src_prefix,
            dst_prefix,
        }
    }

    fn addr_in(rng: &mut StdRng, prefix: (u32, u16)) -> u32 {
        let host_bits = 32 - u32::from(prefix.1);
        let mask = if host_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << host_bits) - 1
        };
        (prefix.0 & !mask) | (rng.gen::<u32>() & mask)
    }

    /// Next uniformly random flow.
    pub fn next_flow(&mut self) -> FlowSpec {
        FlowSpec {
            src_ip: Self::addr_in(&mut self.rng, self.src_prefix),
            dst_ip: Self::addr_in(&mut self.rng, self.dst_prefix),
            protocol: if self.rng.gen_bool(0.8) { 6 } else { 17 },
            src_port: self.rng.gen_range(1024..=u16::MAX),
            dst_port: *[80u16, 443, 8080, 53]
                .get(self.rng.gen_range(0..4usize))
                .unwrap(),
        }
    }

    /// Generates `n` distinct flows.
    pub fn flows(&mut self, n: usize) -> Vec<FlowSpec> {
        let mut out = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        while out.len() < n {
            let f = self.next_flow();
            if seen.insert(f) {
                out.push(f);
            }
        }
        out
    }

    /// Draws `count` packet-flow indices over `flows.len()` flows with a
    /// Zipf(s) popularity skew (s = 0 → uniform).
    pub fn zipf_schedule(&mut self, num_flows: usize, count: usize, s: f64) -> Vec<usize> {
        assert!(num_flows > 0);
        // Precompute cumulative Zipf weights.
        let weights: Vec<f64> = (1..=num_flows).map(|r| 1.0 / (r as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(num_flows);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }
        (0..count)
            .map(|_| {
                let x: f64 = self.rng.gen();
                cumulative
                    .iter()
                    .position(|&c| x <= c)
                    .unwrap_or(num_flows - 1)
            })
            .collect()
    }
}

/// A multi-chain traffic mix: each chain gets a share of flows under its
/// own source prefix (so the classifier can map prefix → path).
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    /// `(path_id, weight, src_prefix)` per chain.
    pub chains: Vec<(u16, f64, (u32, u16))>,
}

impl WorkloadMix {
    /// A mix giving chain `i` (1-based path IDs) the prefix `10.i.0.0/16`.
    pub fn from_weights(weights: &[(u16, f64)]) -> Self {
        WorkloadMix {
            chains: weights
                .iter()
                .map(|&(path, w)| (path, w, (0x0a00_0000 | (u32::from(path) << 16), 16u16)))
                .collect(),
        }
    }

    /// Source prefix of a chain.
    pub fn prefix_of(&self, path_id: u16) -> Option<(u32, u16)> {
        self.chains
            .iter()
            .find(|(p, ..)| *p == path_id)
            .map(|(_, _, pre)| *pre)
    }

    /// Generates `n` `(path_id, flow)` pairs distributed by weight.
    pub fn flows(&self, seed: u64, n: usize) -> Vec<(u16, FlowSpec)> {
        let total: f64 = self.chains.iter().map(|(_, w, _)| w).sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let x: f64 = rng.gen::<f64>() * total;
            let mut acc = 0.0;
            let mut chosen = self.chains.last().expect("non-empty mix");
            for c in &self.chains {
                acc += c.1;
                if x <= acc {
                    chosen = c;
                    break;
                }
            }
            let mut gen = FlowGen::new(seed.wrapping_add(i as u64), chosen.2, (0xc000_0200, 24));
            out.push((chosen.0, gen.next_flow()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_respect_prefixes() {
        let mut gen = FlowGen::new(1, (0x0a010000, 16), (0xc6336400, 24));
        for f in gen.flows(100) {
            assert_eq!(f.src_ip >> 16, 0x0a01);
            assert_eq!(f.dst_ip >> 8, 0xc63364);
            assert!(f.src_port >= 1024);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FlowGen::new(7, (0, 0), (0, 0)).flows(10);
        let b = FlowGen::new(7, (0, 0), (0, 0)).flows(10);
        assert_eq!(a, b);
        let c = FlowGen::new(8, (0, 0), (0, 0)).flows(10);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let mut gen = FlowGen::new(3, (0, 0), (0, 0));
        let schedule = gen.zipf_schedule(100, 10_000, 1.2);
        let head = schedule.iter().filter(|&&i| i < 10).count();
        // With s=1.2, the top-10 of 100 flows should carry well over half
        // the packets.
        assert!(head > 5_000, "head count {head}");
        // Uniform by contrast.
        let uniform = gen.zipf_schedule(100, 10_000, 0.0);
        let head_u = uniform.iter().filter(|&&i| i < 10).count();
        assert!((500..2_000).contains(&head_u), "uniform head {head_u}");
    }

    #[test]
    fn mix_distributes_by_weight() {
        let mix = WorkloadMix::from_weights(&[(1, 0.5), (2, 0.3), (3, 0.2)]);
        let flows = mix.flows(42, 5_000);
        let count1 = flows.iter().filter(|(p, _)| *p == 1).count();
        let count3 = flows.iter().filter(|(p, _)| *p == 3).count();
        assert!((2_200..2_800).contains(&count1), "path1 {count1}");
        assert!((800..1_200).contains(&count3), "path3 {count3}");
        // Flows fall under their chain's prefix.
        for (path, f) in &flows {
            let prefix = mix.prefix_of(*path).unwrap();
            assert_eq!(f.src_ip >> 16, prefix.0 >> 16, "path {path}");
        }
    }

    #[test]
    fn flow_packet_roundtrip() {
        let f = FlowSpec {
            src_ip: 1,
            dst_ip: 2,
            protocol: 17,
            src_port: 9999,
            dst_port: 53,
        };
        let pkt = f.packet(32);
        assert_eq!(pkt.len(), 14 + 20 + 8 + 32);
        assert_eq!(pkt[23], 17);
    }
}
