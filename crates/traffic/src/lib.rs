//! # dejavu-traffic — workload generation
//!
//! Packet builders and flow/workload generators driving the experiments:
//! the simulator's equivalent of the Tofino internal packet generator plus
//! the multi-tenant traffic mixes the paper's Fig. 2 scenario implies.
//!
//! Everything is deterministic given a seed — experiment outputs must be
//! regenerable bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod flows;
pub mod packet;
pub mod replay;

pub use acl::{acl_ruleset, matching_flow, AclRule};
pub use flows::{FlowGen, FlowSpec, WorkloadMix};
pub use packet::PacketBuilder;
pub use replay::{replay_flows, replay_sharded, ReplayReport};
