//! Property tests over the stage allocator's invariants: for any random
//! program it accepts,
//!
//! * no stage exceeds its resource capacity,
//! * every match/action dependency is honored (the dependent table's first
//!   chunk sits strictly after the predecessor's last chunk),
//! * successor dependencies preserve order (same stage allowed),
//! * the charged totals equal the sum of per-table demands.

use dejavu_asic::TofinoProfile;
use dejavu_compiler::StageAllocator;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::{fref, DependencyGraph, DependencyKind, Expr, FieldRef, Program};
use proptest::prelude::*;

/// Builds a random program of `n` tables. Table `i` matches either on a
/// fresh ipv4 field (independent) or on the metadata field written by table
/// `i-1` (forcing a match dependency), per the `chained` bits; table sizes
/// vary.
fn random_program(chained: Vec<bool>, sizes: Vec<u16>) -> Program {
    let n = chained.len();
    let mut b = ProgramBuilder::new("prop")
        .header(dejavu_p4ir::well_known::ethernet())
        .header(dejavu_p4ir::well_known::ipv4())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(ActionBuilder::new("nop").build());
    let mut control = ControlBuilder::new("ingress");
    for i in 0..n {
        b = b
            .meta_field(format!("f{i}"), 16)
            .action(
                ActionBuilder::new(format!("w{i}"))
                    .set(FieldRef::meta(format!("f{i}")), Expr::val(1, 16))
                    .build(),
            )
            .table(
                TableBuilder::new(format!("t{i}"))
                    .key_exact(if i > 0 && chained[i] {
                        FieldRef::meta(format!("f{}", i - 1))
                    } else {
                        fref("ipv4", "src_addr")
                    })
                    .action(format!("w{i}"))
                    .default_action("nop")
                    .size(u32::from(sizes[i]).max(1))
                    .build(),
            );
        control = control.apply(&format!("t{i}"));
    }
    b.control(control.build()).entry("ingress").build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn allocation_invariants(
        chained in proptest::collection::vec(any::<bool>(), 1..8),
        sizes in proptest::collection::vec(1u16..2048, 8),
    ) {
        let n = chained.len();
        let program = random_program(chained, sizes[..n].to_vec());
        let profile = TofinoProfile::wedge_100b_32x();
        let allocator = StageAllocator::new(profile.clone());
        let Ok(alloc) = allocator.compile(&program) else {
            // Programs the allocator rejects are out of scope here.
            return Ok(());
        };

        // (a) capacity respected in every stage.
        for stage in &alloc.stages {
            prop_assert!(stage.used.within(&profile.stage_capacity));
        }

        // (b)/(c) dependency ordering.
        let graph = DependencyGraph::build(&program);
        for e in &graph.edges {
            let from_last = alloc.last_stage_of[&e.from];
            let to_first = alloc.stage_of[&e.to];
            match e.kind {
                DependencyKind::Match | DependencyKind::Action => {
                    prop_assert!(
                        to_first > from_last,
                        "{} -> {} ({:?}) placed {} !> {}",
                        e.from, e.to, e.kind, to_first, from_last
                    );
                }
                DependencyKind::Successor => {
                    prop_assert!(to_first >= from_last);
                }
            }
        }

        // (d) charged totals equal the sum of demands.
        let sum = alloc
            .demand_of
            .values()
            .fold(dejavu_asic::ResourceVector::ZERO, |acc, d| acc + *d);
        prop_assert_eq!(alloc.total_used(), sum);

        // (e) split tables span forward only.
        for (t, &first) in &alloc.stage_of {
            prop_assert!(alloc.last_stage_of[t] >= first);
        }
    }

    #[test]
    fn fits_together_is_monotone(
        a_tables in 1usize..6,
        b_tables in 1usize..6,
    ) {
        // If A+B fit together, then A alone and B alone fit.
        let a = random_program(vec![false; a_tables], vec![64; a_tables]);
        let b = random_program(vec![false; b_tables], vec![64; b_tables]);
        let allocator = StageAllocator::new(TofinoProfile::tiny());
        if allocator.fits_together(&a, &b) {
            prop_assert!(allocator.fits(&a));
            prop_assert!(allocator.fits(&b));
        }
    }
}

/// Like `random_program`, but one table keys on a header that is declared
/// and never parsed — the canonical DJV001 defect. The lint gate must turn
/// every such program into a clean `LintRejected` error, never a panic and
/// never a successful allocation.
fn program_with_unparsed_key(chained: Vec<bool>, sizes: Vec<u16>, bad_slot: usize) -> Program {
    let mut program = random_program(chained, sizes);
    let bad_slot = bad_slot % program.tables.len().max(1);
    let name = format!("t{bad_slot}");
    if let Some(table) = program.tables.get_mut(&name) {
        table.keys = vec![dejavu_p4ir::table::TableKey {
            field: fref("tcp", "dst_port"),
            kind: dejavu_p4ir::table::MatchKind::Exact,
        }];
    }
    program
        .header_types
        .insert("tcp".into(), dejavu_p4ir::well_known::tcp());
    program
}

proptest! {
    #[test]
    fn lint_gate_rejects_unparsed_header_keys(
        chained in proptest::collection::vec(any::<bool>(), 1..6),
        seed in any::<u16>(),
        bad_slot in any::<usize>(),
    ) {
        let sizes = vec![seed % 512 + 1; chained.len()];
        let program = program_with_unparsed_key(chained, sizes, bad_slot);
        let allocator = StageAllocator::new(TofinoProfile::wedge_100b_32x());
        match allocator.compile(&program) {
            Err(dejavu_compiler::CompileError::LintRejected { diagnostics }) => {
                prop_assert!(
                    diagnostics.iter().any(|d| d.contains("DJV001")),
                    "expected a DJV001 diagnostic, got {diagnostics:?}"
                );
            }
            other => prop_assert!(false, "expected LintRejected, got {other:?}"),
        }
    }
}
